//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this
//! workspace vendors the *exact API subset* of `rand` 0.8 that the wanacl
//! crates use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the
//! ChaCha12 of the real `StdRng`, but statistically strong enough for
//! simulation workloads (it passes BigCrush). Determinism guarantees are
//! per-toolchain only, exactly like the real `StdRng` (which documents
//! that its stream may change between versions).

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (lo as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(13);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
