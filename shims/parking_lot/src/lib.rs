//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`.read()` / `.write()` / `.lock()` return guards directly). Poisoned
//! locks are recovered transparently, matching parking_lot's behaviour of
//! not propagating panics through lock state.

#![warn(missing_docs)]

/// A reader-writer lock whose guards are obtained without `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard is obtained without `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let lock = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = lock.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 400);
    }
}
