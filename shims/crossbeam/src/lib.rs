//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset of the crossbeam-channel
//! API that `wanacl-rt` uses: [`channel::unbounded`] and
//! [`channel::bounded`], cloneable + `Sync` [`channel::Sender`]s, and
//! receivers with `recv_timeout` / `try_recv` / `try_iter`. Built on a
//! mutex + condvar queue — slower than the real lock-free implementation
//! but semantically identical for the runtime's node-per-thread message
//! loop.
//!
//! One deliberate divergence from upstream crossbeam: on a bounded
//! channel, [`channel::Sender::send`] never blocks and never fails on a
//! full queue — only [`channel::Sender::try_send`] observes the capacity.
//! The runtime routes data-plane traffic through `try_send` (so overflow
//! is an explicit, countable drop) and reserves the always-enqueue `send`
//! as a control lane for lifecycle envelopes, which must not be lost and
//! must not deadlock a sender that holds other locks.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer single-consumer channels (crossbeam-channel subset).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
        /// Queue capacity enforced by [`Sender::try_send`]; `None` for
        /// unbounded channels.
        capacity: Option<usize>,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        available: Condvar,
    }

    /// The sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why [`Sender::try_send`] refused a value.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded queue is at capacity; the value is handed back.
        Full(T),
        /// The receiver was dropped; the value is handed back.
        Disconnected(T),
    }

    /// Why [`Receiver::try_recv`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty right now.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Why [`Receiver::recv_timeout`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    fn channel_with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
                capacity,
            }),
            available: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(None)
    }

    /// Creates a bounded channel holding at most `capacity` queued items.
    ///
    /// The bound is enforced only by [`Sender::try_send`]; see the crate
    /// docs for why [`Sender::send`] stays an always-enqueue control
    /// lane.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel_with_capacity(Some(capacity))
    }

    impl<T> Sender<T> {
        /// Enqueues `value` regardless of capacity; fails only if the
        /// receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.available.notify_one();
            Ok(())
        }

        /// Enqueues `value` unless the bounded queue is full or the
        /// receiver was dropped; never blocks.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.receiver_alive {
                return Err(TrySendError::Disconnected(value));
            }
            if inner.capacity.is_some_and(|cap| inner.queue.len() >= cap) {
                return Err(TrySendError::Full(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Waits up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Waits until the absolute `deadline` for the next message.
        ///
        /// Unlike a relative `recv_timeout` recomputed around spurious
        /// wakeups, the deadline never drifts: the wait is re-derived
        /// from the same `Instant` on every pass through the condvar.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .available
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                inner = self
                    .shared
                    .available
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// A non-blocking draining iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receiver_alive = false;
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// See [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_deadline_honours_an_absolute_instant() {
        use std::time::Instant;
        let (tx, rx) = unbounded::<u32>();
        let deadline = Instant::now() + Duration::from_millis(30);
        assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
        assert!(Instant::now() >= deadline, "must not return before the deadline");
        // An already-elapsed deadline returns immediately (no hang).
        let past = Instant::now() - Duration::from_millis(5);
        assert_eq!(rx.recv_deadline(past), Err(RecvTimeoutError::Timeout));
        tx.send(1).unwrap();
        assert_eq!(rx.recv_deadline(past), Ok(1), "queued data beats the deadline");
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_delivery_wakes_blocked_receiver() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(99).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(99));
        t.join().unwrap();
    }

    #[test]
    fn cloned_senders_all_count() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }

    #[test]
    fn bounded_try_send_observes_capacity_but_send_does_not() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        // The control lane still enqueues past the bound.
        tx.send(4).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2, 4]);
        // Draining frees capacity for try_send again.
        assert_eq!(tx.try_send(5), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(6), Err(TrySendError::Disconnected(6)));
    }
}
