//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` with the subset of the crossbeam-channel
//! API that `wanacl-rt` uses: [`channel::unbounded`], cloneable + `Sync`
//! [`channel::Sender`]s, and receivers with `recv_timeout` / `try_recv` /
//! `try_iter`. Built on a mutex + condvar queue — slower than the real
//! lock-free implementation but semantically identical for the runtime's
//! node-per-thread message loop.

#![warn(missing_docs)]

pub mod channel {
    //! Multi-producer single-consumer channels (crossbeam-channel subset).

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        available: Condvar,
    }

    /// The sending half; cloneable and shareable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why [`Receiver::try_recv`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is empty right now.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Why [`Receiver::recv_timeout`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            available: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if !inner.receiver_alive {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.available.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.queue.pop_front() {
                Some(v) => Ok(v),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Waits up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timeout_result) = self
                    .shared
                    .available
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                inner = self
                    .shared
                    .available
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// A non-blocking draining iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receiver_alive = false;
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// See [`Receiver::try_iter`].
    #[derive(Debug)]
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_and_try_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_timeout_times_out_when_empty() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn cross_thread_delivery_wakes_blocked_receiver() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(99).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(99));
        t.join().unwrap();
    }

    #[test]
    fn cloned_senders_all_count() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(5), Err(SendError(5)));
    }
}
