//! Offline stand-in for the `criterion` crate.
//!
//! Mirrors criterion's execution model for `harness = false` bench
//! targets: when invoked by `cargo test` (no `--bench` flag) every
//! benchmark closure runs **once** as a smoke test; when invoked by
//! `cargo bench` (`--bench` present) each benchmark is warmed up and
//! timed over a fixed iteration budget, with a one-line mean printed per
//! benchmark. No statistics, plots, or baselines — just enough to keep
//! the workspace's bench targets building, smoke-testing, and producing
//! rough numbers without a crate registry.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Measures closures handed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    bench_mode: bool,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` once (test mode) or repeatedly with timing (bench mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if !self.bench_mode {
            std::hint::black_box(f());
            self.iters = 1;
            return;
        }
        // Warm-up, then scale the measured iteration count so one
        // benchmark takes on the order of a second.
        let warmup_start = Instant::now();
        std::hint::black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(500);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

/// An identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Throughput annotation (recorded but only echoed in bench mode).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Matches real criterion's detection: `cargo bench` passes
        // `--bench` to the target, `cargo test` does not.
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion { bench_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.bench_mode, &name.into(), f);
        self
    }
}

/// A group of benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.bench_mode, &label, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.bench_mode, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(bench_mode: bool, label: &str, mut f: F) {
    let mut bencher = Bencher { bench_mode, iters: 0, elapsed: Duration::ZERO };
    f(&mut bencher);
    if bench_mode && bencher.iters > 0 {
        let mean_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!("{label:<50} {:>12.1} ns/iter ({} iters)", mean_ns, bencher.iters);
        append_json_record(label, mean_ns, bencher.iters);
    }
}

/// Appends one machine-readable result line to the file named by the
/// `BENCH_JSON` env var (default `BENCH_sim.json`, relative to the bench
/// target's working directory). One JSON object per line so regression
/// guards can diff runs without a JSON dependency; write failures are
/// ignored (benchmarks must never fail because a results file is
/// unwritable).
fn append_json_record(label: &str, mean_ns: f64, iters: u64) {
    let path = std::env::var("BENCH_JSON").unwrap_or_else(|_| "BENCH_sim.json".to_owned());
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => " ".chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!("{{\"label\":\"{escaped}\",\"mean_ns\":{mean_ns:.1},\"iters\":{iters}}}\n");
    if let Ok(mut file) =
        std::fs::OpenOptions::new().create(true).append(true).open(&path)
    {
        use std::io::Write;
        let _ = file.write_all(line.as_bytes());
    }
}

/// Re-export for benches that import `black_box` from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_closure_once() {
        let mut c = Criterion { bench_mode: false };
        let mut count = 0;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_mode_runs_closure_many_times_and_emits_json() {
        let path = std::env::temp_dir().join(format!("bench_json_{}.jsonl", std::process::id()));
        // Also keeps this test's bench-mode run from appending to the
        // default BENCH_sim.json in the package directory.
        std::env::set_var("BENCH_JSON", &path);
        let mut c = Criterion { bench_mode: true };
        let mut count = 0u64;
        c.bench_function("many", |b| b.iter(|| count += 1));
        assert!(count > 1, "count {count}");
        let contents = std::fs::read_to_string(&path).expect("JSON results file written");
        let _ = std::fs::remove_file(&path);
        let line = contents.lines().last().expect("at least one record");
        assert!(line.starts_with("{\"label\":\"many\",\"mean_ns\":"), "line: {line}");
        assert!(line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"iters\":"), "line: {line}");
    }

    #[test]
    fn groups_compose_ids_and_inputs() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Bytes(64));
        let mut hits = 0;
        group.bench_function("plain", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, x| {
            b.iter(|| hits += *x)
        });
        group.finish();
        assert_eq!(hits, 6);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
