//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this workspace vendors
//! the subset of proptest's API that its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * [`strategy::Just`], [`arbitrary::any`], numeric range strategies,
//!   tuple strategies, [`collection::vec`], and simple `".{a,b}"` string
//!   patterns.
//!
//! **No shrinking**: on failure the harness reports the case number and
//! derived seed so the exact inputs can be regenerated (runs are
//! deterministic per test name), then panics. That keeps the shim small
//! while preserving the tests' semantics: generate N random cases, assert
//! on each.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-case driving: configuration, RNG, and the runner loop.

    /// Deterministic xoshiro256** generator feeding all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from a 64-bit state via SplitMix64.
        pub fn seed_from(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng { s: [next(), next(), next(), next()] }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// A uniform draw from [0, 1).
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform integer in `[lo, hi)` (as u128 to cover all int widths).
        pub fn below(&mut self, span: u128) -> u128 {
            assert!(span > 0, "cannot sample empty range");
            if span <= u64::MAX as u128 {
                (self.next_u64() as u128 * span) >> 64
            } else {
                let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
                wide % span
            }
        }
    }

    /// Runner configuration. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Upper bound on shrinking steps after a failure.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 1024 }
        }
    }

    /// Why a test case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }
    }

    /// Runs a property over `config.cases` deterministic random cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with the given configuration.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        /// Drives `body` over the configured number of cases; the RNG for
        /// case `i` of test `name` is seeded from `fnv1a(name) ^ i`, so a
        /// failure report identifies the exact inputs.
        pub fn run_named<F>(&mut self, name: &str, mut body: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = fnv1a(name.as_bytes());
            for case in 0..self.config.cases {
                let seed = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let mut rng = TestRng::seed_from(seed);
                if let Err(TestCaseError::Fail(msg)) = body(&mut rng) {
                    panic!(
                        "property '{name}' failed at case {case}/{total} (case seed {seed:#x}): {msg}",
                        total = self.config.cases,
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of an associated type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    (self.start as u128).wrapping_add(rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    (lo as u128).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit() * (hi - lo)
        }
    }

    /// `&str` strategies are simple patterns: `".{a,b}"` produces a
    /// printable-ASCII string of length `a..=b`; any other pattern
    /// produces an alphanumeric string of length 0..=16.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
            let len = lo + rng.below((hi - lo + 1) as u128) as usize;
            (0..len)
                .map(|_| {
                    // Printable ASCII, 0x21..=0x7e.
                    char::from(0x21 + rng.below(0x5e) as u8)
                })
                .collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    //! `any::<T>()` — full-domain strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit()
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive-exclusive or inclusive-inclusive size bound.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// The `prop` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property body; on failure the current
/// case is reported with its seed and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let mut __runner = $crate::test_runner::TestRunner::new($cfg);
            __runner.run_named(stringify!($name), |__rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0usize..=3, z in 0.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in prop::collection::vec((0u8..4, 0u64..8), 1..20),
            s in ".{1,8}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in &v {
                prop_assert!(*a < 4 && *b < 8);
            }
            prop_assert!((1..=8).contains(&s.chars().count()), "len {}", s.len());
        }

        #[test]
        fn map_and_flat_map_chain(
            pair in (1u64..5).prop_flat_map(|n| (Just(n), 0u64..n)).prop_map(|(n, k)| (n, k)),
        ) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 7, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_is_honoured(_x in any::<u64>()) {
            // Body intentionally trivial; the runner loop count is the test.
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_case_info() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
