//! Unified observability: a shared, thread-safe metrics handle plus
//! text exporters, used identically by the deterministic simulator and
//! the live threaded runtime.
//!
//! Protocol nodes emit named counters and latency samples through
//! [`crate::node::Context::metric_incr`] /
//! [`crate::node::Context::metric_observe`]. Under simulation the
//! [`crate::world::World`] folds those effects into its run-level
//! [`Metrics`]; under `wanacl-rt` every node thread folds them into one
//! shared [`MetricsSink`]. Either way the result is the same bag of
//! names (the registry lives in DESIGN.md §11), exportable as:
//!
//! * [`prometheus_text`] — a Prometheus text-format snapshot, and
//! * [`metrics_jsonl`] — one self-describing JSON object per metric,
//!   suitable for campaign artifacts and offline rollups.
//!
//! Both exporters are pure functions of a [`Metrics`] value and never
//! mutate it, so exporting a snapshot cannot perturb later comparisons.

use std::sync::{Arc, Mutex};

use crate::metrics::Metrics;

/// A cheap, cloneable, thread-safe handle onto one [`Metrics`] bag.
///
/// Cloning shares the underlying bag; recording takes a short mutex
/// hold. This is the live-runtime counterpart of the simulator's
/// world-owned metrics: every node thread gets a clone and the driver
/// forwards `MetricIncr`/`MetricObserve` effects into it.
#[derive(Debug, Clone, Default)]
pub struct MetricsSink {
    inner: Arc<Mutex<Metrics>>,
}

impl MetricsSink {
    /// Creates a sink around an empty metrics bag.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Metrics> {
        // A panic while holding the lock poisons it; the metrics data
        // itself is still coherent (every mutation is atomic under the
        // lock), so keep recording rather than losing the run's numbers.
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.lock().add(name, delta);
    }

    /// Increments the named counter by one.
    pub fn incr(&self, name: &str) {
        self.lock().incr(name);
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        self.lock().observe(name, value);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counter(name)
    }

    /// A point-in-time copy of the whole bag.
    pub fn snapshot(&self) -> Metrics {
        self.lock().clone()
    }

    /// Clears all counters and histograms.
    pub fn reset(&self) {
        self.lock().reset();
    }
}

/// Maps a dotted metric name to a Prometheus-legal one:
/// `host.cache_hit` → `wanacl_host_cache_hit`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("wanacl_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Counters become `counter` samples; histograms are rendered as
/// summaries (`{quantile="..."}` samples plus `_sum` and `_count`),
/// which matches how exact-sample histograms are conventionally
/// exposed. Output is sorted by metric name and deterministic for a
/// given snapshot.
pub fn prometheus_text(metrics: &Metrics) -> String {
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} counter\n{p} {value}\n"));
    }
    for (name, hist) in metrics.histograms() {
        let Some(s) = hist.summary() else { continue };
        let p = prom_name(name);
        out.push_str(&format!("# TYPE {p} summary\n"));
        for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
            out.push_str(&format!("{p}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", s.sum, s.count));
    }
    out
}

/// Escapes the two characters that can appear in a JSON string we emit.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a non-finite-safe JSON number (JSON has no Inf/NaN).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Renders a snapshot as JSON Lines: one object per metric, each
/// tagged with `scope` (e.g. `"seed-7"` or `"rollup"`).
///
/// Counters: `{"scope":..,"kind":"counter","name":..,"value":N}`.
/// Histograms: `{"scope":..,"kind":"histogram","name":..,"count":..,
/// "sum":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}`.
///
/// Lines are sorted by kind then name; float rendering uses Rust's
/// shortest-roundtrip formatting, so two identical snapshots produce
/// byte-identical output — the property the campaign CI job asserts
/// across `--jobs` values.
pub fn metrics_jsonl(metrics: &Metrics, scope: &str) -> String {
    let scope = json_escape(scope);
    let mut out = String::new();
    for (name, value) in metrics.counters() {
        out.push_str(&format!(
            "{{\"scope\":\"{scope}\",\"kind\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
            json_escape(name),
        ));
    }
    for (name, hist) in metrics.histograms() {
        let Some(s) = hist.summary() else { continue };
        out.push_str(&format!(
            "{{\"scope\":\"{scope}\",\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\
             \"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
            json_escape(name),
            s.count,
            json_num(s.sum),
            json_num(s.mean),
            json_num(s.min),
            json_num(s.max),
            json_num(s.p50),
            json_num(s.p90),
            json_num(s.p99),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_records_and_snapshots() {
        let sink = MetricsSink::new();
        sink.incr("a");
        sink.add("a", 4);
        sink.observe("lat", 0.5);
        assert_eq!(sink.counter("a"), 5);
        let snap = sink.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.histogram("lat").map(|h| h.count()), Some(1));
        // The snapshot is a copy: later recording does not change it.
        sink.incr("a");
        assert_eq!(snap.counter("a"), 5);
        sink.reset();
        assert_eq!(sink.counter("a"), 0);
    }

    #[test]
    fn sink_clones_share_the_bag() {
        let sink = MetricsSink::new();
        let other = sink.clone();
        sink.incr("x");
        other.incr("x");
        assert_eq!(sink.counter("x"), 2);
    }

    #[test]
    fn sink_is_consistent_under_concurrent_recorders() {
        let sink = MetricsSink::new();
        std::thread::scope(|scope| {
            for t in 0..8 {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..1_000 {
                        sink.incr("shared");
                        sink.observe("lat", (t * 1_000 + i) as f64);
                    }
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.counter("shared"), 8_000);
        let s = snap.histogram("lat").and_then(|h| h.summary()).expect("samples");
        assert_eq!(s.count, 8_000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 7_999.0);
    }

    #[test]
    fn prometheus_text_renders_counters_and_summaries() {
        let mut m = Metrics::new();
        m.add("host.cache_hit", 3);
        m.observe("host.check_latency_s", 0.25);
        m.observe("host.check_latency_s", 0.75);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE wanacl_host_cache_hit counter"), "{text}");
        assert!(text.contains("wanacl_host_cache_hit 3"), "{text}");
        assert!(text.contains("wanacl_host_check_latency_s{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("wanacl_host_check_latency_s_count 2"), "{text}");
        assert!(text.contains("wanacl_host_check_latency_s_sum 1"), "{text}");
    }

    #[test]
    fn jsonl_lines_are_well_formed_and_deterministic() {
        let mut m = Metrics::new();
        m.add("host.cache_hit", 3);
        m.observe("host.check_latency_s", 0.25);
        let a = metrics_jsonl(&m, "seed-1");
        let b = metrics_jsonl(&m.clone(), "seed-1");
        assert_eq!(a, b, "identical snapshots must export byte-identically");
        for line in a.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
            assert!(line.contains("\"scope\":\"seed-1\""), "line: {line}");
            assert!(line.contains("\"name\":\"host."), "line: {line}");
        }
        assert_eq!(a.lines().count(), 2);
        assert!(a.contains("\"kind\":\"counter\",\"name\":\"host.cache_hit\",\"value\":3"));
        assert!(a.contains("\"kind\":\"histogram\",\"name\":\"host.check_latency_s\",\"count\":1"));
    }

    #[test]
    fn jsonl_escapes_quotes_and_backslashes() {
        let mut m = Metrics::new();
        m.incr("weird\"name\\x");
        let out = metrics_jsonl(&m, "s");
        assert!(out.contains("\"name\":\"weird\\\"name\\\\x\""), "{out}");
    }

    #[test]
    fn exporting_does_not_mutate_the_snapshot() {
        let mut m = Metrics::new();
        m.observe("h", 5.0);
        m.observe("h", 1.0);
        let before = m.clone();
        let _ = prometheus_text(&m);
        let _ = metrics_jsonl(&m, "x");
        assert_eq!(m, before);
    }
}
