//! The simulated world: event loop, node lifecycle, and network dispatch.
//!
//! A [`World`] owns a set of nodes (each with its own drifting clock and
//! RNG stream), a network model, an event queue ordered by real simulation
//! time, and run-level metrics/trace. Everything is deterministic in the
//! seed passed to [`World::new`].
//!
//! # Layout
//!
//! Node state is stored **struct-of-arrays**: names, boxed protocol
//! state machines, clocks, liveness metadata, and RNG streams live in
//! parallel vectors indexed by the dense [`NodeId`]. Dispatch touches only
//! the columns it needs (clock + rng + node for a delivery; a 8-byte meta
//! word for an up-check), which keeps the hot loop's working set small at
//! 10k+ nodes. Pending events live in a bucketed calendar queue (see
//! [`crate::queue`]); timer cancellation is a dense bitset over the
//! monotonically-assigned timer ids rather than a hash set.

use crate::clock::{ClockSpec, DriftClock, LocalTime};
use crate::metrics::Metrics;
use crate::net::{DropReason, NetModel, PerfectNet, Verdict};
use crate::node::{Context, Effect, Node, NodeId};
use crate::queue::{EventQueue, Scheduler};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// What the queue holds.
#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: u64, tag: u64, incarnation: u32 },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

/// Per-node liveness metadata, kept in its own dense column so up-checks
/// and incarnation guards never touch the boxed node state.
#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    up: bool,
    incarnation: u32,
}

/// Dense bitset over timer ids recording pending cancellations.
///
/// Timer ids are assigned from a monotonically increasing counter, so the
/// id space is contiguous and a bit per id beats a `HashSet<u64>`: no
/// hashing on the timer hot path and one cache line covers 512 timers.
/// The set only grows when a cancellation actually happens.
#[derive(Debug, Default)]
struct CancelSet {
    words: Vec<u64>,
}

impl CancelSet {
    fn insert(&mut self, id: u64) {
        let w = (id >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (id & 63);
    }

    /// Clears and reports the bit — `true` iff the timer was cancelled.
    fn take(&mut self, id: u64) -> bool {
        let w = (id >> 6) as usize;
        match self.words.get_mut(w) {
            Some(word) => {
                let bit = 1u64 << (id & 63);
                let was = *word & bit != 0;
                *word &= !bit;
                was
            }
            None => false,
        }
    }
}

/// A passive observer of world events, registered with
/// [`World::add_observer`].
///
/// Observers are called for every trace-worthy event *even when the
/// trace buffer is disabled*, so always-on checkers (safety oracles,
/// online statistics) do not pay the cost of storing a full trace.
/// Observers cannot affect the simulation: they see each event after it
/// has been applied and have no way to send messages or set timers, so
/// attaching one never changes a run's outcome.
///
/// `index` is the ordinal of the event among all events shown to
/// observers in this run — stable across identically-configured replays
/// of the same seed, which makes it a precise coordinate for
/// counterexample reports.
pub trait Observer {
    /// Called once per event, in simulation order.
    fn on_event(&mut self, at: SimTime, index: u64, event: &TraceEvent);
    /// Whether this observer consumes per-message `Sent`/`Delivered`
    /// events. Building those `Debug`-formats every message — the
    /// dominant allocation on the hot path of a large run — so
    /// observers that only read notes, timers, and lifecycle events
    /// should override this to return `false`. When the trace buffer is
    /// disabled and no attached observer wants message events, the
    /// world skips building them entirely (which also shifts event
    /// indices relative to a run where they are built; indices are
    /// stable across identically-configured replays either way).
    fn wants_message_events(&self) -> bool {
        true
    }
    /// Downcasting support (mirrors [`Node::as_any`]).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Handle returned by [`World::add_observer`], used to retrieve the
/// observer after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverId(usize);

/// A deterministic discrete-event world over message type `M`.
///
/// # Examples
///
/// ```
/// use wanacl_sim::prelude::*;
///
/// struct Echo;
/// impl Node for Echo {
///     type Msg = String;
///     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: NodeId, msg: String) {
///         if from != NodeId::ENV {
///             return;
///         }
///         ctx.trace(format!("got {msg}"));
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut world: World<String> = World::new(1);
/// let echo = world.add_node("echo", Box::new(Echo), ClockSpec::Perfect);
/// world.inject(SimTime::from_secs(1), echo, "hi".to_string());
/// world.run_until(SimTime::from_secs(2));
/// assert_eq!(world.now(), SimTime::from_secs(2));
/// ```
pub struct World<M> {
    now: SimTime,
    queue: EventQueue<EventKind<M>>,
    seq: u64,
    // Node arena, struct-of-arrays: parallel columns indexed by NodeId.
    names: Vec<String>,
    nodes: Vec<Box<dyn Node<Msg = M>>>,
    clocks: Vec<DriftClock>,
    meta: Vec<NodeMeta>,
    node_rngs: Vec<SimRng>,
    net: Box<dyn NetModel>,
    net_rng: SimRng,
    root_rng: SimRng,
    cancelled_timers: CancelSet,
    next_timer: u64,
    /// Reusable buffer for node effects; handlers never re-enter, so one
    /// scratch vector serves every dispatch without reallocating.
    effects_scratch: Vec<Effect<M>>,
    metrics: Metrics,
    trace: Trace,
    observers: Vec<Box<dyn Observer>>,
    observers_want_messages: bool,
    event_index: u64,
    started: bool,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<M: Clone + std::fmt::Debug + 'static> World<M> {
    /// Creates an empty world with a perfect 50 ms network and the
    /// default calendar-queue scheduler.
    pub fn new(seed: u64) -> Self {
        Self::with_scheduler(seed, Scheduler::default())
    }

    /// Creates an empty world using an explicit event [`Scheduler`].
    ///
    /// Both schedulers produce identical event orderings; the naive heap
    /// exists as a benchmarking control and parity-test oracle.
    pub fn with_scheduler(seed: u64, scheduler: Scheduler) -> Self {
        let mut root_rng = SimRng::seed_from(seed);
        let net_rng = root_rng.fork("net");
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(scheduler),
            seq: 0,
            names: Vec::new(),
            nodes: Vec::new(),
            clocks: Vec::new(),
            meta: Vec::new(),
            node_rngs: Vec::new(),
            net: Box::new(PerfectNet::new(SimDuration::from_millis(50))),
            net_rng,
            root_rng,
            cancelled_timers: CancelSet::default(),
            next_timer: 0,
            effects_scratch: Vec::new(),
            metrics: Metrics::new(),
            trace: Trace::new(),
            observers: Vec::new(),
            observers_want_messages: false,
            event_index: 0,
            started: false,
        }
    }

    /// Replaces the network model. Usually called before the first step.
    pub fn set_net(&mut self, net: Box<dyn NetModel>) {
        self.net = net;
    }

    /// Turns on event tracing (off by default).
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// Registers a passive [`Observer`] and returns a handle for
    /// retrieving it later with [`World::observer_as`].
    ///
    /// Observers see every subsequent event whether or not tracing is
    /// enabled. Register them before the first step for a complete view.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) -> ObserverId {
        self.observers_want_messages |= observer.wants_message_events();
        self.observers.push(observer);
        ObserverId(self.observers.len() - 1)
    }

    /// Immutable access to a registered observer downcast to its
    /// concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the handle is foreign or the observer is not a `T`.
    pub fn observer_as<T: 'static>(&self, id: ObserverId) -> &T {
        self.observers[id.0]
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("observer {} is not a {}", id.0, std::any::type_name::<T>()))
    }

    /// Mutable access to a registered observer downcast to its concrete
    /// type.
    ///
    /// # Panics
    ///
    /// Panics if the handle is foreign or the observer is not a `T`.
    pub fn observer_as_mut<T: 'static>(&mut self, id: ObserverId) -> &mut T {
        self.observers[id.0]
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("observer {} is not a {}", id.0, std::any::type_name::<T>()))
    }

    /// Whether per-message events (Sent/Delivered) need to be built at
    /// all: only when something will consume them.
    fn wants_message_events(&self) -> bool {
        self.trace.is_enabled() || self.observers_want_messages
    }

    /// Records an event: observers first, then the trace buffer.
    fn emit(&mut self, event: TraceEvent) {
        let at = self.now;
        let index = self.event_index;
        self.event_index += 1;
        for obs in &mut self.observers {
            obs.on_event(at, index, &event);
        }
        self.trace.push(at, event);
    }

    /// Adds a node and returns its id.
    ///
    /// Nodes added before the first step get `on_start` when the world
    /// starts; nodes added later get it immediately.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        node: Box<dyn Node<Msg = M>>,
        clock: ClockSpec,
    ) -> NodeId {
        let name = name.into();
        let mut rng = self.root_rng.fork(&format!("node:{}:{}", self.nodes.len(), name));
        let clock = clock.build(&mut rng);
        let id = NodeId(self.nodes.len() as u32);
        self.names.push(name);
        self.nodes.push(node);
        self.clocks.push(clock);
        self.meta.push(NodeMeta { up: true, incarnation: 0 });
        self.node_rngs.push(rng);
        if self.started {
            self.start_node(id);
        }
        id
    }

    /// Current real simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this world.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.meta[id.index()].up
    }

    /// The node's clock.
    pub fn clock(&self, id: NodeId) -> DriftClock {
        self.clocks[id.index()]
    }

    /// The node's local-clock reading at the current real time.
    pub fn local_time(&self, id: NodeId) -> LocalTime {
        self.clocks[id.index()].read(self.now)
    }

    /// Immutable access to a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> &T {
        self.nodes[id.index()]
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable access to a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.nodes[id.index()]
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Run-level metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable run-level metrics (for harness-side bookkeeping).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The event trace (empty unless [`World::enable_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Schedules delivery of `msg` to `to` at absolute time `at`, as if
    /// sent by the environment ([`NodeId::ENV`]). Bypasses the network.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past ({at} < {})", self.now);
        self.push(at, EventKind::Deliver { from: NodeId::ENV, to, msg });
    }

    /// Schedules a crash of `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EventKind::Recover { node });
    }

    /// Runs until the queue is exhausted or `deadline` is reached; the
    /// world's clock ends at `deadline` (or the last event, if later
    /// events do not exist).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        loop {
            match self.queue.next_time() {
                Some(at) if at <= deadline => {
                    let (at, kind) = self.queue.pop().expect("peeked");
                    self.now = at;
                    self.dispatch(kind);
                }
                _ => break,
            }
        }
        if deadline > self.now && deadline != SimTime::MAX {
            self.now = deadline;
        }
    }

    /// Runs for a real-time span from the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains or `deadline` is hit, whichever
    /// comes first; returns `true` if the queue drained. Useful for
    /// protocols with no periodic timers; a deployment with heartbeats
    /// never goes idle, so the deadline is mandatory.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        self.ensure_started();
        loop {
            match self.queue.next_time() {
                None => return true,
                Some(at) if at > deadline => return false,
                Some(_) => {
                    let (at, kind) = self.queue.pop().expect("peeked");
                    self.now = at;
                    self.dispatch(kind);
                }
            }
        }
    }

    /// Processes a single queued event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some((at, kind)) => {
                self.now = at;
                self.dispatch(kind);
                true
            }
            None => false,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.start_node(NodeId(i as u32));
        }
    }

    /// Runs a node handler with a fresh [`Context`] over the scratch
    /// effects buffer, then applies whatever the handler emitted.
    ///
    /// `call` receives the node and its context. The scratch buffer is
    /// reusable because effect application never re-enters a handler.
    fn with_node_ctx(
        &mut self,
        id: NodeId,
        call: impl FnOnce(&mut dyn Node<Msg = M>, &mut Context<'_, M>),
    ) {
        let mut effects = std::mem::take(&mut self.effects_scratch);
        debug_assert!(effects.is_empty());
        {
            let idx = id.index();
            let mut ctx = Context {
                id,
                local_now: self.clocks[idx].read(self.now),
                effects: &mut effects,
                rng: &mut self.node_rngs[idx],
                next_timer: &mut self.next_timer,
            };
            call(self.nodes[idx].as_mut(), &mut ctx);
        }
        self.apply_effects(id, &mut effects);
        effects.clear();
        self.effects_scratch = effects;
    }

    fn start_node(&mut self, id: NodeId) {
        self.with_node_ctx(id, |node, ctx| node.on_start(ctx));
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, kind);
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if to.index() >= self.nodes.len() {
                    return;
                }
                if !self.meta[to.index()].up {
                    self.metrics.incr("net.drop.destination_down");
                    self.emit(TraceEvent::Dropped {
                        from,
                        to,
                        reason: DropReason::DestinationDown,
                    });
                    return;
                }
                self.metrics.incr("net.delivered");
                if self.wants_message_events() {
                    self.emit(TraceEvent::Delivered { from, to, desc: format!("{msg:?}") });
                }
                self.with_node_ctx(to, |node, ctx| node.on_message(ctx, from, msg));
            }
            EventKind::Timer { node, id, tag, incarnation } => {
                if self.cancelled_timers.take(id) {
                    return;
                }
                let meta = self.meta[node.index()];
                if !meta.up || meta.incarnation != incarnation {
                    return;
                }
                self.emit(TraceEvent::TimerFired { node, tag });
                self.with_node_ctx(node, |n, ctx| n.on_timer(ctx, tag));
            }
            EventKind::Crash { node } => {
                let meta = &mut self.meta[node.index()];
                if !meta.up {
                    return;
                }
                meta.up = false;
                meta.incarnation += 1;
                self.nodes[node.index()].on_crash();
                self.metrics.incr("node.crashes");
                self.emit(TraceEvent::Crashed { node });
            }
            EventKind::Recover { node } => {
                if self.meta[node.index()].up {
                    return;
                }
                self.meta[node.index()].up = true;
                self.metrics.incr("node.recoveries");
                self.emit(TraceEvent::Recovered { node });
                self.with_node_ctx(node, |n, ctx| n.on_recover(ctx));
            }
        }
    }

    fn apply_effects(&mut self, origin: NodeId, effects: &mut Vec<Effect<M>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    self.metrics.incr("net.sent");
                    if self.wants_message_events() {
                        self.emit(TraceEvent::Sent { from: origin, to, desc: format!("{msg:?}") });
                    }
                    if to == origin {
                        // Self-sends bypass the network: local IPC.
                        self.push(self.now, EventKind::Deliver { from: origin, to, msg });
                        continue;
                    }
                    match self.net.transmit(origin, to, self.now, &mut self.net_rng) {
                        Verdict::Deliver(delay) => {
                            self.push(self.now + delay, EventKind::Deliver { from: origin, to, msg });
                        }
                        Verdict::Duplicate(first, second) => {
                            self.metrics.incr("net.duplicated");
                            self.push(
                                self.now + first,
                                EventKind::Deliver { from: origin, to, msg: msg.clone() },
                            );
                            self.push(self.now + second, EventKind::Deliver { from: origin, to, msg });
                        }
                        Verdict::Drop(reason) => {
                            let name = match reason {
                                DropReason::Partitioned => "net.drop.partitioned",
                                DropReason::Loss => "net.drop.loss",
                                DropReason::DestinationDown => "net.drop.destination_down",
                            };
                            self.metrics.incr(name);
                            self.emit(TraceEvent::Dropped { from: origin, to, reason });
                        }
                    }
                }
                Effect::SetTimer { id, local_delay, tag } => {
                    let real_delay = self.clocks[origin.index()].real_duration_for(local_delay);
                    self.push(
                        self.now + real_delay,
                        EventKind::Timer {
                            node: origin,
                            id: id.0,
                            tag,
                            incarnation: self.meta[origin.index()].incarnation,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.cancelled_timers.insert(id.0);
                }
                Effect::Trace { text } => {
                    self.emit(TraceEvent::Note { node: origin, text });
                }
                Effect::MetricIncr { name } => {
                    self.metrics.incr(name);
                }
                Effect::MetricObserve { name, value } => {
                    self.metrics.observe(name, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A node that answers every ping with a pong and counts traffic.
    #[derive(Debug, Default)]
    struct PingPong {
        pings: u32,
        pongs: u32,
        timer_fired: u32,
        started: bool,
        recovered: bool,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node for PingPong {
        type Msg = Msg;
        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.started = true;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping => {
                    self.pings += 1;
                    if from != NodeId::ENV {
                        ctx.send(from, Msg::Pong);
                    }
                }
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {
            self.timer_fired += 1;
        }
        fn on_crash(&mut self) {
            self.pings = 0;
        }
        fn on_recover(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.recovered = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that pings a target on start and sets a timer.
    #[derive(Debug)]
    struct Pinger {
        target: NodeId,
        got_pong: bool,
    }

    impl Node for Pinger {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, Msg::Ping);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if msg == Msg::Pong {
                self.got_pong = true;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut world: World<Msg> = World::new(1);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        let client =
            world.add_node("client", Box::new(Pinger { target: server, got_pong: false }), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(1));
        assert!(world.node_as::<PingPong>(server).started);
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
        assert!(world.node_as::<Pinger>(client).got_pong);
        assert_eq!(world.metrics().counter("net.sent"), 2);
        assert_eq!(world.metrics().counter("net.delivered"), 2);
    }

    #[test]
    fn injection_delivers_from_env() {
        let mut world: World<Msg> = World::new(2);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
    }

    #[test]
    fn crash_drops_messages_and_resets_on_handler() {
        let mut world: World<Msg> = World::new(3);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        world.schedule_crash(SimTime::from_millis(20), server);
        world.inject(SimTime::from_millis(30), server, Msg::Ping);
        world.run_until(SimTime::from_millis(40));
        // First ping arrived, crash zeroed the counter, second was dropped.
        assert_eq!(world.node_as::<PingPong>(server).pings, 0);
        assert!(!world.is_up(server));
        assert_eq!(world.metrics().counter("net.drop.destination_down"), 1);
        world.schedule_recover(SimTime::from_millis(50), server);
        world.inject(SimTime::from_millis(60), server, Msg::Ping);
        world.run_until(SimTime::from_millis(100));
        assert!(world.is_up(server));
        assert!(world.node_as::<PingPong>(server).recovered);
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
    }

    #[test]
    fn crash_invalidates_pending_timers() {
        #[derive(Debug, Default)]
        struct TimerNode {
            fired: u32,
        }
        impl Node for TimerNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_secs(10), 1);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _tag: u64) {
                self.fired += 1;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<Msg> = World::new(4);
        let node = world.add_node("t", Box::new(TimerNode::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(1));
        world.schedule_crash(SimTime::from_secs(2), node);
        world.schedule_recover(SimTime::from_secs(3), node);
        world.run_until(SimTime::from_secs(30));
        assert_eq!(world.node_as::<TimerNode>(node).fired, 0, "pre-crash timer must not fire");
    }

    #[test]
    fn timer_respects_clock_drift() {
        #[derive(Debug, Default)]
        struct TimerNode {
            fired_at: Option<SimTime>,
        }
        #[derive(Debug, Clone)]
        struct NoteTime(#[allow(dead_code)] SimTime);
        impl Node for TimerNode {
            type Msg = NoteTime;
            fn on_start(&mut self, ctx: &mut Context<'_, NoteTime>) {
                ctx.set_timer(SimDuration::from_secs(9), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, NoteTime>, _f: NodeId, _m: NoteTime) {}
            fn on_timer(&mut self, _c: &mut Context<'_, NoteTime>, _tag: u64) {
                self.fired_at = Some(SimTime::ZERO); // marker; real check below
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<NoteTime> = World::new(5);
        // Clock runs at 0.9: 9 local seconds need 10 real seconds.
        let node = world.add_node(
            "slow",
            Box::new(TimerNode::default()),
            ClockSpec::Fixed { rate: 0.9, offset: SimDuration::ZERO },
        );
        world.run_until(SimTime::from_millis(9_999));
        assert!(world.node_as::<TimerNode>(node).fired_at.is_none());
        world.run_until(SimTime::from_millis(10_001));
        assert!(world.node_as::<TimerNode>(node).fired_at.is_some());
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        #[derive(Debug, Default)]
        struct CancelNode {
            fired: bool,
        }
        impl Node for CancelNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let id = ctx.set_timer(SimDuration::from_secs(1), 7);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _tag: u64) {
                self.fired = true;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<Msg> = World::new(6);
        let node = world.add_node("c", Box::new(CancelNode::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(5));
        assert!(!world.node_as::<CancelNode>(node).fired);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> String {
            let mut world: World<Msg> = World::new(seed);
            world.enable_trace();
            let server =
                world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
            let _client = world.add_node(
                "client",
                Box::new(Pinger { target: server, got_pong: false }),
                ClockSpec::RandomRate { min_rate: 0.9 },
            );
            world.set_net(Box::new(
                crate::net::WanNet::builder()
                    .uniform_delay(SimDuration::from_millis(10), SimDuration::from_millis(100))
                    .loss(0.2)
                    .build(),
            ));
            for i in 0..50 {
                world.inject(SimTime::from_millis(100 * i + 1), server, Msg::Ping);
            }
            world.run_until(SimTime::from_secs(20));
            world.trace().to_text()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut world: World<Msg> = World::new(7);
        world.run_until(SimTime::from_secs(100));
        assert_eq!(world.now(), SimTime::from_secs(100));
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut world: World<Msg> = World::new(8);
        assert!(!world.step());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut world: World<Msg> = World::new(9);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        let t = SimTime::from_secs(1);
        for _ in 0..10 {
            world.inject(t, server, Msg::Ping);
        }
        world.run_until(t);
        assert_eq!(world.node_as::<PingPong>(server).pings, 10);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn injection_into_past_panics() {
        let mut world: World<Msg> = World::new(10);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(5));
        world.inject(SimTime::from_secs(1), server, Msg::Ping);
    }

    #[test]
    fn run_until_idle_detects_drained_queue() {
        let mut world: World<Msg> = World::new(12);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        assert!(world.run_until_idle(SimTime::from_secs(10)));
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
        // With a pending event beyond the deadline, it reports busy.
        world.inject(SimTime::from_secs(100), server, Msg::Ping);
        assert!(!world.run_until_idle(SimTime::from_secs(50)));
    }

    #[test]
    fn observers_see_events_without_trace_enabled() {
        #[derive(Default)]
        struct Counter {
            delivered: u32,
            notes: Vec<String>,
            crashes: u32,
            last_index: Option<u64>,
        }
        impl Observer for Counter {
            fn on_event(&mut self, _at: SimTime, index: u64, event: &TraceEvent) {
                if let Some(prev) = self.last_index {
                    assert!(index > prev, "indices must be strictly increasing");
                }
                self.last_index = Some(index);
                match event {
                    TraceEvent::Delivered { .. } => self.delivered += 1,
                    TraceEvent::Note { text, .. } => self.notes.push(text.clone()),
                    TraceEvent::Crashed { .. } => self.crashes += 1,
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        #[derive(Debug)]
        struct Noter;
        impl Node for Noter {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {
                ctx.trace("saw a message".to_string());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world: World<Msg> = World::new(21);
        // Trace stays DISABLED: the observer must still see everything.
        let node = world.add_node("noter", Box::new(Noter), ClockSpec::Perfect);
        let obs = world.add_observer(Box::new(Counter::default()));
        world.inject(SimTime::from_millis(5), node, Msg::Ping);
        world.schedule_crash(SimTime::from_millis(10), node);
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.trace().len(), 0, "trace buffer must stay empty");
        let counter = world.observer_as::<Counter>(obs);
        assert_eq!(counter.delivered, 1);
        assert_eq!(counter.notes, vec!["saw a message".to_string()]);
        assert_eq!(counter.crashes, 1);
    }

    #[test]
    fn opt_out_observer_suppresses_message_event_construction() {
        #[derive(Default)]
        struct NotesOnly {
            notes: u32,
            message_events: u32,
        }
        impl Observer for NotesOnly {
            fn on_event(&mut self, _at: SimTime, _index: u64, event: &TraceEvent) {
                match event {
                    TraceEvent::Note { .. } => self.notes += 1,
                    TraceEvent::Sent { .. } | TraceEvent::Delivered { .. } => {
                        self.message_events += 1
                    }
                    _ => {}
                }
            }
            fn wants_message_events(&self) -> bool {
                false
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        #[derive(Debug)]
        struct Noter;
        impl Node for Noter {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {
                ctx.trace("noted".to_string());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world: World<Msg> = World::new(22);
        let node = world.add_node("noter", Box::new(Noter), ClockSpec::Perfect);
        let obs = world.add_observer(Box::new(NotesOnly::default()));
        world.inject(SimTime::from_millis(5), node, Msg::Ping);
        world.run_until(SimTime::from_secs(1));
        // With only an opted-out observer and the trace disabled, the
        // world never builds Sent/Delivered events at all.
        let counter = world.observer_as::<NotesOnly>(obs);
        assert_eq!(counter.notes, 1);
        assert_eq!(counter.message_events, 0);
        assert_eq!(world.metrics().counter("net.delivered"), 1, "delivery itself still happens");
    }

    #[test]
    fn node_metadata_accessors() {
        let mut world: World<Msg> = World::new(11);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        assert_eq!(world.node_name(server), "server");
        assert_eq!(world.node_count(), 1);
        assert_eq!(world.clock(server).rate(), 1.0);
        world.run_until(SimTime::from_secs(2));
        assert_eq!(world.local_time(server).as_nanos(), SimTime::from_secs(2).as_nanos());
    }
}
