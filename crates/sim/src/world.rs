//! The simulated world: event loop, node lifecycle, and network dispatch.
//!
//! A [`World`] owns a set of nodes (each with its own drifting clock and
//! RNG stream), a network model, an event queue ordered by real simulation
//! time, and run-level metrics/trace. Everything is deterministic in the
//! seed passed to [`World::new`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::clock::{ClockSpec, DriftClock, LocalTime};
use crate::metrics::Metrics;
use crate::net::{DropReason, NetModel, PerfectNet, Verdict};
use crate::node::{Context, Effect, Node, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceEvent};

/// What the queue holds.
#[derive(Debug)]
enum EventKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: u64, tag: u64, incarnation: u32 },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

#[derive(Debug)]
struct QueueItem<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for QueueItem<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueueItem<M> {}
impl<M> PartialOrd for QueueItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for QueueItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Time first, then insertion order: FIFO among simultaneous events.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Slot<M> {
    name: String,
    node: Box<dyn Node<Msg = M>>,
    clock: DriftClock,
    up: bool,
    incarnation: u32,
    rng: SimRng,
}

impl<M> std::fmt::Debug for Slot<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slot")
            .field("name", &self.name)
            .field("up", &self.up)
            .field("incarnation", &self.incarnation)
            .finish_non_exhaustive()
    }
}

/// A passive observer of world events, registered with
/// [`World::add_observer`].
///
/// Observers are called for every trace-worthy event *even when the
/// trace buffer is disabled*, so always-on checkers (safety oracles,
/// online statistics) do not pay the cost of storing a full trace.
/// Observers cannot affect the simulation: they see each event after it
/// has been applied and have no way to send messages or set timers, so
/// attaching one never changes a run's outcome.
///
/// `index` is the ordinal of the event among all events shown to
/// observers in this run — stable across identically-configured replays
/// of the same seed, which makes it a precise coordinate for
/// counterexample reports.
pub trait Observer {
    /// Called once per event, in simulation order.
    fn on_event(&mut self, at: SimTime, index: u64, event: &TraceEvent);
    /// Whether this observer consumes per-message `Sent`/`Delivered`
    /// events. Building those `Debug`-formats every message — the
    /// dominant allocation on the hot path of a large run — so
    /// observers that only read notes, timers, and lifecycle events
    /// should override this to return `false`. When the trace buffer is
    /// disabled and no attached observer wants message events, the
    /// world skips building them entirely (which also shifts event
    /// indices relative to a run where they are built; indices are
    /// stable across identically-configured replays either way).
    fn wants_message_events(&self) -> bool {
        true
    }
    /// Downcasting support (mirrors [`Node::as_any`]).
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Handle returned by [`World::add_observer`], used to retrieve the
/// observer after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverId(usize);

/// A deterministic discrete-event world over message type `M`.
///
/// # Examples
///
/// ```
/// use wanacl_sim::prelude::*;
///
/// struct Echo;
/// impl Node for Echo {
///     type Msg = String;
///     fn on_message(&mut self, ctx: &mut Context<'_, String>, from: NodeId, msg: String) {
///         if from != NodeId::ENV {
///             return;
///         }
///         ctx.trace(format!("got {msg}"));
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut world: World<String> = World::new(1);
/// let echo = world.add_node("echo", Box::new(Echo), ClockSpec::Perfect);
/// world.inject(SimTime::from_secs(1), echo, "hi".to_string());
/// world.run_until(SimTime::from_secs(2));
/// assert_eq!(world.now(), SimTime::from_secs(2));
/// ```
pub struct World<M> {
    now: SimTime,
    queue: BinaryHeap<Reverse<QueueItem<M>>>,
    seq: u64,
    slots: Vec<Slot<M>>,
    net: Box<dyn NetModel>,
    net_rng: SimRng,
    root_rng: SimRng,
    cancelled_timers: HashSet<u64>,
    next_timer: u64,
    metrics: Metrics,
    trace: Trace,
    observers: Vec<Box<dyn Observer>>,
    observers_want_messages: bool,
    event_index: u64,
    started: bool,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.slots.len())
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<M: Clone + std::fmt::Debug + 'static> World<M> {
    /// Creates an empty world with a perfect 50 ms network.
    pub fn new(seed: u64) -> Self {
        let mut root_rng = SimRng::seed_from(seed);
        let net_rng = root_rng.fork("net");
        World {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            slots: Vec::new(),
            net: Box::new(PerfectNet::new(SimDuration::from_millis(50))),
            net_rng,
            root_rng,
            cancelled_timers: HashSet::new(),
            next_timer: 0,
            metrics: Metrics::new(),
            trace: Trace::new(),
            observers: Vec::new(),
            observers_want_messages: false,
            event_index: 0,
            started: false,
        }
    }

    /// Replaces the network model. Usually called before the first step.
    pub fn set_net(&mut self, net: Box<dyn NetModel>) {
        self.net = net;
    }

    /// Turns on event tracing (off by default).
    pub fn enable_trace(&mut self) {
        self.trace.set_enabled(true);
    }

    /// Registers a passive [`Observer`] and returns a handle for
    /// retrieving it later with [`World::observer_as`].
    ///
    /// Observers see every subsequent event whether or not tracing is
    /// enabled. Register them before the first step for a complete view.
    pub fn add_observer(&mut self, observer: Box<dyn Observer>) -> ObserverId {
        self.observers_want_messages |= observer.wants_message_events();
        self.observers.push(observer);
        ObserverId(self.observers.len() - 1)
    }

    /// Immutable access to a registered observer downcast to its
    /// concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the handle is foreign or the observer is not a `T`.
    pub fn observer_as<T: 'static>(&self, id: ObserverId) -> &T {
        self.observers[id.0]
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("observer {} is not a {}", id.0, std::any::type_name::<T>()))
    }

    /// Mutable access to a registered observer downcast to its concrete
    /// type.
    ///
    /// # Panics
    ///
    /// Panics if the handle is foreign or the observer is not a `T`.
    pub fn observer_as_mut<T: 'static>(&mut self, id: ObserverId) -> &mut T {
        self.observers[id.0]
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("observer {} is not a {}", id.0, std::any::type_name::<T>()))
    }

    /// Whether per-message events (Sent/Delivered) need to be built at
    /// all: only when something will consume them.
    fn wants_message_events(&self) -> bool {
        self.trace.is_enabled() || self.observers_want_messages
    }

    /// Records an event: observers first, then the trace buffer.
    fn emit(&mut self, event: TraceEvent) {
        let at = self.now;
        let index = self.event_index;
        self.event_index += 1;
        for obs in &mut self.observers {
            obs.on_event(at, index, &event);
        }
        self.trace.push(at, event);
    }

    /// Adds a node and returns its id.
    ///
    /// Nodes added before the first step get `on_start` when the world
    /// starts; nodes added later get it immediately.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        node: Box<dyn Node<Msg = M>>,
        clock: ClockSpec,
    ) -> NodeId {
        let name = name.into();
        let mut rng = self.root_rng.fork(&format!("node:{}:{}", self.slots.len(), name));
        let clock = clock.build(&mut rng);
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(Slot { name, node, clock, up: true, incarnation: 0, rng });
        if self.started {
            self.start_node(id);
        }
        id
    }

    /// Current real simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// The name a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this world.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.slots[id.index()].name
    }

    /// Whether the node is currently up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.slots[id.index()].up
    }

    /// The node's clock.
    pub fn clock(&self, id: NodeId) -> DriftClock {
        self.slots[id.index()].clock
    }

    /// The node's local-clock reading at the current real time.
    pub fn local_time(&self, id: NodeId) -> LocalTime {
        self.slots[id.index()].clock.read(self.now)
    }

    /// Immutable access to a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> &T {
        self.slots[id.index()]
            .node
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutable access to a node downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a `T`.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        self.slots[id.index()]
            .node
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("node {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Run-level metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable run-level metrics (for harness-side bookkeeping).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The event trace (empty unless [`World::enable_trace`] was called).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Schedules delivery of `msg` to `to` at absolute time `at`, as if
    /// sent by the environment ([`NodeId::ENV`]). Bypasses the network.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn inject(&mut self, at: SimTime, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject into the past ({at} < {})", self.now);
        self.push(at, EventKind::Deliver { from: NodeId::ENV, to, msg });
    }

    /// Schedules a crash of `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_crash(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EventKind::Crash { node });
    }

    /// Schedules a recovery of `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_recover(&mut self, at: SimTime, node: NodeId) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.push(at, EventKind::Recover { node });
    }

    /// Runs until the queue is exhausted or `deadline` is reached; the
    /// world's clock ends at `deadline` (or the last event, if later
    /// events do not exist).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        loop {
            match self.queue.peek() {
                Some(Reverse(item)) if item.at <= deadline => {
                    let Reverse(item) = self.queue.pop().expect("peeked");
                    self.now = item.at;
                    self.dispatch(item.kind);
                }
                _ => break,
            }
        }
        if deadline > self.now && deadline != SimTime::MAX {
            self.now = deadline;
        }
    }

    /// Runs for a real-time span from the current time.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs until the event queue drains or `deadline` is hit, whichever
    /// comes first; returns `true` if the queue drained. Useful for
    /// protocols with no periodic timers; a deployment with heartbeats
    /// never goes idle, so the deadline is mandatory.
    pub fn run_until_idle(&mut self, deadline: SimTime) -> bool {
        self.ensure_started();
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(item)) if item.at > deadline => return false,
                Some(_) => {
                    let Reverse(item) = self.queue.pop().expect("peeked");
                    self.now = item.at;
                    self.dispatch(item.kind);
                }
            }
        }
    }

    /// Processes a single queued event. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        match self.queue.pop() {
            Some(Reverse(item)) => {
                self.now = item.at;
                self.dispatch(item.kind);
                true
            }
            None => false,
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.slots.len() {
            self.start_node(NodeId(i as u32));
        }
    }

    fn start_node(&mut self, id: NodeId) {
        let mut effects = Vec::new();
        {
            let slot = &mut self.slots[id.index()];
            let mut ctx = Context {
                id,
                local_now: slot.clock.read(self.now),
                effects: &mut effects,
                rng: &mut slot.rng,
                next_timer: &mut self.next_timer,
            };
            slot.node.on_start(&mut ctx);
        }
        self.apply_effects(id, effects);
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(QueueItem { at, seq, kind }));
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver { from, to, msg } => {
                if to.index() >= self.slots.len() {
                    return;
                }
                if !self.slots[to.index()].up {
                    self.metrics.incr("net.drop.destination_down");
                    self.emit(TraceEvent::Dropped {
                        from,
                        to,
                        reason: DropReason::DestinationDown,
                    });
                    return;
                }
                self.metrics.incr("net.delivered");
                if self.wants_message_events() {
                    self.emit(TraceEvent::Delivered { from, to, desc: format!("{msg:?}") });
                }
                let mut effects = Vec::new();
                {
                    let slot = &mut self.slots[to.index()];
                    let mut ctx = Context {
                        id: to,
                        local_now: slot.clock.read(self.now),
                        effects: &mut effects,
                        rng: &mut slot.rng,
                        next_timer: &mut self.next_timer,
                    };
                    slot.node.on_message(&mut ctx, from, msg);
                }
                self.apply_effects(to, effects);
            }
            EventKind::Timer { node, id, tag, incarnation } => {
                if self.cancelled_timers.remove(&id) {
                    return;
                }
                let slot_ok = {
                    let slot = &self.slots[node.index()];
                    slot.up && slot.incarnation == incarnation
                };
                if !slot_ok {
                    return;
                }
                self.emit(TraceEvent::TimerFired { node, tag });
                let mut effects = Vec::new();
                {
                    let slot = &mut self.slots[node.index()];
                    let mut ctx = Context {
                        id: node,
                        local_now: slot.clock.read(self.now),
                        effects: &mut effects,
                        rng: &mut slot.rng,
                        next_timer: &mut self.next_timer,
                    };
                    slot.node.on_timer(&mut ctx, tag);
                }
                self.apply_effects(node, effects);
            }
            EventKind::Crash { node } => {
                let slot = &mut self.slots[node.index()];
                if !slot.up {
                    return;
                }
                slot.up = false;
                slot.incarnation += 1;
                slot.node.on_crash();
                self.metrics.incr("node.crashes");
                self.emit(TraceEvent::Crashed { node });
            }
            EventKind::Recover { node } => {
                let up = self.slots[node.index()].up;
                if up {
                    return;
                }
                self.slots[node.index()].up = true;
                self.metrics.incr("node.recoveries");
                self.emit(TraceEvent::Recovered { node });
                let mut effects = Vec::new();
                {
                    let slot = &mut self.slots[node.index()];
                    let mut ctx = Context {
                        id: node,
                        local_now: slot.clock.read(self.now),
                        effects: &mut effects,
                        rng: &mut slot.rng,
                        next_timer: &mut self.next_timer,
                    };
                    slot.node.on_recover(&mut ctx);
                }
                self.apply_effects(node, effects);
            }
        }
    }

    fn apply_effects(&mut self, origin: NodeId, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    self.metrics.incr("net.sent");
                    if self.wants_message_events() {
                        self.emit(TraceEvent::Sent { from: origin, to, desc: format!("{msg:?}") });
                    }
                    if to == origin {
                        // Self-sends bypass the network: local IPC.
                        self.push(self.now, EventKind::Deliver { from: origin, to, msg });
                        continue;
                    }
                    match self.net.transmit(origin, to, self.now, &mut self.net_rng) {
                        Verdict::Deliver(delay) => {
                            self.push(self.now + delay, EventKind::Deliver { from: origin, to, msg });
                        }
                        Verdict::Duplicate(first, second) => {
                            self.metrics.incr("net.duplicated");
                            self.push(
                                self.now + first,
                                EventKind::Deliver { from: origin, to, msg: msg.clone() },
                            );
                            self.push(self.now + second, EventKind::Deliver { from: origin, to, msg });
                        }
                        Verdict::Drop(reason) => {
                            let name = match reason {
                                DropReason::Partitioned => "net.drop.partitioned",
                                DropReason::Loss => "net.drop.loss",
                                DropReason::DestinationDown => "net.drop.destination_down",
                            };
                            self.metrics.incr(name);
                            self.emit(TraceEvent::Dropped { from: origin, to, reason });
                        }
                    }
                }
                Effect::SetTimer { id, local_delay, tag } => {
                    let slot = &self.slots[origin.index()];
                    let real_delay = slot.clock.real_duration_for(local_delay);
                    self.push(
                        self.now + real_delay,
                        EventKind::Timer {
                            node: origin,
                            id: id.0,
                            tag,
                            incarnation: slot.incarnation,
                        },
                    );
                }
                Effect::CancelTimer { id } => {
                    self.cancelled_timers.insert(id.0);
                }
                Effect::Trace { text } => {
                    self.emit(TraceEvent::Note { node: origin, text });
                }
                Effect::MetricIncr { name } => {
                    self.metrics.incr(name);
                }
                Effect::MetricObserve { name, value } => {
                    self.metrics.observe(name, value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A node that answers every ping with a pong and counts traffic.
    #[derive(Debug, Default)]
    struct PingPong {
        pings: u32,
        pongs: u32,
        timer_fired: u32,
        started: bool,
        recovered: bool,
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping,
        Pong,
    }

    impl Node for PingPong {
        type Msg = Msg;
        fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.started = true;
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
            match msg {
                Msg::Ping => {
                    self.pings += 1;
                    if from != NodeId::ENV {
                        ctx.send(from, Msg::Pong);
                    }
                }
                Msg::Pong => self.pongs += 1,
            }
        }
        fn on_timer(&mut self, _ctx: &mut Context<'_, Msg>, _tag: u64) {
            self.timer_fired += 1;
        }
        fn on_crash(&mut self) {
            self.pings = 0;
        }
        fn on_recover(&mut self, _ctx: &mut Context<'_, Msg>) {
            self.recovered = true;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that pings a target on start and sets a timer.
    #[derive(Debug)]
    struct Pinger {
        target: NodeId,
        got_pong: bool,
    }

    impl Node for Pinger {
        type Msg = Msg;
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.target, Msg::Ping);
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, Msg>, _from: NodeId, msg: Msg) {
            if msg == Msg::Pong {
                self.got_pong = true;
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn ping_pong_roundtrip() {
        let mut world: World<Msg> = World::new(1);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        let client =
            world.add_node("client", Box::new(Pinger { target: server, got_pong: false }), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(1));
        assert!(world.node_as::<PingPong>(server).started);
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
        assert!(world.node_as::<Pinger>(client).got_pong);
        assert_eq!(world.metrics().counter("net.sent"), 2);
        assert_eq!(world.metrics().counter("net.delivered"), 2);
    }

    #[test]
    fn injection_delivers_from_env() {
        let mut world: World<Msg> = World::new(2);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
    }

    #[test]
    fn crash_drops_messages_and_resets_on_handler() {
        let mut world: World<Msg> = World::new(3);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        world.schedule_crash(SimTime::from_millis(20), server);
        world.inject(SimTime::from_millis(30), server, Msg::Ping);
        world.run_until(SimTime::from_millis(40));
        // First ping arrived, crash zeroed the counter, second was dropped.
        assert_eq!(world.node_as::<PingPong>(server).pings, 0);
        assert!(!world.is_up(server));
        assert_eq!(world.metrics().counter("net.drop.destination_down"), 1);
        world.schedule_recover(SimTime::from_millis(50), server);
        world.inject(SimTime::from_millis(60), server, Msg::Ping);
        world.run_until(SimTime::from_millis(100));
        assert!(world.is_up(server));
        assert!(world.node_as::<PingPong>(server).recovered);
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
    }

    #[test]
    fn crash_invalidates_pending_timers() {
        #[derive(Debug, Default)]
        struct TimerNode {
            fired: u32,
        }
        impl Node for TimerNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_secs(10), 1);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _tag: u64) {
                self.fired += 1;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<Msg> = World::new(4);
        let node = world.add_node("t", Box::new(TimerNode::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(1));
        world.schedule_crash(SimTime::from_secs(2), node);
        world.schedule_recover(SimTime::from_secs(3), node);
        world.run_until(SimTime::from_secs(30));
        assert_eq!(world.node_as::<TimerNode>(node).fired, 0, "pre-crash timer must not fire");
    }

    #[test]
    fn timer_respects_clock_drift() {
        #[derive(Debug, Default)]
        struct TimerNode {
            fired_at: Option<SimTime>,
        }
        #[derive(Debug, Clone)]
        struct NoteTime(#[allow(dead_code)] SimTime);
        impl Node for TimerNode {
            type Msg = NoteTime;
            fn on_start(&mut self, ctx: &mut Context<'_, NoteTime>) {
                ctx.set_timer(SimDuration::from_secs(9), 0);
            }
            fn on_message(&mut self, _c: &mut Context<'_, NoteTime>, _f: NodeId, _m: NoteTime) {}
            fn on_timer(&mut self, _c: &mut Context<'_, NoteTime>, _tag: u64) {
                self.fired_at = Some(SimTime::ZERO); // marker; real check below
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<NoteTime> = World::new(5);
        // Clock runs at 0.9: 9 local seconds need 10 real seconds.
        let node = world.add_node(
            "slow",
            Box::new(TimerNode::default()),
            ClockSpec::Fixed { rate: 0.9, offset: SimDuration::ZERO },
        );
        world.run_until(SimTime::from_millis(9_999));
        assert!(world.node_as::<TimerNode>(node).fired_at.is_none());
        world.run_until(SimTime::from_millis(10_001));
        assert!(world.node_as::<TimerNode>(node).fired_at.is_some());
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        #[derive(Debug, Default)]
        struct CancelNode {
            fired: bool,
        }
        impl Node for CancelNode {
            type Msg = Msg;
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                let id = ctx.set_timer(SimDuration::from_secs(1), 7);
                ctx.cancel_timer(id);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _tag: u64) {
                self.fired = true;
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut world: World<Msg> = World::new(6);
        let node = world.add_node("c", Box::new(CancelNode::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(5));
        assert!(!world.node_as::<CancelNode>(node).fired);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run(seed: u64) -> String {
            let mut world: World<Msg> = World::new(seed);
            world.enable_trace();
            let server =
                world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
            let _client = world.add_node(
                "client",
                Box::new(Pinger { target: server, got_pong: false }),
                ClockSpec::RandomRate { min_rate: 0.9 },
            );
            world.set_net(Box::new(
                crate::net::WanNet::builder()
                    .uniform_delay(SimDuration::from_millis(10), SimDuration::from_millis(100))
                    .loss(0.2)
                    .build(),
            ));
            for i in 0..50 {
                world.inject(SimTime::from_millis(100 * i + 1), server, Msg::Ping);
            }
            world.run_until(SimTime::from_secs(20));
            world.trace().to_text()
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut world: World<Msg> = World::new(7);
        world.run_until(SimTime::from_secs(100));
        assert_eq!(world.now(), SimTime::from_secs(100));
    }

    #[test]
    fn step_returns_false_on_empty_queue() {
        let mut world: World<Msg> = World::new(8);
        assert!(!world.step());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut world: World<Msg> = World::new(9);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        let t = SimTime::from_secs(1);
        for _ in 0..10 {
            world.inject(t, server, Msg::Ping);
        }
        world.run_until(t);
        assert_eq!(world.node_as::<PingPong>(server).pings, 10);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn injection_into_past_panics() {
        let mut world: World<Msg> = World::new(10);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.run_until(SimTime::from_secs(5));
        world.inject(SimTime::from_secs(1), server, Msg::Ping);
    }

    #[test]
    fn run_until_idle_detects_drained_queue() {
        let mut world: World<Msg> = World::new(12);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        world.inject(SimTime::from_millis(10), server, Msg::Ping);
        assert!(world.run_until_idle(SimTime::from_secs(10)));
        assert_eq!(world.node_as::<PingPong>(server).pings, 1);
        // With a pending event beyond the deadline, it reports busy.
        world.inject(SimTime::from_secs(100), server, Msg::Ping);
        assert!(!world.run_until_idle(SimTime::from_secs(50)));
    }

    #[test]
    fn observers_see_events_without_trace_enabled() {
        #[derive(Default)]
        struct Counter {
            delivered: u32,
            notes: Vec<String>,
            crashes: u32,
            last_index: Option<u64>,
        }
        impl Observer for Counter {
            fn on_event(&mut self, _at: SimTime, index: u64, event: &TraceEvent) {
                if let Some(prev) = self.last_index {
                    assert!(index > prev, "indices must be strictly increasing");
                }
                self.last_index = Some(index);
                match event {
                    TraceEvent::Delivered { .. } => self.delivered += 1,
                    TraceEvent::Note { text, .. } => self.notes.push(text.clone()),
                    TraceEvent::Crashed { .. } => self.crashes += 1,
                    _ => {}
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        #[derive(Debug)]
        struct Noter;
        impl Node for Noter {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {
                ctx.trace("saw a message".to_string());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world: World<Msg> = World::new(21);
        // Trace stays DISABLED: the observer must still see everything.
        let node = world.add_node("noter", Box::new(Noter), ClockSpec::Perfect);
        let obs = world.add_observer(Box::new(Counter::default()));
        world.inject(SimTime::from_millis(5), node, Msg::Ping);
        world.schedule_crash(SimTime::from_millis(10), node);
        world.run_until(SimTime::from_secs(1));
        assert_eq!(world.trace().len(), 0, "trace buffer must stay empty");
        let counter = world.observer_as::<Counter>(obs);
        assert_eq!(counter.delivered, 1);
        assert_eq!(counter.notes, vec!["saw a message".to_string()]);
        assert_eq!(counter.crashes, 1);
    }

    #[test]
    fn opt_out_observer_suppresses_message_event_construction() {
        #[derive(Default)]
        struct NotesOnly {
            notes: u32,
            message_events: u32,
        }
        impl Observer for NotesOnly {
            fn on_event(&mut self, _at: SimTime, _index: u64, event: &TraceEvent) {
                match event {
                    TraceEvent::Note { .. } => self.notes += 1,
                    TraceEvent::Sent { .. } | TraceEvent::Delivered { .. } => {
                        self.message_events += 1
                    }
                    _ => {}
                }
            }
            fn wants_message_events(&self) -> bool {
                false
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        #[derive(Debug)]
        struct Noter;
        impl Node for Noter {
            type Msg = Msg;
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _m: Msg) {
                ctx.trace("noted".to_string());
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }

        let mut world: World<Msg> = World::new(22);
        let node = world.add_node("noter", Box::new(Noter), ClockSpec::Perfect);
        let obs = world.add_observer(Box::new(NotesOnly::default()));
        world.inject(SimTime::from_millis(5), node, Msg::Ping);
        world.run_until(SimTime::from_secs(1));
        // With only an opted-out observer and the trace disabled, the
        // world never builds Sent/Delivered events at all.
        let counter = world.observer_as::<NotesOnly>(obs);
        assert_eq!(counter.notes, 1);
        assert_eq!(counter.message_events, 0);
        assert_eq!(world.metrics().counter("net.delivered"), 1, "delivery itself still happens");
    }

    #[test]
    fn node_metadata_accessors() {
        let mut world: World<Msg> = World::new(11);
        let server = world.add_node("server", Box::new(PingPong::default()), ClockSpec::Perfect);
        assert_eq!(world.node_name(server), "server");
        assert_eq!(world.node_count(), 1);
        assert_eq!(world.clock(server).rate(), 1.0);
        world.run_until(SimTime::from_secs(2));
        assert_eq!(world.local_time(server).as_nanos(), SimTime::from_secs(2).as_nanos());
    }
}
