//! Stable-storage abstraction for crash-durable protocol nodes.
//!
//! The paper's quorum-intersection guarantee (every check quorum `C`
//! intersects every completed update quorum `M − C + 1`) only holds if a
//! manager that *acknowledged* an update can still answer for it after a
//! crash. That requires an op log on stable storage. This module defines
//! the [`Storage`] trait — an append-only write-ahead log plus an
//! atomically-replaced snapshot — and a deterministic in-memory
//! implementation, [`SimStorage`], whose fault model covers the classic
//! disk failure modes:
//!
//! * **crash-before-fsync / lost unflushed suffix** — records appended but
//!   not yet [`Storage::sync`]ed are discarded on [`Storage::crash`];
//! * **torn tail record** — with configurable probability a crash leaves a
//!   partially-written final record, which recovery detects and discards;
//! * **transient sync failure** — [`Storage::sync`] can fail (EIO-style),
//!   leaving the unflushed buffer intact for a later retry.
//!
//! Everything is seeded, so campaigns that inject disk faults replay
//! exactly. A file-backed implementation with the same contract lives in
//! the `wanacl-rt` crate.

use std::any::Any;

use crate::rng::SimRng;

/// Error returned by storage operations.
///
/// All failures modeled here are *transient*: the caller may retry the
/// operation later (the unflushed buffer is preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageError {
    /// The sync barrier failed; buffered records were NOT made durable.
    SyncFailed,
    /// An I/O error occurred writing the snapshot or log.
    Io,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::SyncFailed => write!(f, "sync barrier failed"),
            StorageError::Io => write!(f, "storage i/o error"),
        }
    }
}

impl std::error::Error for StorageError {}

/// What [`Storage::recover`] found on stable storage.
#[derive(Debug, Clone, Default)]
pub struct Recovered {
    /// The most recent complete snapshot, if one was ever written.
    pub snapshot: Option<Vec<u8>>,
    /// WAL records that survived (appended after the snapshot, in append
    /// order). Torn or corrupt tail records have already been discarded.
    pub records: Vec<Vec<u8>>,
    /// Number of torn/corrupt records discarded during recovery.
    pub torn_records: u64,
}

/// Cumulative operation counters for a storage instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Records appended (durable or not).
    pub appends: u64,
    /// Successful sync barriers.
    pub syncs: u64,
    /// Failed sync barriers.
    pub sync_failures: u64,
    /// Snapshots written (each truncates the WAL).
    pub snapshots: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// Torn records discarded across all recoveries.
    pub torn_records: u64,
    /// Unflushed records lost to crashes (the lost-suffix failure mode).
    pub lost_records: u64,
}

/// An append-only op log plus snapshot on stable storage.
///
/// Contract (what "stable" means here):
///
/// * records appended then [`sync`](Storage::sync)ed successfully survive
///   any later [`crash`](Storage::crash);
/// * records appended but not synced MAY be lost on crash (and in
///   [`SimStorage`] always are — the pessimistic model);
/// * [`write_snapshot`](Storage::write_snapshot) atomically replaces the
///   previous snapshot and truncates the log — a crash mid-snapshot never
///   leaves a half-written snapshot visible;
/// * [`recover`](Storage::recover) returns the latest snapshot plus every
///   surviving post-snapshot record, discarding any torn tail.
pub trait Storage: std::fmt::Debug + Send {
    /// Buffers a record for the op log. Durable only after a successful
    /// [`sync`](Storage::sync).
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError>;

    /// Write barrier: makes all buffered records durable. On failure the
    /// buffer is kept so the caller can retry.
    fn sync(&mut self) -> Result<(), StorageError>;

    /// Atomically replaces the snapshot and truncates the op log.
    fn write_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError>;

    /// Reads back durable state after a crash (or at first boot).
    fn recover(&mut self) -> Recovered;

    /// Models process death: unflushed state is lost according to the
    /// implementation's fault model. Durable state is untouched.
    fn crash(&mut self);

    /// Operation counters.
    fn stats(&self) -> StorageStats;

    /// Downcast support (e.g. to reach [`SimStorage`] fault knobs).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Disk fault probabilities for [`SimStorage`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskFaultModel {
    /// Probability that a [`Storage::sync`] barrier fails transiently.
    pub sync_fail_prob: f64,
    /// Probability that a crash with unflushed records leaves a torn
    /// (partially-written) tail record for recovery to discard.
    pub torn_tail_prob: f64,
}

impl Default for DiskFaultModel {
    fn default() -> Self {
        DiskFaultModel { sync_fail_prob: 0.0, torn_tail_prob: 0.0 }
    }
}

/// Deterministic in-memory stable storage with fault injection.
///
/// ```
/// use wanacl_sim::storage::{SimStorage, Storage};
///
/// let mut st = SimStorage::new(7);
/// st.append(b"op-1").unwrap();
/// st.sync().unwrap();
/// st.append(b"op-2").unwrap(); // never synced
/// st.crash();
/// let rec = st.recover();
/// assert_eq!(rec.records, vec![b"op-1".to_vec()]); // suffix lost
/// ```
#[derive(Debug)]
pub struct SimStorage {
    /// Records that survived a sync barrier.
    durable: Vec<Vec<u8>>,
    /// Appended but not yet synced.
    buffered: Vec<Vec<u8>>,
    snapshot: Option<Vec<u8>>,
    /// Torn records planted by crashes, reported by the next recovery.
    pending_torn: u64,
    faults: DiskFaultModel,
    rng: SimRng,
    stats: StorageStats,
    /// Planted-bug hook: when set, `recover()` silently discards the WAL
    /// and snapshot, as if the log file were deleted. The durability
    /// oracle must catch this.
    drop_state_on_recover: bool,
}

impl SimStorage {
    /// Creates fault-free storage with a deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        SimStorage::with_faults(seed, DiskFaultModel::default())
    }

    /// Creates storage with the given fault model.
    pub fn with_faults(seed: u64, faults: DiskFaultModel) -> Self {
        SimStorage {
            durable: Vec::new(),
            buffered: Vec::new(),
            snapshot: None,
            pending_torn: 0,
            faults,
            rng: SimRng::seed_from(seed ^ 0x5349_4d53_544f_5245), // "SIMSTORE"
            stats: StorageStats::default(),
            drop_state_on_recover: false,
        }
    }

    /// Replaces the fault model (used when a nemesis plan layers disk
    /// faults onto a node).
    pub fn set_fault_model(&mut self, faults: DiskFaultModel) {
        self.faults = faults;
    }

    /// Arms the planted drop-the-WAL bug: the next recovery returns
    /// nothing, as if stable storage were wiped.
    pub fn set_drop_state_on_recover(&mut self, drop: bool) {
        self.drop_state_on_recover = drop;
    }

    /// Number of records currently held (durable + buffered).
    pub fn wal_len(&self) -> usize {
        self.durable.len() + self.buffered.len()
    }

    /// Number of appended-but-unsynced records.
    pub fn unflushed_len(&self) -> usize {
        self.buffered.len()
    }
}

impl Storage for SimStorage {
    fn append(&mut self, record: &[u8]) -> Result<(), StorageError> {
        self.stats.appends += 1;
        self.buffered.push(record.to_vec());
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        if !self.buffered.is_empty() && self.rng.chance(self.faults.sync_fail_prob) {
            self.stats.sync_failures += 1;
            return Err(StorageError::SyncFailed);
        }
        self.stats.syncs += 1;
        self.durable.append(&mut self.buffered);
        Ok(())
    }

    fn write_snapshot(&mut self, snapshot: &[u8]) -> Result<(), StorageError> {
        // Atomic-rename semantics: the new snapshot replaces the old one
        // in a single step and the log is truncated with it.
        self.snapshot = Some(snapshot.to_vec());
        self.durable.clear();
        self.buffered.clear();
        self.stats.snapshots += 1;
        Ok(())
    }

    fn recover(&mut self) -> Recovered {
        self.stats.recoveries += 1;
        let torn = self.pending_torn;
        self.pending_torn = 0;
        self.stats.torn_records += torn;
        if self.drop_state_on_recover {
            // Planted bug: stable storage "reads back" empty.
            self.durable.clear();
            self.buffered.clear();
            self.snapshot = None;
            return Recovered { snapshot: None, records: Vec::new(), torn_records: torn };
        }
        Recovered {
            snapshot: self.snapshot.clone(),
            records: self.durable.clone(),
            torn_records: torn,
        }
    }

    fn crash(&mut self) {
        // Lost-unflushed-suffix: everything past the last sync barrier is
        // gone. With probability `torn_tail_prob` the first lost record
        // was partially written — it reaches the platter as a torn record
        // the next recovery must detect and discard.
        if !self.buffered.is_empty() {
            self.stats.lost_records += self.buffered.len() as u64;
            if self.rng.chance(self.faults.torn_tail_prob) {
                self.pending_torn += 1;
            }
            self.buffered.clear();
        }
    }

    fn stats(&self) -> StorageStats {
        self.stats
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_records_survive_crash() {
        let mut st = SimStorage::new(1);
        st.append(b"a").unwrap();
        st.append(b"b").unwrap();
        st.sync().unwrap();
        st.crash();
        let rec = st.recover();
        assert_eq!(rec.records, vec![b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(rec.torn_records, 0);
    }

    #[test]
    fn unsynced_suffix_is_lost_on_crash() {
        let mut st = SimStorage::new(2);
        st.append(b"a").unwrap();
        st.sync().unwrap();
        st.append(b"lost").unwrap();
        st.crash();
        let rec = st.recover();
        assert_eq!(rec.records, vec![b"a".to_vec()]);
        assert_eq!(st.stats().lost_records, 1);
    }

    #[test]
    fn snapshot_truncates_log_and_survives() {
        let mut st = SimStorage::new(3);
        st.append(b"a").unwrap();
        st.sync().unwrap();
        st.write_snapshot(b"snap").unwrap();
        st.append(b"after").unwrap();
        st.sync().unwrap();
        st.crash();
        let rec = st.recover();
        assert_eq!(rec.snapshot, Some(b"snap".to_vec()));
        assert_eq!(rec.records, vec![b"after".to_vec()]);
    }

    #[test]
    fn sync_failure_keeps_buffer_for_retry() {
        let mut st =
            SimStorage::with_faults(4, DiskFaultModel { sync_fail_prob: 1.0, torn_tail_prob: 0.0 });
        st.append(b"a").unwrap();
        assert_eq!(st.sync(), Err(StorageError::SyncFailed));
        assert_eq!(st.unflushed_len(), 1);
        st.set_fault_model(DiskFaultModel::default());
        st.sync().unwrap();
        st.crash();
        assert_eq!(st.recover().records, vec![b"a".to_vec()]);
    }

    #[test]
    fn torn_tail_is_reported_once() {
        let mut st =
            SimStorage::with_faults(5, DiskFaultModel { sync_fail_prob: 0.0, torn_tail_prob: 1.0 });
        st.append(b"a").unwrap();
        st.crash();
        let rec = st.recover();
        assert_eq!(rec.torn_records, 1);
        assert!(rec.records.is_empty());
        // The torn tail was discarded; it is not reported again.
        assert_eq!(st.recover().torn_records, 0);
    }

    #[test]
    fn crash_with_empty_buffer_tears_nothing() {
        let mut st =
            SimStorage::with_faults(6, DiskFaultModel { sync_fail_prob: 0.0, torn_tail_prob: 1.0 });
        st.append(b"a").unwrap();
        st.sync().unwrap();
        st.crash();
        assert_eq!(st.recover().torn_records, 0);
        assert_eq!(st.stats().lost_records, 0);
    }

    #[test]
    fn drop_state_bug_wipes_everything() {
        let mut st = SimStorage::new(7);
        st.append(b"a").unwrap();
        st.sync().unwrap();
        st.write_snapshot(b"snap").unwrap();
        st.append(b"b").unwrap();
        st.sync().unwrap();
        st.set_drop_state_on_recover(true);
        st.crash();
        let rec = st.recover();
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
    }

    #[test]
    fn fault_sequence_is_deterministic() {
        let run = |seed| {
            let mut st = SimStorage::with_faults(
                seed,
                DiskFaultModel { sync_fail_prob: 0.5, torn_tail_prob: 0.5 },
            );
            let mut outcomes = Vec::new();
            for i in 0..32u32 {
                st.append(&i.to_be_bytes()).unwrap();
                outcomes.push(st.sync().is_ok());
                if i % 5 == 0 {
                    st.crash();
                    outcomes.push(st.recover().torn_records > 0);
                }
            }
            outcomes
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
