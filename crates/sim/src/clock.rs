//! Rate-bounded drifting local clocks.
//!
//! Section 3.2 of the paper assumes no clock synchronization (impossible
//! under partitions) but a known bound on clock *rate*: there is a constant
//! `b ∈ (0, 1]` such that every local clock advances at a rate of at least
//! `b` relative to real time (and at most real time). Under that assumption
//! a manager that wants a cached right to die within `Te` *real* time units
//! hands out an expiration budget of `te = b · Te` *local* time units: even
//! the slowest admissible clock measures `te` local units within
//! `te / b = Te` real units.
//!
//! [`DriftClock`] models one such clock; [`ClockSpec`] describes how the
//! world assigns clocks to nodes.

use crate::time::{SimDuration, SimTime};

/// A point on a node's *local* clock, in nanoseconds since the node's clock
/// epoch. Distinct from [`SimTime`] so protocol code cannot accidentally
/// compare local readings against real time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LocalTime(u64);

impl LocalTime {
    /// The node's clock epoch.
    pub const ZERO: LocalTime = LocalTime(0);

    /// Creates a local instant from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        LocalTime(nanos)
    }

    /// Raw nanoseconds since the clock epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Adds a local-clock duration.
    pub fn plus(self, d: SimDuration) -> LocalTime {
        LocalTime(self.0.saturating_add(d.as_nanos()))
    }

    /// Local span since `earlier` (saturating).
    pub fn since(self, earlier: LocalTime) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::fmt::Display for LocalTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s(local)", self.0 as f64 / 1e9)
    }
}

/// A local clock advancing at a constant rate relative to real time.
///
/// `rate` must lie in `[b, 1]` for whatever rate bound `b` the deployment
/// assumes; the protocol's expiry math is only sound when every clock in
/// the system honours the bound (invariant I4).
///
/// # Examples
///
/// ```
/// use wanacl_sim::clock::DriftClock;
/// use wanacl_sim::time::{SimTime, SimDuration};
///
/// // A clock running 5% slow.
/// let clock = DriftClock::new(0.95, SimDuration::ZERO);
/// let local = clock.read(SimTime::from_secs(100));
/// assert_eq!(local.as_nanos(), 95_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftClock {
    rate: f64,
    offset: SimDuration,
}

impl DriftClock {
    /// Creates a clock with the given rate and initial offset.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `(0, 1]`.
    pub fn new(rate: f64, offset: SimDuration) -> Self {
        assert!(rate > 0.0 && rate <= 1.0, "clock rate must be in (0, 1], got {rate}");
        DriftClock { rate, offset }
    }

    /// A perfect clock (rate 1, no offset).
    pub fn perfect() -> Self {
        DriftClock::new(1.0, SimDuration::ZERO)
    }

    /// The clock's rate relative to real time.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Reads the local clock at real instant `now`.
    pub fn read(&self, now: SimTime) -> LocalTime {
        let elapsed = SimDuration::from_nanos(now.as_nanos()).mul_f64(self.rate);
        LocalTime::from_nanos(self.offset.as_nanos().saturating_add(elapsed.as_nanos()))
    }

    /// The real-time span needed for this clock to measure `local` units.
    ///
    /// Used by the world to turn a node's local-clock timer request into a
    /// real-time event.
    pub fn real_duration_for(&self, local: SimDuration) -> SimDuration {
        local.div_f64(self.rate)
    }
}

/// How the world assigns a clock to a node.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
#[derive(Default)]
pub enum ClockSpec {
    /// A perfect clock.
    #[default]
    Perfect,
    /// A fixed rate in `(0, 1]` and an initial offset.
    Fixed { rate: f64, offset: SimDuration },
    /// A rate drawn uniformly from `[min_rate, 1]` with zero offset; the
    /// draw comes from the world's seeded RNG so runs stay deterministic.
    RandomRate { min_rate: f64 },
}


impl ClockSpec {
    /// Materializes the spec into a concrete clock using `rng`.
    pub fn build(&self, rng: &mut crate::rng::SimRng) -> DriftClock {
        match *self {
            ClockSpec::Perfect => DriftClock::perfect(),
            ClockSpec::Fixed { rate, offset } => DriftClock::new(rate, offset),
            ClockSpec::RandomRate { min_rate } => {
                assert!(
                    min_rate > 0.0 && min_rate <= 1.0,
                    "min_rate must be in (0, 1], got {min_rate}"
                );
                if min_rate == 1.0 {
                    DriftClock::perfect()
                } else {
                    DriftClock::new(rng.uniform(min_rate, 1.0), SimDuration::ZERO)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn perfect_clock_tracks_real_time() {
        let c = DriftClock::perfect();
        let t = SimTime::from_secs(42);
        assert_eq!(c.read(t).as_nanos(), t.as_nanos());
    }

    #[test]
    fn slow_clock_lags() {
        let c = DriftClock::new(0.9, SimDuration::ZERO);
        let local = c.read(SimTime::from_secs(10));
        assert_eq!(local.as_nanos(), 9_000_000_000);
    }

    #[test]
    fn offset_shifts_epoch() {
        let c = DriftClock::new(1.0, SimDuration::from_secs(100));
        assert_eq!(c.read(SimTime::ZERO).as_nanos(), 100_000_000_000);
    }

    #[test]
    fn real_duration_inverts_rate() {
        let c = DriftClock::new(0.5, SimDuration::ZERO);
        assert_eq!(
            c.real_duration_for(SimDuration::from_secs(5)),
            SimDuration::from_secs(10)
        );
    }

    #[test]
    fn expiry_budget_bound_holds() {
        // Core soundness of te = b * Te: for any rate >= b, a timer of
        // b*Te local units fires within Te real units.
        let te_real = SimDuration::from_secs(60);
        let b = 0.9;
        let local_budget = te_real.mul_f64(b);
        for rate in [0.9, 0.93, 0.97, 1.0] {
            let clock = DriftClock::new(rate, SimDuration::ZERO);
            let real_needed = clock.real_duration_for(local_budget);
            assert!(
                real_needed <= te_real,
                "rate {rate}: needed {real_needed} > bound {te_real}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "clock rate")]
    fn rejects_zero_rate() {
        let _ = DriftClock::new(0.0, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "clock rate")]
    fn rejects_fast_clock() {
        let _ = DriftClock::new(1.5, SimDuration::ZERO);
    }

    #[test]
    fn spec_builds_deterministically() {
        let mut r1 = SimRng::seed_from(1);
        let mut r2 = SimRng::seed_from(1);
        let spec = ClockSpec::RandomRate { min_rate: 0.8 };
        let c1 = spec.build(&mut r1);
        let c2 = spec.build(&mut r2);
        assert_eq!(c1.rate(), c2.rate());
        assert!((0.8..=1.0).contains(&c1.rate()));
    }

    #[test]
    fn random_rate_of_one_is_perfect() {
        let mut rng = SimRng::seed_from(2);
        let c = ClockSpec::RandomRate { min_rate: 1.0 }.build(&mut rng);
        assert_eq!(c.rate(), 1.0);
    }

    #[test]
    fn local_time_arithmetic() {
        let t = LocalTime::from_nanos(1_000);
        let later = t.plus(SimDuration::from_nanos(500));
        assert_eq!(later.since(t), SimDuration::from_nanos(500));
        assert_eq!(t.since(later), SimDuration::ZERO);
    }
}
