//! Network-layer fault injection: a [`NetModel`] decorator.

use crate::net::{DropReason, NetModel, Verdict};
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use super::Fault;

/// Layers a [`NemesisPlan`](super::NemesisPlan)'s network faults on top
/// of any base model. Evaluation order mirrors [`crate::net::WanNet`]:
/// partitions first (certain loss), then injected random loss, then the
/// base model's own verdict, and finally duplication and delay spikes
/// rewriting the surviving delivery.
///
/// # Examples
///
/// ```
/// use wanacl_sim::nemesis::NemesisPlan;
/// use wanacl_sim::net::{NetModel, PerfectNet, Verdict, DropReason};
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::{SimDuration, SimTime};
///
/// let a = NodeId::from_index(0);
/// let b = NodeId::from_index(1);
/// let plan = NemesisPlan::builder(SimTime::from_secs(60))
///     .partition(vec![a], vec![b], SimTime::from_secs(10), SimTime::from_secs(20))
///     .build();
/// let mut net = plan.wrap_net(Box::new(PerfectNet::new(SimDuration::from_millis(5))));
/// let mut rng = SimRng::seed_from(1);
/// assert!(matches!(
///     net.transmit(a, b, SimTime::from_secs(15), &mut rng),
///     Verdict::Drop(DropReason::Partitioned)
/// ));
/// assert!(matches!(net.transmit(a, b, SimTime::from_secs(25), &mut rng), Verdict::Deliver(_)));
/// ```
pub struct NemesisNet {
    base: Box<dyn NetModel>,
    faults: Vec<Fault>,
}

impl std::fmt::Debug for NemesisNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NemesisNet").field("faults", &self.faults.len()).finish_non_exhaustive()
    }
}

impl NemesisNet {
    /// Wraps `base` with the given network faults (lifecycle faults in
    /// the list are ignored; install those into the world instead).
    pub fn new(base: Box<dyn NetModel>, faults: Vec<Fault>) -> NemesisNet {
        NemesisNet { base, faults: faults.into_iter().filter(|f| f.is_net()).collect() }
    }

    /// Extra delay from any active delay-spike fault at `now`.
    fn spike(&self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        let mut extra = SimDuration::ZERO;
        for fault in &self.faults {
            if let Fault::DelaySpike { window, extra_min, extra_max } = fault {
                if window.contains(now) {
                    let span = extra_max.as_nanos().saturating_sub(extra_min.as_nanos());
                    let add = if span == 0 {
                        *extra_min
                    } else {
                        SimDuration::from_nanos(extra_min.as_nanos() + rng.range(0, span))
                    };
                    extra = extra + add;
                }
            }
        }
        extra
    }
}

impl NetModel for NemesisNet {
    fn transmit(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> Verdict {
        // 1. Partitions: certain loss, regardless of the base model.
        if self.faults.iter().any(|f| f.severs(from, to, now)) {
            return Verdict::Drop(DropReason::Partitioned);
        }
        // 2. Injected random loss.
        for fault in &self.faults {
            if let Fault::Drop { window, prob } = fault {
                if window.contains(now) && rng.chance(*prob) {
                    return Verdict::Drop(DropReason::Loss);
                }
            }
        }
        // 3. The base network's own verdict.
        let verdict = self.base.transmit(from, to, now, rng);
        // 4. Injected duplication: a surviving single delivery may fork.
        let verdict = match verdict {
            Verdict::Deliver(d) => {
                let duplicated = self.faults.iter().any(|f| match f {
                    Fault::Duplicate { window, prob } => window.contains(now) && rng.chance(*prob),
                    _ => false,
                });
                if duplicated {
                    // Second copy trails the first by up to one base delay.
                    let trail = d.mul_f64(1.0 + rng.unit());
                    Verdict::Duplicate(d, trail)
                } else {
                    Verdict::Deliver(d)
                }
            }
            other => other,
        };
        // 5. Delay spikes stretch whatever still gets delivered.
        match verdict {
            Verdict::Deliver(d) => Verdict::Deliver(d + self.spike(now, rng)),
            Verdict::Duplicate(a, b) => {
                Verdict::Duplicate(a + self.spike(now, rng), b + self.spike(now, rng))
            }
            drop => drop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::NemesisPlan;
    use super::*;
    use crate::net::PerfectNet;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn perfect() -> Box<dyn NetModel> {
        Box::new(PerfectNet::new(SimDuration::from_millis(10)))
    }

    #[test]
    fn drop_burst_only_inside_window() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .drop_burst(SimTime::from_secs(10), SimTime::from_secs(20), 1.0)
            .build();
        let mut net = plan.wrap_net(perfect());
        let mut rng = SimRng::seed_from(1);
        assert!(matches!(
            net.transmit(n(0), n(1), SimTime::from_secs(15), &mut rng),
            Verdict::Drop(DropReason::Loss)
        ));
        assert!(matches!(
            net.transmit(n(0), n(1), SimTime::from_secs(5), &mut rng),
            Verdict::Deliver(_)
        ));
    }

    #[test]
    fn duplication_forks_deliveries() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .duplicate_burst(SimTime::ZERO, SimTime::from_secs(60), 1.0)
            .build();
        let mut net = plan.wrap_net(perfect());
        let mut rng = SimRng::seed_from(2);
        match net.transmit(n(0), n(1), SimTime::from_secs(1), &mut rng) {
            Verdict::Duplicate(a, b) => assert!(b >= a, "trailing copy must not lead"),
            other => panic!("expected duplicate, got {other:?}"),
        }
    }

    #[test]
    fn delay_spike_stretches_delivery() {
        let extra_min = SimDuration::from_millis(100);
        let extra_max = SimDuration::from_millis(200);
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .delay_spike(SimTime::ZERO, SimTime::from_secs(60), extra_min, extra_max)
            .build();
        let mut net = plan.wrap_net(perfect());
        let mut rng = SimRng::seed_from(3);
        for _ in 0..50 {
            match net.transmit(n(0), n(1), SimTime::from_secs(1), &mut rng) {
                Verdict::Deliver(d) => {
                    assert!(d >= SimDuration::from_millis(110), "delay {d}");
                    assert!(d < SimDuration::from_millis(210), "delay {d}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn lifecycle_faults_are_ignored_by_the_net() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .crash(n(0), SimTime::from_secs(1), SimDuration::from_secs(50))
            .build();
        let mut net = plan.wrap_net(perfect());
        let mut rng = SimRng::seed_from(4);
        // The net layer does not model the crash; the world does.
        assert!(matches!(
            net.transmit(n(0), n(1), SimTime::from_secs(10), &mut rng),
            Verdict::Deliver(_)
        ));
    }

    #[test]
    fn composition_is_deterministic() {
        let mk = || {
            NemesisPlan::builder(SimTime::from_secs(60))
                .drop_burst(SimTime::ZERO, SimTime::from_secs(60), 0.3)
                .duplicate_burst(SimTime::ZERO, SimTime::from_secs(60), 0.3)
                .delay_spike(
                    SimTime::ZERO,
                    SimTime::from_secs(60),
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(50),
                )
                .build()
                .wrap_net(perfect())
        };
        let mut a = mk();
        let mut b = mk();
        let mut ra = SimRng::seed_from(9);
        let mut rb = SimRng::seed_from(9);
        for i in 0..500 {
            let t = SimTime::from_millis(i * 100);
            assert_eq!(a.transmit(n(0), n(1), t, &mut ra), b.transmit(n(0), n(1), t, &mut rb));
        }
    }
}
