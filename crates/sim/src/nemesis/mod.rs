//! Composable, seed-deterministic fault injection ("nemesis") for
//! adversarial protocol testing.
//!
//! The paper's protocol claims a *safety* property — a revoked right is
//! usable for at most `Te` — that must hold under every combination of
//! the failures §2.1 admits: lost, duplicated, delayed, and reordered
//! messages, asymmetric and flapping partitions, host crash/recovery,
//! and bounded clock drift. This module turns that failure model into a
//! declarative, replayable [`NemesisPlan`]:
//!
//! * each [`Fault`] is pure data (a window plus parameters), so plans
//!   print, compare, and **shrink** ([`NemesisPlan::without`]);
//! * plans either come from the builder (scripted scenarios) or from
//!   [`NemesisPlan::sample`], which draws a weighted random campaign
//!   from a [`SimRng`] — the same seed always yields the same plan;
//! * network faults layer *on top of* any base [`NetModel`] via
//!   [`NemesisNet`], and lifecycle faults install into a
//!   [`crate::world::World`] as ordinary crash/recover events, so the
//!   protocol under test cannot tell a nemesis run from a hostile WAN.
//!
//! Pair a plan with a passive safety checker (a
//! [`crate::world::Observer`]) to get a randomized model checker: on a
//! violation, the (seed, plan, event index) triple replays the exact
//! schedule that broke the invariant.

mod net;

pub use net::NemesisNet;

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// A half-open real-time window `[start, end)` during which a fault is
/// active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First instant the fault applies.
    pub start: SimTime,
    /// First instant it no longer applies.
    pub end: SimTime,
}

impl Window {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: SimTime, end: SimTime) -> Window {
        assert!(start < end, "fault window must be non-empty ({start} >= {end})");
        Window { start, end }
    }

    /// Whether `now` falls inside the window.
    pub fn contains(&self, now: SimTime) -> bool {
        now >= self.start && now < self.end
    }
}

impl std::fmt::Display for Window {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {})", self.start, self.end)
    }
}

/// One injected fault. Every variant is plain data so plans can be
/// printed, diffed, and shrunk.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Extra i.i.d. message loss on every link while the window is open.
    Drop {
        /// When the fault is active.
        window: Window,
        /// Per-message drop probability added on top of the base model.
        prob: f64,
    },
    /// Extra message duplication on every link.
    Duplicate {
        /// When the fault is active.
        window: Window,
        /// Per-message duplication probability.
        prob: f64,
    },
    /// Random extra propagation delay, which also *reorders* messages
    /// relative to ones sent nearby in time.
    DelaySpike {
        /// When the fault is active.
        window: Window,
        /// Minimum extra delay added to every delivery.
        extra_min: SimDuration,
        /// Maximum extra delay (exclusive).
        extra_max: SimDuration,
    },
    /// Symmetric partition: no traffic between the two sides.
    Partition {
        /// When the cut holds.
        window: Window,
        /// One side of the cut.
        side_a: Vec<NodeId>,
        /// The other side.
        side_b: Vec<NodeId>,
    },
    /// Asymmetric partition: messages *from* `from` *to* `to` are lost;
    /// the reverse direction still works. Models one-way congestion and
    /// routing pathologies a symmetric model cannot express.
    AsymmetricPartition {
        /// When the cut holds.
        window: Window,
        /// Senders whose messages are lost.
        from: Vec<NodeId>,
        /// Receivers they cannot reach.
        to: Vec<NodeId>,
    },
    /// Flapping partition: the cut alternates severed/healed with the
    /// given period (severed first), stressing retry and convergence
    /// logic with partial progress.
    FlappingPartition {
        /// Envelope during which the flapping happens.
        window: Window,
        /// One side of the cut.
        side_a: Vec<NodeId>,
        /// The other side.
        side_b: Vec<NodeId>,
        /// Duration of each severed (and each healed) phase.
        period: SimDuration,
    },
    /// Crash a node at `at`; it recovers `down_for` later.
    Crash {
        /// The victim.
        node: NodeId,
        /// Crash instant.
        at: SimTime,
        /// Downtime before the scheduled recovery.
        down_for: SimDuration,
    },
    /// Name-service outage: the directory node is down for the whole
    /// window, so hosts relying on discovery cannot refresh their
    /// manager view.
    NsOutage {
        /// The name-service node.
        ns: NodeId,
        /// When it is down.
        window: Window,
    },
    /// Degraded stable storage on one node: WAL sync barriers fail
    /// transiently and crashes tear the tail record with the given
    /// probabilities. The campaign driver applies this to the node's
    /// storage before the run starts (it is neither a network nor a
    /// lifecycle fault).
    DiskFault {
        /// The node whose stable storage degrades.
        node: NodeId,
        /// Probability each WAL sync barrier fails (transient EIO).
        sync_fail_prob: f64,
        /// Probability a crash leaves a torn tail record.
        torn_tail_prob: f64,
    },
    /// Correlated crash-restart of a node group — up to the *entire*
    /// manager set at once, the scenario quorum sync alone cannot
    /// survive. Every member crashes at `at` and recovers `down_for`
    /// later.
    ClusterRestart {
        /// The victims (crash and recover together).
        nodes: Vec<NodeId>,
        /// Crash instant.
        at: SimTime,
        /// Downtime before the scheduled recovery.
        down_for: SimDuration,
    },
    /// A directory replica with anti-entropy suppressed for the whole
    /// run: it neither probes peers, answers their sync requests, nor
    /// forwards publishes, so it keeps serving whatever versions it
    /// already holds. The campaign driver applies this to the replica
    /// before the run starts.
    StaleReplica {
        /// The replica that stops syncing.
        replica: NodeId,
    },
    /// Split-brain directory: replica-to-replica traffic between the
    /// two sides is severed for the window, so the sides serve
    /// divergent record versions while hosts can still reach both.
    DirectorySplit {
        /// When the cut holds.
        window: Window,
        /// One side of the replica set.
        side_a: Vec<NodeId>,
        /// The other side.
        side_b: Vec<NodeId>,
    },
    /// Malicious partial master: for the window, one replica answers
    /// quorum reads with forged records (bumped version, altered
    /// manager set, stale signature). Verifying hosts must reject
    /// them. The campaign driver applies this to the replica before
    /// the run starts.
    MaliciousReplica {
        /// The replica that turns malicious.
        replica: NodeId,
        /// When it serves forged answers.
        window: Window,
    },
    /// Online shard rebalance kicked off mid-run: the campaign driver
    /// signs a version-bumped shard map moving shard `shard` to the
    /// ring-next owner set and injects the handoff at `at` — on top of
    /// whatever partitions, crashes, and delay spikes the rest of the
    /// plan has open at that moment. The driver applies this fault (it
    /// is neither a network nor a lifecycle fault).
    ShardRebalance {
        /// Index of the shard to move (into the deployment's shard
        /// table).
        shard: u32,
        /// When the handoff kickoff is injected.
        at: SimTime,
    },
    /// One host never advances its shard map past the version it holds:
    /// fresher directory records are ignored, so its checks chase the
    /// pre-rebalance owners. Routing safety (I8/I9) must hold anyway —
    /// released sources answer with fail-closed unavailability, never
    /// stale grants. The driver applies this to the host before the run
    /// starts.
    StaleShardMap {
        /// The host whose shard map is pinned.
        host: NodeId,
    },
}

fn fmt_nodes(nodes: &[NodeId]) -> String {
    let items: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
    format!("{{{}}}", items.join(","))
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Drop { window, prob } => write!(f, "drop p={prob:.2} {window}"),
            Fault::Duplicate { window, prob } => write!(f, "duplicate p={prob:.2} {window}"),
            Fault::DelaySpike { window, extra_min, extra_max } => {
                write!(f, "delay-spike +[{extra_min} .. {extra_max}) {window}")
            }
            Fault::Partition { window, side_a, side_b } => {
                write!(f, "partition {} | {} {window}", fmt_nodes(side_a), fmt_nodes(side_b))
            }
            Fault::AsymmetricPartition { window, from, to } => {
                write!(f, "asym-partition {} -x-> {} {window}", fmt_nodes(from), fmt_nodes(to))
            }
            Fault::FlappingPartition { window, side_a, side_b, period } => write!(
                f,
                "flapping-partition {} | {} period={period} {window}",
                fmt_nodes(side_a),
                fmt_nodes(side_b)
            ),
            Fault::Crash { node, at, down_for } => {
                write!(f, "crash {node} at {at} for {down_for}")
            }
            Fault::NsOutage { ns, window } => write!(f, "ns-outage {ns} {window}"),
            Fault::DiskFault { node, sync_fail_prob, torn_tail_prob } => {
                write!(f, "disk-fault {node} sync-fail={sync_fail_prob:.2} torn={torn_tail_prob:.2}")
            }
            Fault::ClusterRestart { nodes, at, down_for } => {
                write!(f, "cluster-restart {} at {at} for {down_for}", fmt_nodes(nodes))
            }
            Fault::StaleReplica { replica } => {
                write!(f, "stale-replica {replica} (anti-entropy suppressed)")
            }
            Fault::DirectorySplit { window, side_a, side_b } => {
                write!(f, "directory-split {} | {} {window}", fmt_nodes(side_a), fmt_nodes(side_b))
            }
            Fault::MaliciousReplica { replica, window } => {
                write!(f, "malicious-replica {replica} {window}")
            }
            Fault::ShardRebalance { shard, at } => {
                write!(f, "shard-rebalance shard{shard} at {at}")
            }
            Fault::StaleShardMap { host } => {
                write!(f, "stale-shard-map {host} (map pinned)")
            }
        }
    }
}

impl Fault {
    /// Whether the fault acts on the network layer (as opposed to node
    /// lifecycle).
    pub fn is_net(&self) -> bool {
        !matches!(
            self,
            Fault::Crash { .. }
                | Fault::NsOutage { .. }
                | Fault::DiskFault { .. }
                | Fault::ClusterRestart { .. }
                | Fault::StaleReplica { .. }
                | Fault::MaliciousReplica { .. }
                | Fault::ShardRebalance { .. }
                | Fault::StaleShardMap { .. }
        )
    }

    /// Whether a partition-style fault currently severs `from -> to`.
    ///
    /// Public so live executors (the `wanacl-rt` chaos transport) can
    /// replay the same plan against wall-clock time: they map elapsed
    /// real time onto [`SimTime`] and ask the identical question the
    /// simulated net decorator asks.
    pub fn severs(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        match self {
            Fault::Partition { window, side_a, side_b }
            | Fault::DirectorySplit { window, side_a, side_b } => {
                window.contains(now)
                    && ((side_a.contains(&from) && side_b.contains(&to))
                        || (side_b.contains(&from) && side_a.contains(&to)))
            }
            Fault::AsymmetricPartition { window, from: senders, to: receivers } => {
                window.contains(now) && senders.contains(&from) && receivers.contains(&to)
            }
            Fault::FlappingPartition { window, side_a, side_b, period } => {
                if !window.contains(now) {
                    return false;
                }
                let elapsed = now.saturating_since(window.start).as_nanos();
                let phase = (elapsed / period.as_nanos().max(1)) % 2;
                phase == 0
                    && ((side_a.contains(&from) && side_b.contains(&to))
                        || (side_b.contains(&from) && side_a.contains(&to)))
            }
            _ => false,
        }
    }
}

/// The node roles a sampled campaign may attack.
///
/// Sampling never touches nodes outside these sets (user agents and the
/// admin keep running, so the workload itself survives the campaign).
#[derive(Debug, Clone, Default)]
pub struct NemesisTargets {
    /// ACL manager nodes (crash storms, partitions).
    pub managers: Vec<NodeId>,
    /// Application host nodes (crashes, partitions).
    pub hosts: Vec<NodeId>,
    /// The name-service node, if the deployment uses discovery.
    pub name_service: Option<NodeId>,
    /// Replicated-directory nodes, if the deployment runs the quorum
    /// name service. Only [`NemesisPlan::sample_with_directory`] (and
    /// the scripted builder) attacks these.
    pub ns_replicas: Vec<NodeId>,
    /// Per-shard manager sets of a sharded deployment, indexed by shard.
    /// Only [`NemesisPlan::sample_with_shards`] (and the scripted
    /// builder) draws shard faults, so plans for unsharded campaigns
    /// stay byte-identical.
    pub shard_managers: Vec<Vec<NodeId>>,
}

impl NemesisTargets {
    fn protocol_nodes(&self) -> Vec<NodeId> {
        let mut all = self.managers.clone();
        all.extend_from_slice(&self.hosts);
        all
    }
}

/// A declarative fault-injection campaign over a fixed horizon.
///
/// # Examples
///
/// A scripted plan:
///
/// ```
/// use wanacl_sim::nemesis::NemesisPlan;
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::time::{SimDuration, SimTime};
///
/// let m = NodeId::from_index(0);
/// let h = NodeId::from_index(1);
/// let plan = NemesisPlan::builder(SimTime::from_secs(60))
///     .partition(vec![m], vec![h], SimTime::from_secs(10), SimTime::from_secs(30))
///     .crash(m, SimTime::from_secs(40), SimDuration::from_secs(5))
///     .build();
/// assert_eq!(plan.len(), 2);
/// ```
///
/// A sampled campaign is a pure function of its seed:
///
/// ```
/// use wanacl_sim::nemesis::{NemesisPlan, NemesisTargets};
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::SimTime;
///
/// let targets = NemesisTargets {
///     managers: (0..3).map(NodeId::from_index).collect(),
///     hosts: (3..5).map(NodeId::from_index).collect(),
///     ..NemesisTargets::default()
/// };
/// let horizon = SimTime::from_secs(60);
/// let a = NemesisPlan::sample(&targets, horizon, 1.0, &mut SimRng::seed_from(7));
/// let b = NemesisPlan::sample(&targets, horizon, 1.0, &mut SimRng::seed_from(7));
/// assert_eq!(a, b);
/// assert!(!a.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NemesisPlan {
    /// End of the campaign; no fault extends past it.
    pub horizon: SimTime,
    /// The injected faults, in sampling order.
    pub faults: Vec<Fault>,
}

impl NemesisPlan {
    /// Starts a scripted plan over the given horizon.
    pub fn builder(horizon: SimTime) -> NemesisPlanBuilder {
        NemesisPlanBuilder { plan: NemesisPlan { horizon, faults: Vec::new() } }
    }

    /// Draws a weighted random campaign. `intensity` scales the number
    /// of faults (1.0 ≈ one fault per 5 seconds of horizon); the mix
    /// leans toward partitions and drop bursts, the failures the paper
    /// calls frequent, with rarer crash storms and directory outages.
    ///
    /// # Panics
    ///
    /// Panics if there are no protocol nodes to attack, the horizon is
    /// zero, or `intensity` is not positive.
    pub fn sample(
        targets: &NemesisTargets,
        horizon: SimTime,
        intensity: f64,
        rng: &mut SimRng,
    ) -> NemesisPlan {
        Self::sample_inner(targets, horizon, intensity, rng, false, false, false)
    }

    /// Like [`NemesisPlan::sample`], but the fault mix also includes
    /// storage-level failures: [`Fault::DiskFault`] entries degrading a
    /// manager's WAL, and [`Fault::ClusterRestart`] entries that
    /// crash-restart a random manager subset — up to *all* managers at
    /// once. A separate entry point (rather than a new kind inside
    /// `sample`) so plans drawn for existing seeds stay byte-identical.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NemesisPlan::sample`].
    pub fn sample_with_storage(
        targets: &NemesisTargets,
        horizon: SimTime,
        intensity: f64,
        rng: &mut SimRng,
    ) -> NemesisPlan {
        Self::sample_inner(targets, horizon, intensity, rng, true, false, false)
    }

    /// Like [`NemesisPlan::sample_with_storage`] (pass `storage_faults`
    /// to keep or drop the disk/cluster-restart mix), but the table
    /// also includes replicated-directory failures when
    /// [`NemesisTargets::ns_replicas`] is nonempty:
    /// [`Fault::StaleReplica`] (anti-entropy suppressed),
    /// [`Fault::DirectorySplit`] (split-brain between replica sides),
    /// [`Fault::MaliciousReplica`] (forged answers for a window), and
    /// [`Fault::Crash`] entries over the replica pool. A separate entry
    /// point so plans drawn for existing seeds stay byte-identical.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NemesisPlan::sample`].
    pub fn sample_with_directory(
        targets: &NemesisTargets,
        horizon: SimTime,
        intensity: f64,
        rng: &mut SimRng,
        storage_faults: bool,
    ) -> NemesisPlan {
        Self::sample_inner(targets, horizon, intensity, rng, storage_faults, true, false)
    }

    /// Like [`NemesisPlan::sample_with_directory`], but the table also
    /// includes shard-plane failures when
    /// [`NemesisTargets::shard_managers`] has at least two shards:
    /// [`Fault::ShardRebalance`] (an online handoff racing whatever
    /// other faults the plan has open — partitions mid-handoff, source
    /// crashes mid-transfer) and [`Fault::StaleShardMap`] (one host
    /// pinned to a pre-rebalance map). A separate entry point so plans
    /// drawn for existing seeds stay byte-identical.
    ///
    /// # Panics
    ///
    /// Same conditions as [`NemesisPlan::sample`].
    pub fn sample_with_shards(
        targets: &NemesisTargets,
        horizon: SimTime,
        intensity: f64,
        rng: &mut SimRng,
        storage_faults: bool,
        directory_faults: bool,
    ) -> NemesisPlan {
        Self::sample_inner(targets, horizon, intensity, rng, storage_faults, directory_faults, true)
    }

    fn sample_inner(
        targets: &NemesisTargets,
        horizon: SimTime,
        intensity: f64,
        rng: &mut SimRng,
        storage_faults: bool,
        directory_faults: bool,
        shard_faults: bool,
    ) -> NemesisPlan {
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        assert!(intensity > 0.0, "intensity must be positive");
        let nodes = targets.protocol_nodes();
        assert!(!nodes.is_empty(), "nemesis needs at least one target node");

        let horizon_s = SimDuration::from_nanos(horizon.as_nanos()).as_secs_f64();
        let count = ((intensity * horizon_s / 5.0).ceil() as usize).max(1);

        // (weight, kind) table; kinds guarded by availability.
        let can_partition = nodes.len() >= 2;
        let mut table: Vec<(u64, u8)> = vec![(3, 0), (2, 1), (2, 2)]; // drop, dup, delay
        if can_partition {
            table.push((3, 3)); // symmetric partition
            table.push((2, 4)); // asymmetric partition
            table.push((2, 5)); // flapping partition
        }
        table.push((2, 6)); // manager crash
        if !targets.hosts.is_empty() {
            table.push((1, 7)); // host crash
        }
        if targets.name_service.is_some() {
            table.push((1, 8)); // name-service outage
        }
        if storage_faults && !targets.managers.is_empty() {
            table.push((2, 9)); // manager disk fault
            table.push((2, 10)); // correlated cluster restart
        }
        if directory_faults && !targets.ns_replicas.is_empty() {
            table.push((2, 11)); // stale replica
            if targets.ns_replicas.len() >= 2 {
                table.push((2, 12)); // split-brain directory
            }
            table.push((1, 13)); // malicious partial master
            table.push((1, 14)); // replica crash/restart
        }
        if shard_faults && targets.shard_managers.len() >= 2 {
            table.push((3, 15)); // online shard rebalance
            if !targets.hosts.is_empty() {
                table.push((1, 16)); // host pinned to a stale shard map
            }
        }
        let total_weight: u64 = table.iter().map(|(w, _)| w).sum();

        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let mut pick = rng.range(0, total_weight);
            let mut kind = table[0].1;
            for (w, k) in &table {
                if pick < *w {
                    kind = *k;
                    break;
                }
                pick -= w;
            }
            faults.push(Self::sample_fault(kind, targets, &nodes, horizon, rng));
        }
        NemesisPlan { horizon, faults }
    }

    fn sample_window(horizon: SimTime, rng: &mut SimRng) -> Window {
        let horizon_ns = horizon.as_nanos();
        let start_ns = rng.range(0, (horizon_ns * 9 / 10).max(1));
        let mean = (horizon_ns / 8).max(1) as f64;
        let len_ns = (rng.exponential(mean) as u64).clamp(100_000_000, horizon_ns - start_ns);
        let start = SimTime::from_nanos(start_ns);
        let end = SimTime::from_nanos((start_ns + len_ns).min(horizon_ns).max(start_ns + 1));
        Window::new(start, end)
    }

    /// Random nonempty proper subset split of the protocol nodes.
    fn sample_split(nodes: &[NodeId], rng: &mut SimRng) -> (Vec<NodeId>, Vec<NodeId>) {
        loop {
            let mut a = Vec::new();
            let mut b = Vec::new();
            for &n in nodes {
                if rng.chance(0.5) {
                    a.push(n);
                } else {
                    b.push(n);
                }
            }
            if !a.is_empty() && !b.is_empty() {
                return (a, b);
            }
        }
    }

    fn sample_fault(
        kind: u8,
        targets: &NemesisTargets,
        nodes: &[NodeId],
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Fault {
        match kind {
            0 => Fault::Drop {
                window: Self::sample_window(horizon, rng),
                prob: rng.uniform(0.3, 1.0),
            },
            1 => Fault::Duplicate {
                window: Self::sample_window(horizon, rng),
                prob: rng.uniform(0.1, 0.5),
            },
            2 => {
                let min_ms = rng.range(50, 500);
                let max_ms = min_ms + rng.range(100, 2_000);
                Fault::DelaySpike {
                    window: Self::sample_window(horizon, rng),
                    extra_min: SimDuration::from_millis(min_ms),
                    extra_max: SimDuration::from_millis(max_ms),
                }
            }
            3 => {
                let (side_a, side_b) = Self::sample_split(nodes, rng);
                Fault::Partition { window: Self::sample_window(horizon, rng), side_a, side_b }
            }
            4 => {
                let (from, to) = Self::sample_split(nodes, rng);
                Fault::AsymmetricPartition { window: Self::sample_window(horizon, rng), from, to }
            }
            5 => {
                let (side_a, side_b) = Self::sample_split(nodes, rng);
                Fault::FlappingPartition {
                    window: Self::sample_window(horizon, rng),
                    side_a,
                    side_b,
                    period: SimDuration::from_millis(rng.range(200, 2_000)),
                }
            }
            6 | 7 | 14 => {
                let pool = match kind {
                    6 => &targets.managers,
                    7 => &targets.hosts,
                    _ => &targets.ns_replicas,
                };
                let node = *rng.choose(pool);
                let at_ns = rng.range(0, (horizon.as_nanos() * 9 / 10).max(1));
                let mean = (horizon.as_nanos() / 10).max(1) as f64;
                let down_ns = (rng.exponential(mean) as u64).max(100_000_000);
                Fault::Crash {
                    node,
                    at: SimTime::from_nanos(at_ns),
                    down_for: SimDuration::from_nanos(down_ns),
                }
            }
            8 => Fault::NsOutage {
                ns: targets.name_service.expect("guarded by the weight table"),
                window: Self::sample_window(horizon, rng),
            },
            9 => Fault::DiskFault {
                node: *rng.choose(&targets.managers),
                sync_fail_prob: rng.uniform(0.05, 0.4),
                torn_tail_prob: rng.uniform(0.2, 0.9),
            },
            11 => Fault::StaleReplica { replica: *rng.choose(&targets.ns_replicas) },
            12 => {
                let (side_a, side_b) = Self::sample_split(&targets.ns_replicas, rng);
                Fault::DirectorySplit {
                    window: Self::sample_window(horizon, rng),
                    side_a,
                    side_b,
                }
            }
            13 => Fault::MaliciousReplica {
                replica: *rng.choose(&targets.ns_replicas),
                window: Self::sample_window(horizon, rng),
            },
            15 => {
                // Early-enough kickoff that the handoff has a chance to
                // finish inside the horizon — racing whatever partitions
                // and crashes the rest of the plan holds open then.
                let shard = rng.range(0, targets.shard_managers.len() as u64) as u32;
                let at_ns = rng.range(0, (horizon.as_nanos() * 7 / 10).max(1));
                Fault::ShardRebalance { shard, at: SimTime::from_nanos(at_ns) }
            }
            16 => Fault::StaleShardMap { host: *rng.choose(&targets.hosts) },
            _ => {
                // Each manager joins the restart group with p=0.6; one
                // time in four the whole manager set goes down together
                // (the correlated failure quorum sync cannot survive).
                let all = rng.chance(0.25);
                let mut group: Vec<NodeId> = targets
                    .managers
                    .iter()
                    .copied()
                    .filter(|_| all || rng.chance(0.6))
                    .collect();
                if group.is_empty() {
                    group.push(*rng.choose(&targets.managers));
                }
                let at_ns = rng.range(0, (horizon.as_nanos() * 8 / 10).max(1));
                let mean = (horizon.as_nanos() / 10).max(1) as f64;
                let down_ns = (rng.exponential(mean) as u64).max(100_000_000);
                Fault::ClusterRestart {
                    nodes: group,
                    at: SimTime::from_nanos(at_ns),
                    down_for: SimDuration::from_nanos(down_ns),
                }
            }
        }
    }

    /// Number of faults in the plan.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A copy of the plan with fault `index` removed — the primitive a
    /// greedy schedule shrinker is built from.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn without(&self, index: usize) -> NemesisPlan {
        let mut copy = self.clone();
        copy.faults.remove(index);
        copy
    }

    /// The network-layer faults (for [`NemesisNet`]).
    pub fn net_faults(&self) -> Vec<Fault> {
        self.faults.iter().filter(|f| f.is_net()).cloned().collect()
    }

    /// The `(shard, at)` rebalance kickoffs in the plan, in time order —
    /// for the campaign driver, which signs the map records and injects
    /// the handoffs.
    pub fn shard_rebalances(&self) -> Vec<(u32, SimTime)> {
        let mut out: Vec<(u32, SimTime)> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardRebalance { shard, at } => Some((*shard, *at)),
                _ => None,
            })
            .collect();
        out.sort_by_key(|&(_, at)| at);
        out
    }

    /// Hosts whose shard map the driver pins before the run starts.
    pub fn stale_shard_map_hosts(&self) -> Vec<NodeId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::StaleShardMap { host } => Some(*host),
                _ => None,
            })
            .collect()
    }

    /// Wraps a base network model with this plan's network faults.
    pub fn wrap_net(&self, base: Box<dyn crate::net::NetModel>) -> NemesisNet {
        NemesisNet::new(base, self.net_faults())
    }

    /// Schedules the plan's lifecycle faults (crashes, recoveries,
    /// name-service outages) into a world. Call before running; events
    /// already in the past are skipped rather than panicking, so a plan
    /// can be installed mid-run for staged scenarios.
    pub fn install_lifecycle<M: Clone + std::fmt::Debug + 'static>(
        &self,
        world: &mut crate::world::World<M>,
    ) {
        let now = world.now();
        let mut schedule = |down: SimTime, up: SimTime, node: NodeId| {
            if down >= now {
                world.schedule_crash(down, node);
            }
            if up >= now {
                world.schedule_recover(up, node);
            }
        };
        for fault in &self.faults {
            match fault {
                Fault::Crash { node, at, down_for } => schedule(*at, *at + *down_for, *node),
                Fault::NsOutage { ns, window } => schedule(window.start, window.end, *ns),
                Fault::ClusterRestart { nodes, at, down_for } => {
                    for node in nodes {
                        schedule(*at, *at + *down_for, *node);
                    }
                }
                _ => {}
            }
        }
    }

    /// The storage-fault entries, as `(node, sync_fail_prob,
    /// torn_tail_prob)` triples. The campaign driver applies these to
    /// each node's stable storage before the run starts.
    pub fn disk_faults(&self) -> Vec<(NodeId, f64, f64)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::DiskFault { node, sync_fail_prob, torn_tail_prob } => {
                    Some((*node, *sync_fail_prob, *torn_tail_prob))
                }
                _ => None,
            })
            .collect()
    }

    /// The replicas whose anti-entropy the plan suppresses. The
    /// campaign driver applies these to each replica before the run
    /// starts.
    pub fn stale_replicas(&self) -> Vec<NodeId> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::StaleReplica { replica } => Some(*replica),
                _ => None,
            })
            .collect()
    }

    /// The malicious-replica entries as `(replica, window)` pairs. The
    /// campaign driver arms each replica's forgery window before the
    /// run starts.
    pub fn malicious_replicas(&self) -> Vec<(NodeId, Window)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::MaliciousReplica { replica, window } => Some((*replica, *window)),
                _ => None,
            })
            .collect()
    }

    /// A numbered, human-readable listing of the plan (for violation
    /// reports and replay instructions).
    pub fn describe(&self) -> String {
        if self.faults.is_empty() {
            return format!("nemesis plan: no faults, horizon {}\n", self.horizon);
        }
        let mut out = format!(
            "nemesis plan: {} fault(s), horizon {}\n",
            self.faults.len(),
            self.horizon
        );
        for (i, fault) in self.faults.iter().enumerate() {
            out.push_str(&format!("  [{i}] {fault}\n"));
        }
        out
    }
}

impl std::fmt::Display for NemesisPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Builder for scripted [`NemesisPlan`]s (C-BUILDER).
#[derive(Debug, Clone)]
pub struct NemesisPlanBuilder {
    plan: NemesisPlan,
}

impl NemesisPlanBuilder {
    /// Adds an extra-loss burst.
    pub fn drop_burst(mut self, start: SimTime, end: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop probability must be in [0,1]");
        self.plan.faults.push(Fault::Drop { window: Window::new(start, end), prob });
        self
    }

    /// Adds a duplication burst.
    pub fn duplicate_burst(mut self, start: SimTime, end: SimTime, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "duplication probability must be in [0,1]");
        self.plan.faults.push(Fault::Duplicate { window: Window::new(start, end), prob });
        self
    }

    /// Adds a delay spike (which reorders traffic).
    pub fn delay_spike(
        mut self,
        start: SimTime,
        end: SimTime,
        extra_min: SimDuration,
        extra_max: SimDuration,
    ) -> Self {
        assert!(extra_min < extra_max, "delay spike needs extra_min < extra_max");
        self.plan.faults.push(Fault::DelaySpike {
            window: Window::new(start, end),
            extra_min,
            extra_max,
        });
        self
    }

    /// Adds a symmetric partition.
    pub fn partition(
        mut self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.plan.faults.push(Fault::Partition { window: Window::new(start, end), side_a, side_b });
        self
    }

    /// Adds a one-way partition (`from` cannot reach `to`).
    pub fn asymmetric_partition(
        mut self,
        from: Vec<NodeId>,
        to: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.plan
            .faults
            .push(Fault::AsymmetricPartition { window: Window::new(start, end), from, to });
        self
    }

    /// Adds a flapping partition.
    pub fn flapping_partition(
        mut self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
        period: SimDuration,
    ) -> Self {
        assert!(period > SimDuration::ZERO, "flap period must be positive");
        self.plan.faults.push(Fault::FlappingPartition {
            window: Window::new(start, end),
            side_a,
            side_b,
            period,
        });
        self
    }

    /// Adds a crash with scheduled recovery.
    pub fn crash(mut self, node: NodeId, at: SimTime, down_for: SimDuration) -> Self {
        assert!(down_for > SimDuration::ZERO, "downtime must be positive");
        self.plan.faults.push(Fault::Crash { node, at, down_for });
        self
    }

    /// Adds a name-service outage.
    pub fn ns_outage(mut self, ns: NodeId, start: SimTime, end: SimTime) -> Self {
        self.plan.faults.push(Fault::NsOutage { ns, window: Window::new(start, end) });
        self
    }

    /// Adds a storage degradation on one node's WAL.
    pub fn disk_fault(mut self, node: NodeId, sync_fail_prob: f64, torn_tail_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&sync_fail_prob), "sync-fail probability must be in [0,1]");
        assert!((0.0..=1.0).contains(&torn_tail_prob), "torn-tail probability must be in [0,1]");
        self.plan.faults.push(Fault::DiskFault { node, sync_fail_prob, torn_tail_prob });
        self
    }

    /// Adds a correlated crash-restart of a node group.
    pub fn cluster_restart(mut self, nodes: Vec<NodeId>, at: SimTime, down_for: SimDuration) -> Self {
        assert!(!nodes.is_empty(), "cluster restart needs at least one node");
        assert!(down_for > SimDuration::ZERO, "downtime must be positive");
        self.plan.faults.push(Fault::ClusterRestart { nodes, at, down_for });
        self
    }

    /// Adds a directory replica that never syncs with its peers.
    pub fn stale_replica(mut self, replica: NodeId) -> Self {
        self.plan.faults.push(Fault::StaleReplica { replica });
        self
    }

    /// Adds a split-brain cut between two sides of the replica set.
    pub fn directory_split(
        mut self,
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        self.plan
            .faults
            .push(Fault::DirectorySplit { window: Window::new(start, end), side_a, side_b });
        self
    }

    /// Kicks off an online rebalance of shard `shard` at `at`.
    pub fn shard_rebalance(mut self, shard: u32, at: SimTime) -> Self {
        self.plan.faults.push(Fault::ShardRebalance { shard, at });
        self
    }

    /// Pins one host's shard map to whatever it holds at start.
    pub fn stale_shard_map(mut self, host: NodeId) -> Self {
        self.plan.faults.push(Fault::StaleShardMap { host });
        self
    }

    /// Adds a replica that serves forged records for the window.
    pub fn malicious_replica(mut self, replica: NodeId, start: SimTime, end: SimTime) -> Self {
        self.plan
            .faults
            .push(Fault::MaliciousReplica { replica, window: Window::new(start, end) });
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> NemesisPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn targets() -> NemesisTargets {
        NemesisTargets {
            managers: vec![n(0), n(1), n(2)],
            hosts: vec![n(3), n(4)],
            name_service: Some(n(5)),
            ns_replicas: Vec::new(),
            shard_managers: Vec::new(),
        }
    }

    fn directory_targets() -> NemesisTargets {
        NemesisTargets { ns_replicas: vec![n(5), n(6), n(7)], ..targets() }
    }

    fn shard_targets() -> NemesisTargets {
        NemesisTargets {
            shard_managers: vec![vec![n(0), n(1)], vec![n(2), n(8)]],
            ..directory_targets()
        }
    }

    #[test]
    fn window_is_half_open() {
        let w = Window::new(SimTime::from_secs(1), SimTime::from_secs(2));
        assert!(!w.contains(SimTime::from_millis(999)));
        assert!(w.contains(SimTime::from_secs(1)));
        assert!(w.contains(SimTime::from_millis(1_999)));
        assert!(!w.contains(SimTime::from_secs(2)));
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_window_rejected() {
        let _ = Window::new(SimTime::from_secs(2), SimTime::from_secs(2));
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let horizon = SimTime::from_secs(120);
        let a = NemesisPlan::sample(&targets(), horizon, 1.0, &mut SimRng::seed_from(11));
        let b = NemesisPlan::sample(&targets(), horizon, 1.0, &mut SimRng::seed_from(11));
        assert_eq!(a, b);
        let c = NemesisPlan::sample(&targets(), horizon, 1.0, &mut SimRng::seed_from(12));
        assert_ne!(a, c, "different seeds should differ");
        for fault in &a.faults {
            match fault {
                Fault::Drop { window, prob } | Fault::Duplicate { window, prob } => {
                    assert!(window.end <= horizon);
                    assert!((0.0..=1.0).contains(prob));
                }
                Fault::DelaySpike { window, extra_min, extra_max } => {
                    assert!(window.end <= horizon);
                    assert!(extra_min < extra_max);
                }
                Fault::Partition { window, side_a, side_b }
                | Fault::FlappingPartition { window, side_a, side_b, .. } => {
                    assert!(window.end <= horizon);
                    assert!(!side_a.is_empty() && !side_b.is_empty());
                    assert!(side_a.iter().all(|x| !side_b.contains(x)), "sides must be disjoint");
                }
                Fault::AsymmetricPartition { window, from, to } => {
                    assert!(window.end <= horizon);
                    assert!(!from.is_empty() && !to.is_empty());
                }
                Fault::Crash { at, down_for, .. } => {
                    assert!(*at < horizon);
                    assert!(*down_for > SimDuration::ZERO);
                }
                Fault::NsOutage { ns, window } => {
                    assert_eq!(*ns, n(5));
                    assert!(window.end <= horizon);
                }
                Fault::DiskFault { .. } | Fault::ClusterRestart { .. } => {
                    panic!("plain sample() must never draw storage faults")
                }
                Fault::StaleReplica { .. }
                | Fault::DirectorySplit { .. }
                | Fault::MaliciousReplica { .. } => {
                    panic!("plain sample() must never draw directory faults")
                }
                Fault::ShardRebalance { .. } | Fault::StaleShardMap { .. } => {
                    panic!("plain sample() must never draw shard faults")
                }
            }
        }
    }

    #[test]
    fn storage_sampling_is_deterministic_and_keeps_plain_plans_stable() {
        let horizon = SimTime::from_secs(120);
        let plain = NemesisPlan::sample(&targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        let a =
            NemesisPlan::sample_with_storage(&targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        let b =
            NemesisPlan::sample_with_storage(&targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        assert_eq!(a, b);
        // Plain sampling must be untouched by the new kinds, so existing
        // fixed-seed campaigns replay the same plans.
        assert!(plain
            .faults
            .iter()
            .all(|f| !matches!(f, Fault::DiskFault { .. } | Fault::ClusterRestart { .. })));
        // The storage mix actually produces the new kinds at some seed.
        let mut saw_disk = false;
        let mut saw_restart = false;
        for seed in 0..40 {
            let p = NemesisPlan::sample_with_storage(
                &targets(),
                horizon,
                2.0,
                &mut SimRng::seed_from(seed),
            );
            for f in &p.faults {
                match f {
                    Fault::DiskFault { node, sync_fail_prob, torn_tail_prob } => {
                        saw_disk = true;
                        assert!(targets().managers.contains(node));
                        assert!((0.0..=1.0).contains(sync_fail_prob));
                        assert!((0.0..=1.0).contains(torn_tail_prob));
                    }
                    Fault::ClusterRestart { nodes, at, down_for } => {
                        saw_restart = true;
                        assert!(!nodes.is_empty());
                        assert!(nodes.iter().all(|x| targets().managers.contains(x)));
                        assert!(*at < horizon);
                        assert!(*down_for > SimDuration::ZERO);
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_disk && saw_restart, "storage kinds never sampled");
    }

    #[test]
    fn shard_sampling_is_deterministic_and_keeps_existing_plans_stable() {
        let horizon = SimTime::from_secs(120);
        // Every pre-existing entry point must be untouched by the shard
        // kinds: with no shard targets the weight table is identical, so
        // fixed-seed plans replay byte-for-byte.
        let dir = NemesisPlan::sample_with_directory(
            &directory_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
        );
        let dir_via_shards = NemesisPlan::sample_with_shards(
            &directory_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
            true,
        );
        assert_eq!(dir, dir_via_shards, "no shard targets => identical plans");
        let a = NemesisPlan::sample_with_shards(
            &shard_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
            true,
        );
        let b = NemesisPlan::sample_with_shards(
            &shard_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
            true,
        );
        assert_eq!(a, b);
        // The shard mix actually produces both kinds at some seed, with
        // in-range parameters.
        let (mut saw_rebalance, mut saw_stale_map) = (false, false);
        for seed in 0..40 {
            let p = NemesisPlan::sample_with_shards(
                &shard_targets(),
                horizon,
                2.0,
                &mut SimRng::seed_from(seed),
                true,
                true,
            );
            for f in &p.faults {
                match f {
                    Fault::ShardRebalance { shard, at } => {
                        saw_rebalance = true;
                        assert!((*shard as usize) < shard_targets().shard_managers.len());
                        assert!(*at < horizon);
                    }
                    Fault::StaleShardMap { host } => {
                        saw_stale_map = true;
                        assert!(shard_targets().hosts.contains(host));
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_rebalance && saw_stale_map, "shard kinds never sampled");
    }

    #[test]
    fn shard_plan_accessors_extract_and_order_driver_faults() {
        let plan = NemesisPlan::builder(SimTime::from_secs(60))
            .shard_rebalance(1, SimTime::from_secs(30))
            .stale_shard_map(n(3))
            .shard_rebalance(0, SimTime::from_secs(10))
            .build();
        assert_eq!(
            plan.shard_rebalances(),
            vec![(0, SimTime::from_secs(10)), (1, SimTime::from_secs(30))],
            "rebalances come out in time order"
        );
        assert_eq!(plan.stale_shard_map_hosts(), vec![n(3)]);
        assert!(plan.net_faults().is_empty(), "driver faults are not net faults");
    }

    #[test]
    fn directory_sampling_is_deterministic_and_keeps_other_plans_stable() {
        let horizon = SimTime::from_secs(120);
        // Directory faults are drawn only by the new entry point; the
        // extra targets field alone must not perturb existing plans.
        let plain_a = NemesisPlan::sample(&targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        let plain_b =
            NemesisPlan::sample(&directory_targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        assert_eq!(plain_a, plain_b, "ns_replicas must not affect plain sampling");
        let storage_a =
            NemesisPlan::sample_with_storage(&targets(), horizon, 2.0, &mut SimRng::seed_from(11));
        let storage_b = NemesisPlan::sample_with_storage(
            &directory_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
        );
        assert_eq!(storage_a, storage_b, "ns_replicas must not affect storage sampling");

        let a = NemesisPlan::sample_with_directory(
            &directory_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
        );
        let b = NemesisPlan::sample_with_directory(
            &directory_targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
        );
        assert_eq!(a, b);

        // With no replicas, the directory entry point degrades to the
        // storage mix exactly.
        let no_replicas = NemesisPlan::sample_with_directory(
            &targets(),
            horizon,
            2.0,
            &mut SimRng::seed_from(11),
            true,
        );
        assert_eq!(no_replicas, storage_a);

        // The directory mix actually produces every new kind at some
        // seed, each one well-formed and aimed at the replica pool.
        let replicas = directory_targets().ns_replicas;
        let (mut saw_stale, mut saw_split, mut saw_malicious, mut saw_replica_crash) =
            (false, false, false, false);
        for seed in 0..40 {
            let p = NemesisPlan::sample_with_directory(
                &directory_targets(),
                horizon,
                2.0,
                &mut SimRng::seed_from(seed),
                false,
            );
            assert!(p
                .faults
                .iter()
                .all(|f| !matches!(f, Fault::DiskFault { .. } | Fault::ClusterRestart { .. })));
            for f in &p.faults {
                match f {
                    Fault::StaleReplica { replica } => {
                        saw_stale = true;
                        assert!(replicas.contains(replica));
                    }
                    Fault::DirectorySplit { window, side_a, side_b } => {
                        saw_split = true;
                        assert!(window.end <= horizon);
                        assert!(!side_a.is_empty() && !side_b.is_empty());
                        assert!(side_a.iter().chain(side_b).all(|x| replicas.contains(x)));
                        assert!(side_a.iter().all(|x| !side_b.contains(x)));
                    }
                    Fault::MaliciousReplica { replica, window } => {
                        saw_malicious = true;
                        assert!(replicas.contains(replica));
                        assert!(window.end <= horizon);
                    }
                    Fault::Crash { node, .. } if replicas.contains(node) => {
                        saw_replica_crash = true;
                    }
                    _ => {}
                }
            }
        }
        assert!(
            saw_stale && saw_split && saw_malicious && saw_replica_crash,
            "directory kinds never sampled: stale={saw_stale} split={saw_split} \
             malicious={saw_malicious} crash={saw_replica_crash}"
        );
    }

    #[test]
    fn directory_accessors_and_builder_round_trip() {
        let plan = NemesisPlan::builder(SimTime::from_secs(30))
            .stale_replica(n(5))
            .directory_split(vec![n(5)], vec![n(6), n(7)], SimTime::from_secs(2), SimTime::from_secs(9))
            .malicious_replica(n(6), SimTime::from_secs(10), SimTime::from_secs(20))
            .build();
        assert_eq!(plan.stale_replicas(), vec![n(5)]);
        let window = Window::new(SimTime::from_secs(10), SimTime::from_secs(20));
        assert_eq!(plan.malicious_replicas(), vec![(n(6), window)]);
        // Only the split is a network fault, and it severs like a
        // symmetric partition while open.
        let net = plan.net_faults();
        assert_eq!(net.len(), 1);
        assert!(net[0].severs(n(5), n(7), SimTime::from_secs(5)));
        assert!(net[0].severs(n(6), n(5), SimTime::from_secs(5)));
        assert!(!net[0].severs(n(6), n(7), SimTime::from_secs(5)), "same side stays connected");
        assert!(!net[0].severs(n(5), n(7), SimTime::from_secs(9)), "cut heals at window end");
        let text = plan.describe();
        assert!(text.contains("stale-replica"), "{text}");
        assert!(text.contains("directory-split"), "{text}");
        assert!(text.contains("malicious-replica"), "{text}");
    }

    #[test]
    fn disk_faults_accessor_and_builder_round_trip() {
        let plan = NemesisPlan::builder(SimTime::from_secs(30))
            .disk_fault(n(0), 0.1, 0.5)
            .cluster_restart(vec![n(0), n(1), n(2)], SimTime::from_secs(5), SimDuration::from_secs(1))
            .build();
        assert_eq!(plan.disk_faults(), vec![(n(0), 0.1, 0.5)]);
        assert!(plan.net_faults().is_empty(), "storage faults are not network faults");
        let text = plan.describe();
        assert!(text.contains("disk-fault"), "{text}");
        assert!(text.contains("cluster-restart"), "{text}");
    }

    #[test]
    fn intensity_scales_fault_count() {
        let horizon = SimTime::from_secs(100);
        let light = NemesisPlan::sample(&targets(), horizon, 0.2, &mut SimRng::seed_from(3));
        let heavy = NemesisPlan::sample(&targets(), horizon, 3.0, &mut SimRng::seed_from(3));
        assert!(heavy.len() > light.len(), "{} <= {}", heavy.len(), light.len());
    }

    #[test]
    fn flapping_partition_alternates() {
        let f = Fault::FlappingPartition {
            window: Window::new(SimTime::ZERO, SimTime::from_secs(10)),
            side_a: vec![n(0)],
            side_b: vec![n(1)],
            period: SimDuration::from_secs(1),
        };
        // Severed phase first, then healed, alternating each period.
        assert!(f.severs(n(0), n(1), SimTime::from_millis(500)));
        assert!(!f.severs(n(0), n(1), SimTime::from_millis(1_500)));
        assert!(f.severs(n(1), n(0), SimTime::from_millis(2_500)));
        assert!(!f.severs(n(0), n(1), SimTime::from_secs(11)), "outside the envelope");
    }

    #[test]
    fn asymmetric_partition_is_one_way() {
        let f = Fault::AsymmetricPartition {
            window: Window::new(SimTime::ZERO, SimTime::from_secs(10)),
            from: vec![n(0)],
            to: vec![n(1)],
        };
        assert!(f.severs(n(0), n(1), SimTime::from_secs(5)));
        assert!(!f.severs(n(1), n(0), SimTime::from_secs(5)), "reverse path must work");
    }

    #[test]
    fn without_removes_exactly_one_fault() {
        let plan = NemesisPlan::sample(
            &targets(),
            SimTime::from_secs(60),
            2.0,
            &mut SimRng::seed_from(4),
        );
        assert!(plan.len() >= 2);
        let shrunk = plan.without(0);
        assert_eq!(shrunk.len(), plan.len() - 1);
        assert_eq!(shrunk.faults[0], plan.faults[1]);
    }

    #[test]
    fn describe_numbers_every_fault() {
        let plan = NemesisPlan::builder(SimTime::from_secs(30))
            .drop_burst(SimTime::from_secs(1), SimTime::from_secs(2), 0.5)
            .crash(n(0), SimTime::from_secs(3), SimDuration::from_secs(1))
            .build();
        let text = plan.describe();
        assert!(text.contains("[0] drop"), "{text}");
        assert!(text.contains("[1] crash"), "{text}");
    }
}
