//! # wanacl-sim — deterministic WAN simulation substrate
//!
//! A discrete-event simulator purpose-built for reproducing *Access Control
//! in Wide-Area Networks* (Hiltunen & Schlichting, ICDCS '97). It models
//! exactly the environment the paper assumes:
//!
//! * an **unreliable network** with point-to-point and multicast sends,
//!   per-link delay distributions and loss ([`net`]),
//! * **frequent temporary partitions** — scripted cuts, congestion bursts
//!   (Gilbert–Elliott), and the i.i.d. pairwise-inaccessibility model of
//!   the paper's §4.1 analysis ([`net::partition`]),
//! * **host crashes and recoveries** from MTTF/MTTR processes ([`fault`]),
//! * **unsynchronized, rate-bounded local clocks** — the foundation of the
//!   paper's time-bound revocation guarantee ([`clock`]),
//! * full **determinism**: every run is a pure function of its seed, so
//!   experiments replay exactly ([`rng`], [`world`]).
//!
//! Protocol code (see the `wanacl-core` crate) is written as [`node::Node`]
//! implementations that can observe *only* their local clock and incoming
//! messages, mirroring what a real WAN host can see.
//!
//! ## Example
//!
//! ```
//! use wanacl_sim::prelude::*;
//!
//! #[derive(Default)]
//! struct Counter {
//!     seen: u32,
//! }
//!
//! impl Node for Counter {
//!     type Msg = u64;
//!     fn on_message(&mut self, _ctx: &mut Context<'_, u64>, _from: NodeId, _msg: u64) {
//!         self.seen += 1;
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut world: World<u64> = World::new(7);
//! let node = world.add_node("counter", Box::new(Counter::default()), ClockSpec::Perfect);
//! world.inject(SimTime::from_millis(1), node, 99);
//! world.run_until(SimTime::from_secs(1));
//! assert_eq!(world.node_as::<Counter>(node).seen, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backoff;
pub mod clock;
pub mod fault;
pub mod metrics;
pub mod nemesis;
pub mod net;
pub mod node;
pub mod obs;
pub mod queue;
pub mod rng;
pub mod storage;
pub mod time;
pub mod trace;
pub mod workload;
pub mod world;

/// Convenient glob-import surface for simulator users.
pub mod prelude {
    pub use crate::backoff::Backoff;
    pub use crate::clock::{ClockSpec, DriftClock, LocalTime};
    pub use crate::fault::CrashPlan;
    pub use crate::metrics::{Histogram, HistogramSummary, Metrics};
    pub use crate::nemesis::{Fault, NemesisNet, NemesisPlan, NemesisTargets};
    pub use crate::net::{NetModel, PerfectNet, Verdict, WanNet};
    pub use crate::node::{Context, Node, NodeId, TimerId};
    pub use crate::obs::{metrics_jsonl, prometheus_text, MetricsSink};
    pub use crate::queue::Scheduler;
    pub use crate::rng::{SimRng, Zipf};
    pub use crate::storage::{DiskFaultModel, Recovered, SimStorage, Storage, StorageStats};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::workload::{
        arrivals, next_arrival, FlashCrowd, LoadCurve, RegionalTopology, ZipfPopularity,
    };
    pub use crate::world::{Observer, ObserverId, World};
}
