//! Structured event tracing.
//!
//! The trace records what the world actually did — message deliveries,
//! drops, timers, crashes — and is the basis of the determinism invariant
//! (same seed ⇒ identical trace) as well as a debugging aid.

use crate::net::DropReason;
use crate::node::NodeId;
use crate::time::SimTime;

/// One recorded world event.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TraceEvent {
    /// A message left a node.
    Sent { from: NodeId, to: NodeId, desc: String },
    /// A message arrived at a node.
    Delivered { from: NodeId, to: NodeId, desc: String },
    /// The network dropped a message.
    Dropped { from: NodeId, to: NodeId, reason: DropReason },
    /// A node's timer fired.
    TimerFired { node: NodeId, tag: u64 },
    /// A node crashed.
    Crashed { node: NodeId },
    /// A node recovered.
    Recovered { node: NodeId },
    /// Free-form text emitted by a node via `Context::trace`.
    Note { node: NodeId, text: String },
}

/// A trace entry: when plus what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Real simulation time of the event.
    pub at: SimTime,
    /// The event.
    pub event: TraceEvent,
}

impl std::fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.event {
            TraceEvent::Sent { from, to, desc } => write!(f, "{from} -> {to}: sent {desc}"),
            TraceEvent::Delivered { from, to, desc } => {
                write!(f, "{from} -> {to}: delivered {desc}")
            }
            TraceEvent::Dropped { from, to, reason } => {
                write!(f, "{from} -> {to}: dropped ({reason})")
            }
            TraceEvent::TimerFired { node, tag } => write!(f, "{node}: timer {tag} fired"),
            TraceEvent::Crashed { node } => write!(f, "{node}: crashed"),
            TraceEvent::Recovered { node } => write!(f, "{node}: recovered"),
            TraceEvent::Note { node, text } => write!(f, "{node}: {text}"),
        }
    }
}

/// The world's trace buffer.
///
/// Disabled by default; experiments that need it opt in (tracing a long
/// run costs memory proportional to event count).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn push(&mut self, at: SimTime, event: TraceEvent) {
        if self.enabled {
            self.entries.push(TraceEntry { at, event });
        }
    }

    /// The recorded entries, in order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all recorded entries (recording state unchanged).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Renders the whole trace as text, one entry per line.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.push(SimTime::ZERO, TraceEvent::Crashed { node: n(0) });
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.push(SimTime::ZERO, TraceEvent::Crashed { node: n(0) });
        t.push(SimTime::from_secs(1), TraceEvent::Recovered { node: n(0) });
        assert_eq!(t.len(), 2);
        assert_eq!(t.entries()[0].at, SimTime::ZERO);
        assert!(matches!(t.entries()[1].event, TraceEvent::Recovered { .. }));
    }

    #[test]
    fn clear_keeps_enabled_flag() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.push(SimTime::ZERO, TraceEvent::TimerFired { node: n(1), tag: 9 });
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn display_renders_every_variant() {
        let events = vec![
            TraceEvent::Sent { from: n(0), to: n(1), desc: "q".into() },
            TraceEvent::Delivered { from: n(0), to: n(1), desc: "q".into() },
            TraceEvent::Dropped { from: n(0), to: n(1), reason: DropReason::Loss },
            TraceEvent::TimerFired { node: n(0), tag: 3 },
            TraceEvent::Crashed { node: n(0) },
            TraceEvent::Recovered { node: n(0) },
            TraceEvent::Note { node: n(0), text: "hello".into() },
        ];
        for ev in events {
            let entry = TraceEntry { at: SimTime::from_secs(1), event: ev };
            assert!(!entry.to_string().is_empty());
        }
    }

    #[test]
    fn to_text_joins_lines() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.push(SimTime::ZERO, TraceEvent::Crashed { node: n(0) });
        t.push(SimTime::ZERO, TraceEvent::Recovered { node: n(0) });
        assert_eq!(t.to_text().lines().count(), 2);
    }
}
