//! Seeded, forkable randomness for deterministic simulation.
//!
//! Every source of randomness in a run descends from a single `u64` seed,
//! so a scenario replays identically given the same seed ([`crate::world`]
//! invariant I6 in DESIGN.md). Sub-streams are *forked* by hashing a label
//! into the parent seed, which keeps streams independent of the order in
//! which they are created.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random-number generator for simulation components.
///
/// Wraps [`rand::rngs::StdRng`] seeded from a `u64`, and adds domain
/// helpers used throughout the simulator.
///
/// # Examples
///
/// ```
/// use wanacl_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Forks an independent child stream identified by `label`.
    ///
    /// Forking is stable: the child depends only on the parent's seed
    /// lineage and the label, not on how much the parent has been used
    /// before other forks.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from(base ^ fnv1a(label.as_bytes()))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform choice of one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.range(0, items.len() as u64) as usize]
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// Used for MTTF/MTTR failure processes and congestion burst lengths.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive and finite");
        // Inverse-CDF sampling; 1-u avoids ln(0).
        let u: f64 = self.unit();
        -mean * (1.0 - u).ln()
    }

    /// Sample a uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.unit()
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

/// A Zipf(s) sampler over ranks `0..n` with a precomputed CDF.
///
/// Rank 0 is the most popular. Used by workload generators: real service
/// populations are heavily skewed, which is what makes the paper's
/// host-side caching effective.
///
/// # Examples
///
/// ```
/// use wanacl_sim::rng::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SimRng::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s >= 0`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/NaN.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never true; `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn mass(&self, rank: usize) -> f64 {
        let prev = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        self.cdf[rank] - prev
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// FNV-1a hash, used only to mix fork labels into seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_deterministic() {
        let mut p1 = SimRng::seed_from(99);
        let mut p2 = SimRng::seed_from(99);
        let mut c1 = p1.fork("net");
        let mut c2 = p2.fork("net");
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn fork_labels_distinguish_streams() {
        let mut parent = SimRng::seed_from(5);
        let mut net = parent.fork("net");
        let mut parent2 = SimRng::seed_from(5);
        let mut fault = parent2.fork("fault");
        assert_ne!(net.next_u64(), fault.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((4.8..5.2).contains(&mean), "mean={mean}");
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..1_000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        SimRng::seed_from(0).range(5, 5);
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SimRng::seed_from(19);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(23);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(4, 0.0);
        for rank in 0..4 {
            assert!((zipf.mass(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_mass_decreases_with_rank() {
        let zipf = Zipf::new(10, 1.2);
        for rank in 1..10 {
            assert!(zipf.mass(rank) < zipf.mass(rank - 1));
        }
        let total: f64 = (0..10).map(|r| zipf.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_samples_match_mass() {
        let zipf = Zipf::new(5, 1.0);
        let mut rng = SimRng::seed_from(31);
        let mut counts = [0u32; 5];
        let trials = 100_000;
        for _ in 0..trials {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let observed = count as f64 / trials as f64;
            assert!(
                (observed - zipf.mass(rank)).abs() < 0.01,
                "rank {rank}: {observed} vs {}",
                zipf.mass(rank)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut rng = SimRng::seed_from(29);
        for _ in 0..1_000 {
            let v = rng.uniform(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }
}
