//! Indexed event scheduling for the simulated world.
//!
//! The simulator's hot loop is dominated by event-queue traffic: every
//! message hop, timer, crash, and recovery passes through one priority
//! queue ordered by `(time, seq)`. A single global `BinaryHeap` makes each
//! push/pop `O(log n)` over the *whole* pending set — at planet scale
//! (tens of thousands of hosts, millions of in-flight events) the heap's
//! pointer-chasing comparisons become the profile's hottest frames.
//!
//! [`EventQueue`] replaces it with a **bucketed calendar queue**: near-future
//! events are spread across fixed-width time buckets (each a small heap),
//! far-future events overflow into a fallback heap and are redistributed
//! when the scanning window catches up. Pops scan a bitmask of occupied
//! buckets, so the common case touches a heap of only the events that share
//! a ~4 ms slice of simulated time.
//!
//! **Ordering is bit-identical to the naive heap.** Both schedulers pop in
//! strict `(time, seq)` order — buckets partition the timeline, so the first
//! occupied bucket always holds the globally minimal event, and within a
//! bucket the per-bucket heap restores the total order. The naive heap is
//! kept as [`Scheduler::NaiveHeap`] both as a control for benchmarking and
//! as the oracle for the determinism property test.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which event-scheduler implementation a [`crate::world::World`] uses.
///
/// Both produce exactly the same event order (`(time, seq)`; FIFO among
/// simultaneous events), so the choice never changes a run's outcome —
/// only its wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Bucketed calendar queue with a heap fallback for far-future
    /// events. The default: near-constant-time scheduling for the dense
    /// near-future traffic that dominates large worlds.
    #[default]
    Calendar,
    /// A single global `BinaryHeap`, as the pre-refactor world used.
    /// Kept as the benchmark control and the parity-test oracle.
    NaiveHeap,
}

/// Log2 of the bucket width in nanoseconds (2^22 ns ≈ 4.19 ms).
const WIDTH_SHIFT: u32 = 22;
/// Number of buckets in the scanning window (must be a multiple of 64).
const NBUCKETS: usize = 1024;
/// Bitmask words covering `NBUCKETS` buckets.
const WORDS: usize = NBUCKETS / 64;
/// The window span in nanoseconds (~4.3 simulated seconds).
const WINDOW_NS: u64 = (NBUCKETS as u64) << WIDTH_SHIFT;

pub(crate) struct Entry<T> {
    at: SimTime,
    seq: u64,
    kind: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Time first, then insertion order: FIFO among simultaneous events.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The world's pending-event set, ordered by `(time, seq)`.
pub(crate) enum EventQueue<T> {
    Heap(BinaryHeap<Reverse<Entry<T>>>),
    Calendar(Box<Calendar<T>>),
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventQueue::Heap(h) => f.debug_struct("EventQueue::Heap").field("len", &h.len()).finish(),
            EventQueue::Calendar(c) => {
                f.debug_struct("EventQueue::Calendar").field("len", &c.len).finish()
            }
        }
    }
}

impl<T> EventQueue<T> {
    pub(crate) fn new(scheduler: Scheduler) -> Self {
        match scheduler {
            Scheduler::NaiveHeap => EventQueue::Heap(BinaryHeap::new()),
            Scheduler::Calendar => EventQueue::Calendar(Box::new(Calendar::new())),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len,
        }
    }

    #[allow(dead_code)] // used by the parity tests
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn push(&mut self, at: SimTime, seq: u64, kind: T) {
        let entry = Entry { at, seq, kind };
        match self {
            EventQueue::Heap(h) => h.push(Reverse(entry)),
            EventQueue::Calendar(c) => c.push(entry),
        }
    }

    /// The timestamp of the next event, without removing it.
    pub(crate) fn next_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|Reverse(e)| e.at),
            EventQueue::Calendar(c) => c.peek_at(),
        }
    }

    /// Removes and returns the next event in `(time, seq)` order.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, T)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse(e)| (e.at, e.kind)),
            EventQueue::Calendar(c) => c.pop().map(|e| (e.at, e.kind)),
        }
    }
}

/// The calendar proper: a sliding window of `NBUCKETS` fixed-width time
/// buckets starting at `base`, plus an overflow heap for events beyond the
/// window and a rarely-used `front` heap for events scheduled before
/// `base` (possible only right after a window rebase jumped forward).
pub(crate) struct Calendar<T> {
    /// Window start in nanoseconds, aligned down to the bucket width.
    base: u64,
    /// Bucket index to start pop scans from; only buckets at or after the
    /// cursor can be occupied (events are never scheduled in the past).
    cursor: usize,
    buckets: Vec<BinaryHeap<Reverse<Entry<T>>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occupied: [u64; WORDS],
    /// Events at or beyond `base + WINDOW_NS`.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// Events before `base`. Non-empty only between a forward rebase and
    /// the next bucket pop; always drained first.
    front: BinaryHeap<Reverse<Entry<T>>>,
    len: usize,
}

impl<T> Calendar<T> {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(NBUCKETS);
        buckets.resize_with(NBUCKETS, BinaryHeap::new);
        Calendar {
            base: 0,
            cursor: 0,
            buckets,
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            front: BinaryHeap::new(),
            len: 0,
        }
    }

    fn push(&mut self, entry: Entry<T>) {
        self.len += 1;
        let t = entry.at.as_nanos();
        if t < self.base {
            self.front.push(Reverse(entry));
            return;
        }
        let off = (t - self.base) >> WIDTH_SHIFT;
        if off >= NBUCKETS as u64 {
            self.overflow.push(Reverse(entry));
        } else {
            let idx = off as usize;
            self.buckets[idx].push(Reverse(entry));
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        }
    }

    /// First occupied bucket at or after `from`, via the bitmask.
    fn first_occupied(&self, from: usize) -> Option<usize> {
        let mut w = from >> 6;
        if w >= WORDS {
            return None;
        }
        let mut word = self.occupied[w] & (!0u64 << (from & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= WORDS {
                return None;
            }
            word = self.occupied[w];
        }
    }

    /// Slides the window forward so the overflow minimum lands in a
    /// bucket, redistributing every overflow event that now fits.
    /// Callers guarantee the buckets and `front` are empty.
    fn rebase(&mut self) {
        debug_assert!(self.front.is_empty());
        let min = match self.overflow.peek() {
            Some(Reverse(e)) => e.at.as_nanos(),
            None => return,
        };
        self.base = min >> WIDTH_SHIFT << WIDTH_SHIFT;
        self.cursor = 0;
        let end = self.base.saturating_add(WINDOW_NS);
        while matches!(self.overflow.peek(), Some(Reverse(e)) if e.at.as_nanos() < end) {
            let Reverse(entry) = self.overflow.pop().expect("peeked");
            let idx = ((entry.at.as_nanos() - self.base) >> WIDTH_SHIFT) as usize;
            self.buckets[idx].push(Reverse(entry));
            self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        }
    }

    /// Index of the bucket holding the next event, rebasing the window if
    /// it has been exhausted. `None` when only `front` has events (or the
    /// calendar is empty).
    fn next_bucket(&mut self) -> Option<usize> {
        if let Some(idx) = self.first_occupied(self.cursor) {
            return Some(idx);
        }
        if self.front.is_empty() && !self.overflow.is_empty() {
            self.rebase();
            return self.first_occupied(self.cursor);
        }
        None
    }

    fn peek_at(&mut self) -> Option<SimTime> {
        // `front` events are strictly earlier than anything in a bucket
        // or the overflow (all ≥ base), so they win unconditionally.
        if let Some(Reverse(e)) = self.front.peek() {
            return Some(e.at);
        }
        let idx = self.next_bucket()?;
        self.buckets[idx].peek().map(|Reverse(e)| e.at)
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        if let Some(Reverse(e)) = self.front.pop() {
            self.len -= 1;
            return Some(e);
        }
        let idx = self.next_bucket()?;
        let Reverse(entry) = self.buckets[idx].pop().expect("occupied bit set");
        if self.buckets[idx].is_empty() {
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.cursor = idx;
        self.len -= 1;
        Some(entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, kind)) = q.pop() {
            out.push((at.as_nanos(), kind));
        }
        out
    }

    /// Both schedulers must agree with a reference sort on a mixed
    /// near/far/simultaneous schedule.
    #[test]
    fn calendar_matches_heap_order() {
        let times: Vec<u64> = vec![
            0,
            1,
            5_000_000,
            5_000_000, // simultaneous: FIFO by seq
            WINDOW_NS + 17,
            3 * WINDOW_NS + 999,
            42,
            WINDOW_NS - 1,
            WINDOW_NS,
            1_000,
        ];
        let mut cal = EventQueue::new(Scheduler::Calendar);
        let mut heap = EventQueue::new(Scheduler::NaiveHeap);
        for (seq, &t) in times.iter().enumerate() {
            cal.push(SimTime::from_nanos(t), seq as u64, seq as u32);
            heap.push(SimTime::from_nanos(t), seq as u64, seq as u32);
        }
        let mut expect: Vec<(u64, u32)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u32)).collect();
        expect.sort_by_key(|&(t, s)| (t, s));
        assert_eq!(drain(&mut cal), expect);
        assert_eq!(drain(&mut heap), expect);
    }

    /// Pushes after a forward rebase may land before the new window base;
    /// the front heap must keep them first.
    #[test]
    fn push_before_base_after_rebase_stays_ordered() {
        let mut q = EventQueue::new(Scheduler::Calendar);
        // Far-future event forces a rebase on first peek.
        q.push(SimTime::from_nanos(10 * WINDOW_NS), 0, 0u32);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(10 * WINDOW_NS)));
        // Now schedule something earlier than the rebased window.
        q.push(SimTime::from_nanos(5), 1, 1);
        q.push(SimTime::from_nanos(7), 2, 2);
        assert_eq!(q.next_time(), Some(SimTime::from_nanos(5)));
        assert_eq!(drain(&mut q), vec![(5, 1), (7, 2), (10 * WINDOW_NS, 0)]);
    }

    /// Randomized interleaving of pushes and pops must match the naive
    /// heap exactly, including FIFO among equal timestamps.
    #[test]
    fn randomized_parity_with_heap() {
        use crate::rng::SimRng;
        for seed in 0..20u64 {
            let mut rng = SimRng::seed_from(seed);
            let mut cal = EventQueue::new(Scheduler::Calendar);
            let mut heap = EventQueue::new(Scheduler::NaiveHeap);
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = Vec::new();
            for _ in 0..2_000 {
                if rng.chance(0.6) || cal.is_empty() {
                    // Push at now + a delay spanning near & far future,
                    // with plenty of exact collisions.
                    let delay = match rng.range(0, 4) {
                        0 => 0,
                        1 => rng.range(0, 1_000_000),
                        2 => rng.range(0, WINDOW_NS),
                        _ => rng.range(0, 4 * WINDOW_NS),
                    };
                    let at = SimTime::from_nanos(now + delay);
                    cal.push(at, seq, seq as u32);
                    heap.push(at, seq, seq as u32);
                    seq += 1;
                } else {
                    let a = cal.pop().expect("non-empty");
                    let b = heap.pop().expect("same length");
                    assert_eq!((a.0, a.1), (b.0, b.1), "seed {seed}");
                    now = a.0.as_nanos();
                    popped.push(a);
                }
            }
            // Drain the rest.
            while let Some(a) = cal.pop() {
                let b = heap.pop().expect("same length");
                assert_eq!((a.0, a.1), (b.0, b.1), "seed {seed}");
                popped.push(a);
            }
            assert!(heap.pop().is_none());
            // The merged sequence must be sorted by (time, seq).
            for pair in popped.windows(2) {
                assert!(
                    (pair[0].0, pair[0].1) <= (pair[1].0, pair[1].1),
                    "out of order at seed {seed}"
                );
            }
        }
    }
}
