//! Seed-deterministic workload generators for planet-scale experiments.
//!
//! The paper evaluates its availability/security tradeoff analytically;
//! regenerating those curves *empirically* needs realistic load: user
//! popularity is heavy-tailed (a few principals issue most requests),
//! request rates follow the sun (diurnal cycles), news events cause flash
//! crowds, and WAN latency is dominated by which *regions* two hosts sit
//! in. This module provides generators for each, all driven exclusively by
//! [`SimRng`] so a fixed seed reproduces the exact same workload on any
//! machine, any thread count, any run.
//!
//! * [`ZipfPopularity`] — heavy-tailed per-user request shares,
//! * [`LoadCurve`] — diurnal rate modulation plus [`FlashCrowd`] spikes,
//! * [`arrivals`]/[`next_arrival`] — a non-homogeneous Poisson process
//!   over a [`LoadCurve`] (Lewis–Shedler thinning),
//! * [`RegionalTopology`] — a region-based latency matrix implementing
//!   [`DelayModel`], pluggable straight into
//!   [`WanNet::builder`](crate::net::WanNet).

use crate::net::delay::DelayModel;
use crate::node::NodeId;
use crate::rng::{SimRng, Zipf};
use crate::time::{SimDuration, SimTime};

/// Heavy-tailed user popularity: rank `r` (0-based) receives a share of
/// the total load proportional to `1 / (r+1)^s`.
///
/// A thin wrapper over [`Zipf`] that adds rate bookkeeping: given an
/// aggregate request rate, it splits the rate across users by Zipf mass.
///
/// # Examples
///
/// ```
/// use wanacl_sim::workload::ZipfPopularity;
///
/// let pop = ZipfPopularity::new(100, 1.0);
/// let rates = pop.rates(50.0); // 50 req/s across 100 users
/// assert!(rates[0] > rates[99]);
/// let total: f64 = rates.iter().sum();
/// assert!((total - 50.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfPopularity {
    zipf: Zipf,
    users: usize,
}

impl ZipfPopularity {
    /// Creates a popularity distribution over `users` ranks with Zipf
    /// exponent `s` (0 = uniform; 1 ≈ classic web-request skew).
    ///
    /// # Panics
    ///
    /// Panics if `users` is zero or `s` is negative/NaN.
    pub fn new(users: usize, s: f64) -> Self {
        ZipfPopularity { zipf: Zipf::new(users, s), users }
    }

    /// Number of users covered.
    pub fn users(&self) -> usize {
        self.users
    }

    /// The share of total load belonging to the user at `rank` (0-based).
    pub fn share(&self, rank: usize) -> f64 {
        self.zipf.mass(rank)
    }

    /// Splits `total_rate` (requests/sec) across all users by popularity.
    pub fn rates(&self, total_rate: f64) -> Vec<f64> {
        (0..self.users).map(|r| total_rate * self.zipf.mass(r)).collect()
    }

    /// Draws the rank of the user issuing the next request.
    pub fn sample_user(&self, rng: &mut SimRng) -> usize {
        self.zipf.sample(rng)
    }
}

/// A flash crowd: between `start` and `start + duration` the load curve
/// is multiplied by `multiplier` (> 1 spikes, < 1 models a brown-out).
#[derive(Debug, Clone, Copy)]
pub struct FlashCrowd {
    /// When the crowd arrives.
    pub start: SimTime,
    /// How long it stays.
    pub duration: SimDuration,
    /// Rate multiplier while active.
    pub multiplier: f64,
}

impl FlashCrowd {
    /// Whether the crowd is active at `t`.
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.start && t < self.start + self.duration
    }
}

/// A time-varying aggregate request rate: a base rate, optionally
/// modulated by a sinusoidal diurnal cycle, times any active
/// [`FlashCrowd`] multipliers.
///
/// `rate(t) = base · (1 + amplitude · sin(2π·(t − peak_offset + P/4)/P)) · Π crowds(t)`
///
/// With the default `peak_offset = 0` the diurnal peak lands at `t = P/4`
/// (mid-morning of a day starting at midnight) and the trough at `3P/4`.
///
/// # Examples
///
/// ```
/// use wanacl_sim::prelude::*;
/// use wanacl_sim::workload::LoadCurve;
///
/// let curve = LoadCurve::constant(10.0)
///     .diurnal(0.5, SimDuration::from_secs(86_400))
///     .flash_crowd(SimTime::from_secs(3_600), SimDuration::from_secs(600), 4.0);
/// assert!(curve.rate_at(SimTime::from_secs(3_700)) > 10.0);
/// assert!(curve.peak_rate() >= curve.rate_at(SimTime::from_secs(3_700)));
/// ```
#[derive(Debug, Clone)]
pub struct LoadCurve {
    base: f64,
    amplitude: f64,
    period: SimDuration,
    peak_offset: SimDuration,
    crowds: Vec<FlashCrowd>,
}

impl LoadCurve {
    /// A flat curve of `rate` requests/sec.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is negative or not finite.
    pub fn constant(rate: f64) -> Self {
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be non-negative, got {rate}");
        LoadCurve {
            base: rate,
            amplitude: 0.0,
            period: SimDuration::from_secs(86_400),
            peak_offset: SimDuration::ZERO,
            crowds: Vec::new(),
        }
    }

    /// Adds a sinusoidal diurnal cycle: `amplitude` in `[0, 1]` is the
    /// relative swing (0.5 ⇒ rate varies between 50% and 150% of base)
    /// and `period` is the cycle length (a simulated "day").
    ///
    /// # Panics
    ///
    /// Panics if `amplitude` is outside `[0, 1]` or `period` is zero.
    pub fn diurnal(mut self, amplitude: f64, period: SimDuration) -> Self {
        assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0,1], got {amplitude}");
        assert!(period > SimDuration::ZERO, "period must be positive");
        self.amplitude = amplitude;
        self.period = period;
        self
    }

    /// Shifts the diurnal peak to land at `offset + period/4`.
    pub fn peak_offset(mut self, offset: SimDuration) -> Self {
        self.peak_offset = offset;
        self
    }

    /// Adds a flash crowd.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is negative or not finite.
    pub fn flash_crowd(mut self, start: SimTime, duration: SimDuration, multiplier: f64) -> Self {
        assert!(
            multiplier >= 0.0 && multiplier.is_finite(),
            "multiplier must be non-negative, got {multiplier}"
        );
        self.crowds.push(FlashCrowd { start, duration, multiplier });
        self
    }

    /// The instantaneous aggregate rate at `t`, in requests/sec.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        let mut rate = self.base;
        if self.amplitude > 0.0 {
            let phase = t.as_nanos().wrapping_sub(self.peak_offset.as_nanos()) as f64
                / self.period.as_nanos() as f64;
            rate *= 1.0 + self.amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        for crowd in &self.crowds {
            if crowd.active_at(t) {
                rate *= crowd.multiplier;
            }
        }
        rate
    }

    /// An upper bound on `rate_at` over all time — the thinning envelope
    /// for [`next_arrival`]. Conservative: assumes every crowd with a
    /// multiplier above 1 could overlap the diurnal peak.
    pub fn peak_rate(&self) -> f64 {
        let mut peak = self.base * (1.0 + self.amplitude);
        for crowd in &self.crowds {
            if crowd.multiplier > 1.0 {
                peak *= crowd.multiplier;
            }
        }
        peak
    }
}

/// Draws the next arrival of a non-homogeneous Poisson process with
/// instantaneous rate `curve.rate_at(t)`, strictly after `after`.
///
/// Lewis–Shedler thinning: candidate gaps are drawn from the homogeneous
/// envelope `peak_rate()` and accepted with probability
/// `rate_at(t) / peak_rate()`. Fully deterministic in `rng`.
///
/// Returns `None` if the curve's peak rate is zero (no arrivals ever).
pub fn next_arrival(curve: &LoadCurve, after: SimTime, rng: &mut SimRng) -> Option<SimTime> {
    let envelope = curve.peak_rate();
    if envelope <= 0.0 {
        return None;
    }
    let mut t = after;
    loop {
        let gap = rng.exponential(1.0 / envelope);
        t = t.checked_add(SimDuration::from_secs_f64(gap))?;
        if rng.unit() < curve.rate_at(t) / envelope {
            return Some(t);
        }
    }
}

/// All arrivals of the process in `[after, until)`, in order.
///
/// Convenience wrapper over [`next_arrival`] for tests and batch
/// generation; long-running drivers should call [`next_arrival`] lazily.
pub fn arrivals(
    curve: &LoadCurve,
    after: SimTime,
    until: SimTime,
    rng: &mut SimRng,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut t = after;
    while let Some(next) = next_arrival(curve, t, rng) {
        if next >= until {
            break;
        }
        out.push(next);
        t = next;
    }
    out
}

/// A WAN organized as geographic regions with a one-way latency matrix.
///
/// Nodes are assigned to regions round-robin by [`NodeId`] index (override
/// with [`RegionalTopology::assign`]); each message samples
/// `base[from_region][to_region]` plus uniform jitter of up to
/// `jitter` × base. Implements [`DelayModel`], so it plugs into
/// [`WanNet::builder().delay_model(...)`](crate::net::WanNetBuilder::delay_model).
///
/// # Examples
///
/// ```
/// use wanacl_sim::prelude::*;
/// use wanacl_sim::workload::RegionalTopology;
///
/// let net = WanNet::builder()
///     .delay_model(Box::new(RegionalTopology::planet()))
///     .build();
/// # let _ = net;
/// ```
#[derive(Debug, Clone)]
pub struct RegionalTopology {
    /// `base[f][t]` = one-way base latency from region `f` to region `t`.
    base: Vec<Vec<SimDuration>>,
    /// Relative uniform jitter (0.2 ⇒ up to +20% of base).
    jitter: f64,
    /// Explicit node→region assignments; nodes past the end fall back to
    /// round-robin by index.
    assign: Vec<u16>,
}

impl RegionalTopology {
    /// Builds a topology from a square one-way latency matrix with 20%
    /// relative jitter.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty or not square.
    pub fn new(base: Vec<Vec<SimDuration>>) -> Self {
        assert!(!base.is_empty(), "need at least one region");
        for row in &base {
            assert_eq!(row.len(), base.len(), "latency matrix must be square");
        }
        RegionalTopology { base, jitter: 0.2, assign: Vec::new() }
    }

    /// A canonical five-region planet (US-East, US-West, Europe, Asia,
    /// Oceania) with realistic one-way inter-region latencies (35–140 ms)
    /// and 2 ms intra-region latency.
    pub fn planet() -> Self {
        const MS: &[[u64; 5]; 5] = &[
            // us-east us-west europe  asia  oceania
            [2, 35, 45, 110, 100], // us-east
            [35, 2, 70, 60, 80],   // us-west
            [45, 70, 2, 90, 140],  // europe
            [110, 60, 90, 2, 60],  // asia
            [100, 80, 140, 60, 2], // oceania
        ];
        Self::new(
            MS.iter()
                .map(|row| row.iter().map(|&ms| SimDuration::from_millis(ms)).collect())
                .collect(),
        )
    }

    /// Sets the relative uniform jitter added on top of the base latency.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!(jitter >= 0.0 && jitter.is_finite(), "jitter must be non-negative");
        self.jitter = jitter;
        self
    }

    /// Pins `node` to `region` instead of the round-robin default.
    ///
    /// # Panics
    ///
    /// Panics if `region` is out of range.
    pub fn assign(mut self, node: NodeId, region: usize) -> Self {
        assert!(region < self.base.len(), "region {region} out of range");
        let idx = node.index();
        if idx >= self.assign.len() {
            // Fill the gap with the round-robin default.
            let regions = self.base.len();
            let start = self.assign.len();
            self.assign.extend((start..=idx).map(|i| (i % regions) as u16));
        }
        self.assign[idx] = region as u16;
        self
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.base.len()
    }

    /// The region a node belongs to.
    pub fn region_of(&self, node: NodeId) -> usize {
        match self.assign.get(node.index()) {
            Some(&r) => r as usize,
            None => node.index() % self.base.len(),
        }
    }

    /// The base (jitter-free) one-way latency between two nodes.
    pub fn base_latency(&self, from: NodeId, to: NodeId) -> SimDuration {
        self.base[self.region_of(from)][self.region_of(to)]
    }
}

impl DelayModel for RegionalTopology {
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration {
        let base = self.base_latency(from, to);
        if self.jitter == 0.0 {
            return base;
        }
        let extra = rng.uniform(0.0, self.jitter) * base.as_nanos() as f64;
        base + SimDuration::from_nanos(extra as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_popularity_shares_sum_to_one() {
        let pop = ZipfPopularity::new(1_000, 1.1);
        let total: f64 = (0..pop.users()).map(|r| pop.share(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Rank 0 dominates under s > 0.
        assert!(pop.share(0) > 10.0 * pop.share(999));
    }

    #[test]
    fn zipf_sampling_is_seed_deterministic() {
        let pop = ZipfPopularity::new(500, 1.0);
        let draw = |seed| {
            let mut rng = SimRng::seed_from(seed);
            (0..100).map(|_| pop.sample_user(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn diurnal_curve_peaks_and_troughs() {
        let day = SimDuration::from_secs(86_400);
        let curve = LoadCurve::constant(100.0).diurnal(0.5, day);
        let peak = curve.rate_at(SimTime::from_secs(86_400 / 4));
        let trough = curve.rate_at(SimTime::from_secs(3 * 86_400 / 4));
        assert!((peak - 150.0).abs() < 1e-6, "peak {peak}");
        assert!((trough - 50.0).abs() < 1e-6, "trough {trough}");
        // Midnight and noon sit at the base rate.
        assert!((curve.rate_at(SimTime::ZERO) - 100.0).abs() < 1e-6);
    }

    #[test]
    fn flash_crowd_multiplies_rate_only_inside_window() {
        let curve = LoadCurve::constant(10.0).flash_crowd(
            SimTime::from_secs(100),
            SimDuration::from_secs(50),
            3.0,
        );
        assert!((curve.rate_at(SimTime::from_secs(99)) - 10.0).abs() < 1e-9);
        assert!((curve.rate_at(SimTime::from_secs(120)) - 30.0).abs() < 1e-9);
        assert!((curve.rate_at(SimTime::from_secs(151)) - 10.0).abs() < 1e-9);
        assert!((curve.peak_rate() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_are_seed_deterministic_and_ordered() {
        let curve = LoadCurve::constant(50.0)
            .diurnal(0.8, SimDuration::from_secs(600))
            .flash_crowd(SimTime::from_secs(100), SimDuration::from_secs(30), 5.0);
        let run = |seed| {
            let mut rng = SimRng::seed_from(seed);
            arrivals(&curve, SimTime::ZERO, SimTime::from_secs(300), &mut rng)
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed must reproduce the sample sequence");
        assert_ne!(a, run(43));
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals must be ordered");
        assert!(!a.is_empty());
    }

    #[test]
    fn thinning_tracks_the_rate_envelope() {
        // Over many arrivals the empirical rate during the flash crowd
        // should be roughly `multiplier` times the rate outside it.
        let curve = LoadCurve::constant(20.0).flash_crowd(
            SimTime::from_secs(1_000),
            SimDuration::from_secs(1_000),
            4.0,
        );
        let mut rng = SimRng::seed_from(9);
        let all = arrivals(&curve, SimTime::ZERO, SimTime::from_secs(2_000), &mut rng);
        let inside =
            all.iter().filter(|t| **t >= SimTime::from_secs(1_000)).count() as f64;
        let outside = (all.len() as f64) - inside;
        let ratio = inside / outside;
        assert!((2.5..6.0).contains(&ratio), "crowd ratio {ratio} should be near 4");
    }

    #[test]
    fn zero_rate_curve_yields_no_arrivals() {
        let curve = LoadCurve::constant(0.0);
        let mut rng = SimRng::seed_from(1);
        assert!(next_arrival(&curve, SimTime::ZERO, &mut rng).is_none());
        assert!(arrivals(&curve, SimTime::ZERO, SimTime::from_secs(10), &mut rng).is_empty());
    }

    #[test]
    fn regional_topology_latency_and_assignment() {
        let topo = RegionalTopology::planet();
        assert_eq!(topo.regions(), 5);
        // Round-robin default: node 0 → region 0, node 6 → region 1.
        assert_eq!(topo.region_of(NodeId::from_index(0)), 0);
        assert_eq!(topo.region_of(NodeId::from_index(6)), 1);
        let topo = topo.assign(NodeId::from_index(6), 3);
        assert_eq!(topo.region_of(NodeId::from_index(6)), 3);
        // Matrix lookup: us-east → asia is 110 ms.
        assert_eq!(
            topo.base_latency(NodeId::from_index(0), NodeId::from_index(6)),
            SimDuration::from_millis(110)
        );
    }

    #[test]
    fn regional_delay_sampling_is_deterministic_and_bounded() {
        let run = |seed| {
            let mut topo = RegionalTopology::planet().jitter(0.25);
            let mut rng = SimRng::seed_from(seed);
            (0..50)
                .map(|i| {
                    topo.sample(NodeId::from_index(i), NodeId::from_index(i + 1), &mut rng)
                })
                .collect::<Vec<_>>()
        };
        let a = run(3);
        assert_eq!(a, run(3));
        assert_ne!(a, run(4));
        let mut topo = RegionalTopology::planet().jitter(0.25);
        let mut rng = SimRng::seed_from(11);
        for i in 0..20 {
            let from = NodeId::from_index(i);
            let to = NodeId::from_index(i + 7);
            let base = topo.base_latency(from, to);
            let d = topo.sample(from, to, &mut rng);
            assert!(d >= base, "jitter is additive");
            assert!(d.as_nanos() as f64 <= base.as_nanos() as f64 * 1.2501);
        }
    }
}
