//! Node identity, the [`Node`] behaviour trait, and the [`Context`] handed
//! to a node while it handles an event.
//!
//! Nodes are deliberately cut off from real simulation time: the only clock
//! a node can read through its [`Context`] is its own (possibly drifting)
//! local clock, exactly as in a real deployment. Timers are likewise set in
//! local-clock units; the world converts them to real time using the node's
//! clock rate.

use std::any::Any;

use crate::clock::LocalTime;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Identifies a node in the simulated world.
///
/// Ids are dense indexes assigned by [`crate::world::World::add_node`].
/// [`NodeId::ENV`] is a reserved pseudo-sender for events injected by the
/// experiment harness rather than by another node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Pseudo-sender for harness-injected events.
    pub const ENV: NodeId = NodeId(u32::MAX);

    /// The raw index (stable for the lifetime of the world).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index. Only meaningful for ids previously
    /// produced by the same world.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == NodeId::ENV {
            write!(f, "n[env]")
        } else {
            write!(f, "n{}", self.0)
        }
    }
}

/// Handle for a pending timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// The raw driver-assigned id (for external drivers like
    /// `wanacl-rt`).
    pub fn into_raw(self) -> u64 {
        self.0
    }
}

/// Side effects a node requests while handling an event.
///
/// Collected by the [`Context`] and executed by the driver (the simulated
/// [`crate::world::World`], or a real-time runtime) after the handler
/// returns, which keeps handlers pure with respect to their environment.
#[derive(Debug)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Effect<M> {
    /// Transmit a message over the network.
    Send { to: NodeId, msg: M },
    /// Arm a timer measured on the node's local clock.
    SetTimer { id: TimerId, local_delay: SimDuration, tag: u64 },
    /// Disarm a pending timer.
    CancelTimer { id: TimerId },
    /// Emit a trace note.
    Trace { text: String },
    /// Increment a run-level counter.
    MetricIncr { name: &'static str },
    /// Record a run-level histogram sample.
    MetricObserve { name: &'static str, value: f64 },
}

/// The environment a node sees while handling one event.
///
/// All interaction with the outside world goes through this handle:
/// reading the local clock, sending messages, and managing timers.
#[derive(Debug)]
pub struct Context<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) local_now: LocalTime,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) next_timer: &'a mut u64,
}

impl<'a, M> Context<'a, M> {
    /// Builds a context for one event dispatch.
    ///
    /// Drivers (the simulated world, the threaded runtime) call this; node
    /// code only ever receives a ready-made context. `next_timer` is the
    /// driver's monotonically increasing timer-id counter.
    pub fn new(
        id: NodeId,
        local_now: LocalTime,
        effects: &'a mut Vec<Effect<M>>,
        rng: &'a mut SimRng,
        next_timer: &'a mut u64,
    ) -> Self {
        Context { id, local_now, effects, rng, next_timer }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's local clock reading for the current event.
    ///
    /// This is the only notion of time a node may observe; it advances at
    /// the node's clock rate, not at real time.
    pub fn local_now(&self) -> LocalTime {
        self.local_now
    }

    /// Queues a message to `to`. Delivery (and whether it happens at all)
    /// is decided by the world's network model.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Queues the same message to every node in `to` (unreliable multicast,
    /// modelled as independent point-to-point sends as in §2.2).
    pub fn multicast<I>(&mut self, to: I, msg: M)
    where
        I: IntoIterator<Item = NodeId>,
        M: Clone,
    {
        for dest in to {
            self.send(dest, msg.clone());
        }
    }

    /// Schedules a timer to fire after `local_delay` units of this node's
    /// local clock. Returns a handle usable with [`Context::cancel_timer`].
    ///
    /// Timers do not survive a crash: a node that crashes and recovers will
    /// not see timers set in its previous incarnation.
    pub fn set_timer(&mut self, local_delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer { id, local_delay, tag });
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer { id });
    }

    /// Deterministic per-run randomness for protocol-level choices (e.g.
    /// picking which manager to query first).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Appends a line to the world trace (no-op when tracing is disabled).
    pub fn trace(&mut self, text: impl Into<String>) {
        self.effects.push(Effect::Trace { text: text.into() });
    }

    /// Increments a run-level counter by one.
    pub fn metric_incr(&mut self, name: &'static str) {
        self.effects.push(Effect::MetricIncr { name });
    }

    /// Records a sample into a run-level histogram.
    pub fn metric_observe(&mut self, name: &'static str, value: f64) {
        self.effects.push(Effect::MetricObserve { name, value });
    }
}

/// Behaviour of a simulated node.
///
/// Implementations should be deterministic functions of their state, the
/// event, and the context's RNG; the world guarantees replayability given
/// that.
pub trait Node {
    /// The message type exchanged on this world's network.
    type Msg: Clone + std::fmt::Debug + 'static;

    /// Called once when the world starts (or not at all for nodes added
    /// after the first step — such nodes start on their first event).
    fn on_start(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Called for each message delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _ctx: &mut Context<'_, Self::Msg>, _tag: u64) {}

    /// Called when the fault injector crashes this node. Implementations
    /// should drop volatile state here (e.g. the ACL cache, per §3.4).
    fn on_crash(&mut self) {}

    /// Called when the node recovers after a crash.
    fn on_recover(&mut self, _ctx: &mut Context<'_, Self::Msg>) {}

    /// Downcasting support so harnesses can inspect node state.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_id_displays_specially() {
        assert_eq!(format!("{}", NodeId::ENV), "n[env]");
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId(7);
        assert_eq!(NodeId::from_index(id.index()), id);
    }

    #[test]
    fn context_collects_effects_in_order() {
        let mut effects: Vec<Effect<u32>> = Vec::new();
        let mut rng = SimRng::seed_from(1);
        let mut next_timer = 0;
        let mut ctx = Context {
            id: NodeId(0),
            local_now: LocalTime::ZERO,
            effects: &mut effects,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        ctx.send(NodeId(1), 10);
        let t = ctx.set_timer(SimDuration::from_secs(1), 42);
        ctx.cancel_timer(t);
        ctx.multicast([NodeId(2), NodeId(3)], 11);
        assert_eq!(effects.len(), 5);
        assert!(matches!(effects[0], Effect::Send { to: NodeId(1), msg: 10 }));
        assert!(matches!(effects[1], Effect::SetTimer { tag: 42, .. }));
        assert!(matches!(effects[2], Effect::CancelTimer { .. }));
        assert!(matches!(effects[3], Effect::Send { to: NodeId(2), msg: 11 }));
        assert!(matches!(effects[4], Effect::Send { to: NodeId(3), msg: 11 }));
    }

    #[test]
    fn timer_ids_are_unique() {
        let mut effects: Vec<Effect<u32>> = Vec::new();
        let mut rng = SimRng::seed_from(1);
        let mut next_timer = 0;
        let mut ctx = Context {
            id: NodeId(0),
            local_now: LocalTime::ZERO,
            effects: &mut effects,
            rng: &mut rng,
            next_timer: &mut next_timer,
        };
        let a = ctx.set_timer(SimDuration::from_secs(1), 0);
        let b = ctx.set_timer(SimDuration::from_secs(1), 0);
        assert_ne!(a, b);
    }
}
