//! Failure injection: crash/recovery schedules from MTTF/MTTR processes.
//!
//! §2.1 assumes individual host failures are relatively rare (MTTF on the
//! order of weeks, citing Long et al.'s Internet host survey) while
//! partitions are frequent. [`CrashPlan`] samples alternating exponential
//! up/down intervals per node and installs them into a
//! [`crate::world::World`] before a run.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled lifecycle change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// Node goes down.
    Crash(SimTime),
    /// Node comes back up.
    Recover(SimTime),
}

impl LifecycleEvent {
    /// When the change happens.
    pub fn at(&self) -> SimTime {
        match *self {
            LifecycleEvent::Crash(t) | LifecycleEvent::Recover(t) => t,
        }
    }
}

/// A crash/recovery schedule for a set of nodes.
///
/// # Examples
///
/// ```
/// use wanacl_sim::fault::CrashPlan;
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::{SimDuration, SimTime};
///
/// let mut rng = SimRng::seed_from(1);
/// let plan = CrashPlan::sample(
///     &[NodeId::from_index(0)],
///     SimDuration::from_secs(3_600), // MTTF
///     SimDuration::from_secs(60),    // MTTR
///     SimTime::from_secs(86_400),    // horizon
///     &mut rng,
/// );
/// assert!(plan.events(NodeId::from_index(0)).len() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CrashPlan {
    per_node: Vec<(NodeId, Vec<LifecycleEvent>)>,
}

impl CrashPlan {
    /// An empty plan (no failures).
    pub fn none() -> Self {
        Self::default()
    }

    /// Samples alternating up (mean `mttf`) and down (mean `mttr`)
    /// intervals for each node until `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `mttf` or `mttr` is zero.
    pub fn sample(
        nodes: &[NodeId],
        mttf: SimDuration,
        mttr: SimDuration,
        horizon: SimTime,
        rng: &mut SimRng,
    ) -> Self {
        assert!(mttf > SimDuration::ZERO, "mttf must be positive");
        assert!(mttr > SimDuration::ZERO, "mttr must be positive");
        let mut per_node = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let mut events = Vec::new();
            let mut t = SimTime::ZERO;
            loop {
                let up = SimDuration::from_secs_f64(rng.exponential(mttf.as_secs_f64()));
                t += up;
                if t >= horizon {
                    break;
                }
                events.push(LifecycleEvent::Crash(t));
                let down = SimDuration::from_secs_f64(rng.exponential(mttr.as_secs_f64()));
                t += down;
                if t >= horizon {
                    break;
                }
                events.push(LifecycleEvent::Recover(t));
            }
            per_node.push((node, events));
        }
        CrashPlan { per_node }
    }

    /// The scheduled events for one node (empty if the node is not in the
    /// plan).
    pub fn events(&self, node: NodeId) -> &[LifecycleEvent] {
        self.per_node
            .iter()
            .find(|(n, _)| *n == node)
            .map(|(_, e)| e.as_slice())
            .unwrap_or(&[])
    }

    /// Total number of scheduled events across all nodes.
    pub fn len(&self) -> usize {
        self.per_node.iter().map(|(_, e)| e.len()).sum()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs the plan into a world.
    pub fn install<M: Clone + std::fmt::Debug + 'static>(&self, world: &mut crate::world::World<M>) {
        for (node, events) in &self.per_node {
            for event in events {
                match *event {
                    LifecycleEvent::Crash(at) => world.schedule_crash(at, *node),
                    LifecycleEvent::Recover(at) => world.schedule_recover(at, *node),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn events_alternate_crash_recover() {
        let mut rng = SimRng::seed_from(1);
        let plan = CrashPlan::sample(
            &[n(0)],
            SimDuration::from_secs(100),
            SimDuration::from_secs(10),
            SimTime::from_secs(10_000),
            &mut rng,
        );
        let events = plan.events(n(0));
        assert!(!events.is_empty());
        for (i, e) in events.iter().enumerate() {
            match (i % 2, e) {
                (0, LifecycleEvent::Crash(_)) | (1, LifecycleEvent::Recover(_)) => {}
                _ => panic!("event {i} out of order: {e:?}"),
            }
        }
        // Strictly increasing times.
        for pair in events.windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
    }

    #[test]
    fn availability_matches_mttf_mttr_ratio() {
        let mut rng = SimRng::seed_from(2);
        let mttf = SimDuration::from_secs(900);
        let mttr = SimDuration::from_secs(100);
        let horizon = SimTime::from_secs(4_000_000);
        let plan = CrashPlan::sample(&[n(0)], mttf, mttr, horizon, &mut rng);
        // Accumulate downtime.
        let mut down = SimDuration::ZERO;
        let mut down_since: Option<SimTime> = None;
        for e in plan.events(n(0)) {
            match *e {
                LifecycleEvent::Crash(t) => down_since = Some(t),
                LifecycleEvent::Recover(t) => {
                    if let Some(s) = down_since.take() {
                        down = down + (t - s);
                    }
                }
            }
        }
        let frac = down.as_secs_f64() / horizon.as_secs_f64();
        assert!((0.07..0.13).contains(&frac), "down fraction {frac}");
    }

    #[test]
    fn empty_plan_is_empty() {
        let plan = CrashPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.events(n(3)), &[]);
    }

    #[test]
    fn sample_is_deterministic() {
        let mut r1 = SimRng::seed_from(5);
        let mut r2 = SimRng::seed_from(5);
        let args = (SimDuration::from_secs(50), SimDuration::from_secs(5), SimTime::from_secs(1_000));
        let p1 = CrashPlan::sample(&[n(0), n(1)], args.0, args.1, args.2, &mut r1);
        let p2 = CrashPlan::sample(&[n(0), n(1)], args.0, args.1, args.2, &mut r2);
        assert_eq!(p1.events(n(0)), p2.events(n(0)));
        assert_eq!(p1.events(n(1)), p2.events(n(1)));
    }

    #[test]
    fn horizon_bounds_all_events() {
        let mut rng = SimRng::seed_from(9);
        let horizon = SimTime::from_secs(500);
        let plan = CrashPlan::sample(
            &[n(0)],
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
            horizon,
            &mut rng,
        );
        for e in plan.events(n(0)) {
            assert!(e.at() < horizon);
        }
    }
}
