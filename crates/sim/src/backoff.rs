//! Capped exponential backoff with deterministic jitter.
//!
//! The paper's "persistent strategy" retransmits updates and revocation
//! notices until acknowledged. A fixed retransmission period behaves
//! badly under long partitions: every unreachable peer is hammered at
//! full cadence for the whole outage, and when the partition heals all
//! retry streams are phase-locked. [`Backoff`] computes per-round delays
//! that grow geometrically from a base to a cap, with a seeded jitter
//! band that decorrelates streams *deterministically* — the jitter draw
//! comes from the caller's [`SimRng`], so simulation runs remain a pure
//! function of their seed.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A capped exponential backoff schedule.
///
/// Round `n` (0-based) has nominal delay `min(base · multiplier^n, cap)`,
/// widened by a symmetric jitter band of `±jitter` (fraction of the
/// nominal delay).
///
/// # Examples
///
/// ```
/// use wanacl_sim::backoff::Backoff;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::SimDuration;
///
/// let b = Backoff::new(SimDuration::from_millis(500), SimDuration::from_secs(8));
/// let mut rng = SimRng::seed_from(1);
/// let d0 = b.delay(0, &mut rng);
/// let d3 = b.delay(3, &mut rng);
/// assert!(d0 < d3);
/// assert!(b.delay(30, &mut rng) <= SimDuration::from_secs(9)); // capped (+jitter)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    /// Delay of round 0.
    pub base: SimDuration,
    /// Upper bound on the nominal (pre-jitter) delay.
    pub cap: SimDuration,
    /// Geometric growth factor per round (≥ 1).
    pub multiplier: f64,
    /// Symmetric jitter fraction in `[0, 1)`; 0 disables jitter.
    pub jitter: f64,
}

impl Backoff {
    /// A backoff growing ×2 per round from `base` to `cap` with ±10%
    /// jitter.
    ///
    /// # Panics
    ///
    /// Panics if `base` is zero or `cap < base`.
    pub fn new(base: SimDuration, cap: SimDuration) -> Backoff {
        Backoff { base, cap, multiplier: 2.0, jitter: 0.1 }.validated()
    }

    /// A degenerate schedule: every round waits exactly `interval`
    /// (multiplier 1, no jitter). Matches the old fixed-period behaviour.
    pub fn fixed(interval: SimDuration) -> Backoff {
        Backoff { base: interval, cap: interval, multiplier: 1.0, jitter: 0.0 }.validated()
    }

    /// Sets the growth factor.
    pub fn multiplier(mut self, multiplier: f64) -> Backoff {
        self.multiplier = multiplier;
        self.validated()
    }

    /// Sets the jitter fraction.
    pub fn jitter(mut self, jitter: f64) -> Backoff {
        self.jitter = jitter;
        self.validated()
    }

    fn validated(self) -> Backoff {
        assert!(self.base > SimDuration::ZERO, "backoff base must be positive");
        assert!(self.cap >= self.base, "backoff cap must be >= base");
        assert!(self.multiplier >= 1.0, "backoff multiplier must be >= 1");
        assert!((0.0..1.0).contains(&self.jitter), "backoff jitter must be in [0, 1)");
        self
    }

    /// The nominal (un-jittered) delay of round `round`.
    pub fn nominal(&self, round: u32) -> SimDuration {
        if self.multiplier == 1.0 {
            return self.base;
        }
        // Once the geometric term would exceed the cap, stop multiplying
        // (avoids overflow for large rounds).
        let mut delay = self.base;
        for _ in 0..round.min(64) {
            if delay >= self.cap {
                return self.cap;
            }
            delay = delay.mul_f64(self.multiplier);
        }
        delay.min(self.cap)
    }

    /// The jittered delay of round `round`, drawn deterministically from
    /// `rng`. Always positive; at most `cap · (1 + jitter)`.
    pub fn delay(&self, round: u32, rng: &mut SimRng) -> SimDuration {
        let nominal = self.nominal(round);
        if self.jitter == 0.0 {
            return nominal;
        }
        let swing = 1.0 + self.jitter * (2.0 * rng.unit() - 1.0);
        nominal.mul_f64(swing).max(SimDuration::from_nanos(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Backoff {
        Backoff::new(SimDuration::from_millis(500), SimDuration::from_secs(8))
    }

    #[test]
    fn nominal_doubles_to_the_cap() {
        let b = b();
        assert_eq!(b.nominal(0), SimDuration::from_millis(500));
        assert_eq!(b.nominal(1), SimDuration::from_secs(1));
        assert_eq!(b.nominal(2), SimDuration::from_secs(2));
        assert_eq!(b.nominal(4), SimDuration::from_secs(8));
        assert_eq!(b.nominal(10), SimDuration::from_secs(8));
        assert_eq!(b.nominal(u32::MAX), SimDuration::from_secs(8));
    }

    #[test]
    fn fixed_never_grows_or_jitters() {
        let f = Backoff::fixed(SimDuration::from_millis(300));
        let mut rng = SimRng::seed_from(3);
        for round in 0..20 {
            assert_eq!(f.delay(round, &mut rng), SimDuration::from_millis(300));
        }
    }

    #[test]
    fn jitter_stays_in_band_and_varies() {
        let b = b();
        let mut rng = SimRng::seed_from(5);
        let nominal = b.nominal(2).as_secs_f64();
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let d = b.delay(2, &mut rng).as_secs_f64();
            assert!(d >= nominal * 0.9 - 1e-9 && d <= nominal * 1.1 + 1e-9, "delay {d}");
            distinct.insert((d * 1e9) as u64);
        }
        assert!(distinct.len() > 100, "jitter should spread: {}", distinct.len());
    }

    #[test]
    fn delays_are_seed_deterministic() {
        let b = b();
        let mut r1 = SimRng::seed_from(9);
        let mut r2 = SimRng::seed_from(9);
        for round in 0..10 {
            assert_eq!(b.delay(round, &mut r1), b.delay(round, &mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "cap must be >= base")]
    fn rejects_cap_below_base() {
        let _ = Backoff::new(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "multiplier")]
    fn rejects_shrinking_multiplier() {
        let _ = b().multiplier(0.5);
    }
}
