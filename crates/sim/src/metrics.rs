//! Run-level measurement: counters and latency histograms.
//!
//! Experiments read these after a run to compute empirical availability,
//! security, and overhead numbers.

use std::collections::BTreeMap;

/// A bag of named counters plus named sample sets.
///
/// Counter and histogram names are free-form; the protocol crates document
/// the names they emit (see DESIGN.md §11 for the registry).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds `other` into `self`: counters add, histogram sample sets
    /// concatenate in `other`'s recording order. Merging reports in a
    /// fixed order therefore yields a bit-identical rollup regardless of
    /// how the individual runs were scheduled.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            let target = self.histograms.entry(name.clone()).or_default();
            for &sample in &hist.samples {
                target.record(sample);
            }
        }
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

/// An exact-sample histogram (stores every observation).
///
/// Simulation runs record at most a few million samples, so exact storage
/// is affordable and keeps quantile math trivially correct.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

/// Two histograms are equal when they hold the same multiset of samples.
///
/// The comparison sorts copies so that a histogram whose samples were
/// lazily sorted by [`Histogram::quantile`] still equals an untouched
/// recording of the same run — the `sorted` flag is an implementation
/// detail, not data.
impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        if self.samples.len() != other.samples.len() {
            return false;
        }
        let sort = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            s
        };
        sort(&self.samples) == sort(&other.samples)
    }
}

/// Order statistics of one histogram, computed without mutating it.
///
/// Produced by [`Histogram::summary`]; the exporters in [`crate::obs`]
/// render these fields rather than raw samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples (in recording order, so deterministic).
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "histogram samples must not be NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Order statistics over the current samples, or `None` when empty.
    ///
    /// Unlike [`Histogram::quantile`] this never reorders the stored
    /// samples (it sorts a copy), so snapshots stay comparable with
    /// untouched recordings of the same run.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        let rank = |q: f64| {
            let r = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[r - 1]
        };
        let sum: f64 = self.samples.iter().sum();
        Some(HistogramSummary {
            count: self.samples.len(),
            sum,
            mean: sum / self.samples.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: rank(0.5),
            p90: rank(0.9),
            p99: rank(0.99),
        })
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.add("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("other"), 0);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("h", 1.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.histogram("h").is_none());
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn quantile_after_more_records_resorts() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(5.0));
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn quantile_edges_single_sample() {
        let mut h = Histogram::new();
        h.record(7.5);
        assert_eq!(h.quantile(0.0), Some(7.5));
        assert_eq!(h.quantile(0.5), Some(7.5));
        assert_eq!(h.quantile(1.0), Some(7.5));
        let s = h.summary().expect("non-empty");
        assert_eq!((s.count, s.min, s.max, s.p50, s.p99), (1, 7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn quantile_edges_duplicate_values() {
        let mut h = Histogram::new();
        for v in [2.0, 2.0, 2.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(2.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(0.75), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(9.0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        let mut h = Histogram::new();
        h.record(1.0);
        h.quantile(1.5);
    }

    #[test]
    fn reset_allows_reuse() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("h", 1.0);
        m.reset();
        m.incr("x");
        m.observe("h", 3.0);
        assert_eq!(m.counter("x"), 1);
        assert_eq!(m.histogram("h").and_then(|h| h.mean()), Some(3.0));
    }

    #[test]
    fn summary_does_not_reorder_samples() {
        let mut h = Histogram::new();
        h.record(5.0);
        h.record(1.0);
        let s = h.summary().expect("non-empty");
        assert_eq!((s.min, s.max, s.count), (1.0, 5.0, 2));
        // Equality with a histogram recorded in the same order must hold
        // (summary sorted a copy, not the samples themselves).
        let mut same = Histogram::new();
        same.record(5.0);
        same.record(1.0);
        assert_eq!(h, same);
    }

    #[test]
    fn equality_ignores_lazy_sort_state() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3.0, 1.0, 2.0] {
            a.record(v);
            b.record(v);
        }
        let _ = a.quantile(0.5); // sorts a's samples in place
        assert_eq!(a, b, "lazily sorted histogram must equal its untouched twin");
    }

    #[test]
    fn merge_adds_counters_and_concatenates_samples() {
        let mut a = Metrics::new();
        a.add("c", 2);
        a.observe("h", 1.0);
        let mut b = Metrics::new();
        b.add("c", 3);
        b.incr("only_b");
        b.observe("h", 2.0);
        b.observe("h2", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert_eq!(a.histogram("h").map(|h| h.count()), Some(2));
        assert_eq!(a.histogram("h2").map(|h| h.count()), Some(1));
    }

    #[test]
    fn observe_via_metrics() {
        let mut m = Metrics::new();
        m.observe("latency", 0.25);
        m.observe("latency", 0.75);
        assert_eq!(m.histogram("latency").map(|h| h.count()), Some(2));
        assert_eq!(m.histogram("latency").and_then(|h| h.mean()), Some(0.5));
    }
}
