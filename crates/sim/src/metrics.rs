//! Run-level measurement: counters and latency histograms.
//!
//! Experiments read these after a run to compute empirical availability,
//! security, and overhead numbers.

use std::collections::BTreeMap;

/// A bag of named counters plus named sample sets.
///
/// Counter and histogram names are free-form; the protocol crates document
/// the names they emit.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// Creates an empty metrics bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Clears all counters and histograms.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.histograms.clear();
    }
}

/// An exact-sample histogram (stores every observation).
///
/// Simulation runs record at most a few million samples, so exact storage
/// is affordable and keeps quantile math trivially correct.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "histogram samples must not be NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// The `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.max(v)),
        })
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(m.min(v)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msgs");
        m.add("msgs", 4);
        assert_eq!(m.counter("msgs"), 5);
        assert_eq!(m.counter("other"), 0);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("h", 1.0);
        m.reset();
        assert_eq!(m.counter("x"), 0);
        assert!(m.histogram("h").is_none());
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(4.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn histogram_rejects_nan() {
        Histogram::new().record(f64::NAN);
    }

    #[test]
    fn quantile_after_more_records_resorts() {
        let mut h = Histogram::new();
        h.record(5.0);
        assert_eq!(h.quantile(0.5), Some(5.0));
        h.record(1.0);
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn observe_via_metrics() {
        let mut m = Metrics::new();
        m.observe("latency", 0.25);
        m.observe("latency", 0.75);
        assert_eq!(m.histogram("latency").map(|h| h.count()), Some(2));
        assert_eq!(m.histogram("latency").and_then(|h| h.mean()), Some(0.5));
    }
}
