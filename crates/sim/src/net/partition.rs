//! Connectivity overlays: who can reach whom, when.
//!
//! The paper's failure model (§2.1) treats temporary partitions — mostly
//! congestion-induced — as the common case. Three oracles cover the
//! experiments:
//!
//! * [`ScheduledPartitions`] — explicit, scripted cuts for scenario tests,
//! * [`GilbertElliott`] — per-pair congestion bursts with exponential
//!   good/bad dwell times, the "temporary partitions caused by congestion"
//!   of §2.1,
//! * [`EpochIid`] — the §4.1 analytic model: each unordered pair is
//!   independently inaccessible with probability `Pi`, re-drawn every
//!   epoch. Used to validate `PA(C)`/`PS(C)` against protocol runs.

use std::collections::HashMap;

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Decides whether a (sender, receiver) pair is currently connected.
///
/// Oracles must be symmetric in effect for the paper's model to apply, but
/// the trait passes the ordered pair so asymmetric overlays are possible.
pub trait PartitionOracle {
    /// Returns `true` when a message from `from` can currently reach `to`.
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> bool;
}

/// The trivial overlay: everything is always connected.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysConnected;

impl PartitionOracle for AlwaysConnected {
    fn connected(&mut self, _from: NodeId, _to: NodeId, _now: SimTime, _rng: &mut SimRng) -> bool {
        true
    }
}

/// One scripted cut: while `start <= now < end`, nodes in `side_a` cannot
/// exchange messages with nodes in `side_b` (in either direction).
#[derive(Debug, Clone)]
pub struct Cut {
    side_a: Vec<NodeId>,
    side_b: Vec<NodeId>,
    start: SimTime,
    end: SimTime,
}

impl Cut {
    /// Creates a cut between two node sets over a time window.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(side_a: Vec<NodeId>, side_b: Vec<NodeId>, start: SimTime, end: SimTime) -> Self {
        assert!(start < end, "cut window must be non-empty");
        Cut { side_a, side_b, start, end }
    }

    fn severs(&self, from: NodeId, to: NodeId, now: SimTime) -> bool {
        if now < self.start || now >= self.end {
            return false;
        }
        let a_from = self.side_a.contains(&from);
        let b_from = self.side_b.contains(&from);
        let a_to = self.side_a.contains(&to);
        let b_to = self.side_b.contains(&to);
        (a_from && b_to) || (b_from && a_to)
    }
}

/// A scripted schedule of [`Cut`]s, for deterministic scenario tests.
///
/// # Examples
///
/// ```
/// use wanacl_sim::net::partition::{PartitionOracle, ScheduledPartitions};
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::SimTime;
///
/// let h = NodeId::from_index(0);
/// let m = NodeId::from_index(1);
/// let mut sched = ScheduledPartitions::cut_between(
///     vec![h], vec![m], SimTime::from_secs(10), SimTime::from_secs(20));
/// let mut rng = SimRng::seed_from(0);
/// assert!(sched.connected(h, m, SimTime::from_secs(5), &mut rng));
/// assert!(!sched.connected(h, m, SimTime::from_secs(15), &mut rng));
/// assert!(sched.connected(h, m, SimTime::from_secs(25), &mut rng));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScheduledPartitions {
    cuts: Vec<Cut>,
}

impl ScheduledPartitions {
    /// An empty schedule (always connected).
    pub fn new() -> Self {
        Self::default()
    }

    /// Convenience: a schedule with a single cut.
    pub fn cut_between(
        side_a: Vec<NodeId>,
        side_b: Vec<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        ScheduledPartitions { cuts: vec![Cut::new(side_a, side_b, start, end)] }
    }

    /// Adds a cut to the schedule.
    pub fn add(&mut self, cut: Cut) -> &mut Self {
        self.cuts.push(cut);
        self
    }

    /// Number of cuts in the schedule.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Whether the schedule has no cuts.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }
}

impl PartitionOracle for ScheduledPartitions {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, _rng: &mut SimRng) -> bool {
        !self.cuts.iter().any(|c| c.severs(from, to, now))
    }
}

/// Per-pair two-state congestion model (Gilbert–Elliott): each unordered
/// pair alternates between a connected "good" state and a partitioned
/// "bad" state, with exponentially distributed dwell times.
///
/// This reproduces §2.1's "temporary network partitions caused mostly by
/// network congestion can be frequent": short bad bursts, long good spells.
#[derive(Debug)]
pub struct GilbertElliott {
    mean_good: SimDuration,
    mean_bad: SimDuration,
    /// Lazily advanced per-pair state: (is_good, state valid until).
    state: HashMap<(NodeId, NodeId), (bool, SimTime)>,
}

impl GilbertElliott {
    /// Creates the model with the given mean dwell times.
    ///
    /// # Panics
    ///
    /// Panics if either mean is zero.
    pub fn new(mean_good: SimDuration, mean_bad: SimDuration) -> Self {
        assert!(mean_good > SimDuration::ZERO, "mean good dwell must be positive");
        assert!(mean_bad > SimDuration::ZERO, "mean bad dwell must be positive");
        GilbertElliott { mean_good, mean_bad, state: HashMap::new() }
    }

    /// The long-run fraction of time a pair spends partitioned — the
    /// effective `Pi` of this model, for comparison with §4.1.
    pub fn steady_state_pi(&self) -> f64 {
        let g = self.mean_good.as_secs_f64();
        let b = self.mean_bad.as_secs_f64();
        b / (g + b)
    }

    fn key(from: NodeId, to: NodeId) -> (NodeId, NodeId) {
        if from <= to {
            (from, to)
        } else {
            (to, from)
        }
    }
}

impl PartitionOracle for GilbertElliott {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> bool {
        let key = Self::key(from, to);
        let entry = self.state.entry(key).or_insert_with(|| (true, SimTime::ZERO));
        // Advance the renewal process lazily until it covers `now`.
        while entry.1 <= now {
            entry.0 = !entry.0;
            let mean = if entry.0 { self.mean_good } else { self.mean_bad };
            let dwell = SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()));
            // Guard against a zero-length dwell stalling the loop.
            let dwell = std::cmp::max(dwell, SimDuration::from_nanos(1));
            entry.1 += dwell;
        }
        entry.0
    }
}

/// The §4.1 analytic model: every unordered pair of nodes is independently
/// inaccessible with probability `pi`, re-drawn each `epoch`.
///
/// Connectivity is a pure hash of `(pair, epoch, seed)`, so the overlay is
/// deterministic, stateless, and consistent for the duration of an epoch —
/// matching the paper's assumption that a pair is either reachable or not
/// for the duration of one access-control exchange.
#[derive(Debug, Clone)]
pub struct EpochIid {
    pi: f64,
    epoch: SimDuration,
    seed: u64,
    /// Pairs exempt from the model (e.g. a colocated user/host pair).
    exempt: Vec<(NodeId, NodeId)>,
}

impl EpochIid {
    /// Creates the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is outside `[0, 1]` or `epoch` is zero.
    pub fn new(pi: f64, epoch: SimDuration, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&pi), "pi must be in [0,1], got {pi}");
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        EpochIid { pi, epoch, seed, exempt: Vec::new() }
    }

    /// Exempts an unordered pair from the inaccessibility model.
    pub fn exempt_pair(mut self, a: NodeId, b: NodeId) -> Self {
        self.exempt.push(if a <= b { (a, b) } else { (b, a) });
        self
    }

    /// The configured pairwise inaccessibility probability.
    pub fn pi(&self) -> f64 {
        self.pi
    }

    /// Whether the unordered pair `(a, b)` is inaccessible during the
    /// epoch containing `now`. Exposed so experiments can compute ground
    /// truth (e.g. "was a check quorum reachable?") without sending
    /// messages.
    pub fn pair_down(&self, a: NodeId, b: NodeId, now: SimTime) -> bool {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        if self.exempt.contains(&(lo, hi)) {
            return false;
        }
        let epoch_index = now.as_nanos() / self.epoch.as_nanos();
        let h = splitmix(
            self.seed
                ^ (lo.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ (hi.index() as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
                ^ epoch_index.wrapping_mul(0x1656_67b1_9e37_79f9),
        );
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.pi
    }
}

impl PartitionOracle for EpochIid {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, _rng: &mut SimRng) -> bool {
        !self.pair_down(from, to, now)
    }
}

/// Node-level intermittent connectivity: designated *mobile* nodes
/// alternate between attached (reachable) and detached (unreachable from
/// everyone) with exponential dwell times.
///
/// The paper's footnote 1: "similar problems exist in mobile computing
/// systems, so our solutions could be applied in this context as well" —
/// this oracle is how the repo exercises that claim (a phone losing and
/// regaining coverage looks, to the protocol, like a one-node partition).
#[derive(Debug)]
pub struct DutyCycle {
    mobile: Vec<NodeId>,
    mean_attached: SimDuration,
    mean_detached: SimDuration,
    /// Lazily advanced per-node state: (is attached, valid until).
    state: HashMap<NodeId, (bool, SimTime)>,
    /// Pairs that bypass the coverage model (e.g. a wired in-vehicle
    /// link between a mobile host and its colocated operator).
    exempt: Vec<(NodeId, NodeId)>,
}

impl DutyCycle {
    /// Creates the model for the given mobile nodes.
    ///
    /// # Panics
    ///
    /// Panics if either mean dwell time is zero.
    pub fn new(mobile: Vec<NodeId>, mean_attached: SimDuration, mean_detached: SimDuration) -> Self {
        assert!(mean_attached > SimDuration::ZERO, "mean attached dwell must be positive");
        assert!(mean_detached > SimDuration::ZERO, "mean detached dwell must be positive");
        DutyCycle { mobile, mean_attached, mean_detached, state: HashMap::new(), exempt: Vec::new() }
    }

    /// Exempts an unordered pair from the coverage model (a local link
    /// that stays up even while the mobile node has no uplink).
    pub fn exempt_pair(mut self, a: NodeId, b: NodeId) -> Self {
        self.exempt.push(if a <= b { (a, b) } else { (b, a) });
        self
    }

    /// The long-run fraction of time a mobile node is detached.
    pub fn steady_state_detached(&self) -> f64 {
        let a = self.mean_attached.as_secs_f64();
        let d = self.mean_detached.as_secs_f64();
        d / (a + d)
    }

    fn attached(&mut self, node: NodeId, now: SimTime, rng: &mut SimRng) -> bool {
        if !self.mobile.contains(&node) {
            return true;
        }
        let entry = self.state.entry(node).or_insert_with(|| (false, SimTime::ZERO));
        while entry.1 <= now {
            entry.0 = !entry.0;
            let mean = if entry.0 { self.mean_attached } else { self.mean_detached };
            let dwell = SimDuration::from_secs_f64(rng.exponential(mean.as_secs_f64()));
            let dwell = std::cmp::max(dwell, SimDuration::from_nanos(1));
            entry.1 += dwell;
        }
        entry.0
    }
}

impl PartitionOracle for DutyCycle {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> bool {
        let key = if from <= to { (from, to) } else { (to, from) };
        if self.exempt.contains(&key) {
            return true;
        }
        self.attached(from, now, rng) && self.attached(to, now, rng)
    }
}

/// SplitMix64 finalizer; turns a seed into a well-mixed 64-bit value.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Heterogeneous i.i.d. model (§4.1's extension): a per-pair `Pi` matrix
/// with a default for unlisted pairs, re-drawn each epoch like [`EpochIid`].
#[derive(Debug, Clone)]
pub struct HeteroIid {
    default_pi: f64,
    pi: HashMap<(NodeId, NodeId), f64>,
    epoch: SimDuration,
    seed: u64,
}

impl HeteroIid {
    /// Creates the overlay with a default pairwise probability.
    ///
    /// # Panics
    ///
    /// Panics if `default_pi` is outside `[0, 1]` or `epoch` is zero.
    pub fn new(default_pi: f64, epoch: SimDuration, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&default_pi), "pi must be in [0,1]");
        assert!(epoch > SimDuration::ZERO, "epoch must be positive");
        HeteroIid { default_pi, pi: HashMap::new(), epoch, seed }
    }

    /// Sets the inaccessibility probability for an unordered pair.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is outside `[0, 1]`.
    pub fn set_pair(&mut self, a: NodeId, b: NodeId, pi: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&pi), "pi must be in [0,1]");
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pi.insert(key, pi);
        self
    }

    /// The probability used for the unordered pair `(a, b)`.
    pub fn pair_pi(&self, a: NodeId, b: NodeId) -> f64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.pi.get(&key).copied().unwrap_or(self.default_pi)
    }
}

impl PartitionOracle for HeteroIid {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, _rng: &mut SimRng) -> bool {
        let pi = self.pair_pi(from, to);
        let probe = EpochIid { pi, epoch: self.epoch, seed: self.seed, exempt: Vec::new() };
        !probe.pair_down(from, to, now)
    }
}

/// Conjunction of several overlays: connected only if every layer agrees.
pub struct Composite {
    layers: Vec<Box<dyn PartitionOracle>>,
}

impl Composite {
    /// Creates a conjunction of overlays.
    pub fn new(layers: Vec<Box<dyn PartitionOracle>>) -> Self {
        Composite { layers }
    }
}

impl std::fmt::Debug for Composite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Composite").field("layers", &self.layers.len()).finish()
    }
}

impl PartitionOracle for Composite {
    fn connected(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> bool {
        self.layers.iter_mut().all(|l| l.connected(from, to, now, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn scheduled_cut_is_symmetric_and_windowed() {
        let mut s = ScheduledPartitions::cut_between(
            vec![n(0), n(1)],
            vec![n(2)],
            SimTime::from_secs(1),
            SimTime::from_secs(2),
        );
        let mut rng = SimRng::seed_from(0);
        let mid = SimTime::from_millis(1_500);
        assert!(!s.connected(n(0), n(2), mid, &mut rng));
        assert!(!s.connected(n(2), n(1), mid, &mut rng));
        // Same side stays connected.
        assert!(s.connected(n(0), n(1), mid, &mut rng));
        // Window edges: start inclusive, end exclusive.
        assert!(!s.connected(n(0), n(2), SimTime::from_secs(1), &mut rng));
        assert!(s.connected(n(0), n(2), SimTime::from_secs(2), &mut rng));
    }

    #[test]
    fn scheduled_supports_multiple_cuts() {
        let mut s = ScheduledPartitions::new();
        s.add(Cut::new(vec![n(0)], vec![n(1)], SimTime::ZERO, SimTime::from_secs(1)));
        s.add(Cut::new(vec![n(0)], vec![n(2)], SimTime::from_secs(2), SimTime::from_secs(3)));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let mut rng = SimRng::seed_from(0);
        assert!(!s.connected(n(0), n(1), SimTime::from_millis(500), &mut rng));
        assert!(s.connected(n(0), n(2), SimTime::from_millis(500), &mut rng));
        assert!(!s.connected(n(0), n(2), SimTime::from_millis(2_500), &mut rng));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn cut_rejects_empty_window() {
        let _ = Cut::new(vec![n(0)], vec![n(1)], SimTime::from_secs(1), SimTime::from_secs(1));
    }

    #[test]
    fn gilbert_elliott_steady_state_fraction() {
        let mut ge =
            GilbertElliott::new(SimDuration::from_secs(9), SimDuration::from_secs(1));
        assert!((ge.steady_state_pi() - 0.1).abs() < 1e-12);
        let mut rng = SimRng::seed_from(42);
        // Sample connectivity over a long horizon; fraction of "down"
        // samples should approach mean_bad / (mean_good + mean_bad) = 0.1.
        let mut down = 0usize;
        let total = 20_000usize;
        for i in 0..total {
            let t = SimTime::from_millis(i as u64 * 100);
            if !ge.connected(n(0), n(1), t, &mut rng) {
                down += 1;
            }
        }
        let frac = down as f64 / total as f64;
        assert!((0.07..0.13).contains(&frac), "down fraction {frac}");
    }

    #[test]
    fn gilbert_elliott_pairs_are_independent_streams() {
        let mut ge = GilbertElliott::new(SimDuration::from_secs(1), SimDuration::from_secs(1));
        let mut rng = SimRng::seed_from(7);
        let mut agree = 0usize;
        let total = 2_000usize;
        for i in 0..total {
            let t = SimTime::from_millis(i as u64 * 250);
            let a = ge.connected(n(0), n(1), t, &mut rng);
            let b = ge.connected(n(2), n(3), t, &mut rng);
            if a == b {
                agree += 1;
            }
        }
        // Independent symmetric processes agree ~50% of the time.
        let frac = agree as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "agreement {frac}");
    }

    #[test]
    fn epoch_iid_is_deterministic_and_stable_within_epoch() {
        let mut o = EpochIid::new(0.5, SimDuration::from_secs(10), 99);
        let mut rng = SimRng::seed_from(0);
        let a = o.connected(n(0), n(1), SimTime::from_secs(3), &mut rng);
        let b = o.connected(n(0), n(1), SimTime::from_secs(7), &mut rng);
        assert_eq!(a, b, "same epoch must give same answer");
        let c = o.connected(n(1), n(0), SimTime::from_secs(3), &mut rng);
        assert_eq!(a, c, "must be symmetric");
    }

    #[test]
    fn epoch_iid_matches_configured_pi() {
        let o = EpochIid::new(0.2, SimDuration::from_secs(1), 1234);
        let mut down = 0usize;
        let total = 50_000usize;
        let mut idx = 0u64;
        for e in 0..total {
            idx += 1;
            let t = SimTime::from_secs(e as u64);
            if o.pair_down(n((idx % 7) as usize), n(7 + (idx % 5) as usize), t) {
                down += 1;
            }
        }
        let frac = down as f64 / total as f64;
        assert!((0.19..0.21).contains(&frac), "down fraction {frac}");
    }

    #[test]
    fn epoch_iid_exempt_pairs_never_partition() {
        let o = EpochIid::new(1.0, SimDuration::from_secs(1), 5).exempt_pair(n(0), n(1));
        for e in 0..100 {
            assert!(!o.pair_down(n(0), n(1), SimTime::from_secs(e)));
            assert!(o.pair_down(n(0), n(2), SimTime::from_secs(e)));
        }
    }

    #[test]
    fn hetero_uses_per_pair_probabilities() {
        let mut h = HeteroIid::new(0.0, SimDuration::from_secs(1), 7);
        h.set_pair(n(0), n(1), 1.0);
        assert_eq!(h.pair_pi(n(1), n(0)), 1.0);
        assert_eq!(h.pair_pi(n(0), n(2)), 0.0);
        let mut rng = SimRng::seed_from(0);
        assert!(!h.connected(n(0), n(1), SimTime::ZERO, &mut rng));
        assert!(h.connected(n(0), n(2), SimTime::ZERO, &mut rng));
    }

    #[test]
    fn duty_cycle_only_affects_mobile_nodes() {
        let mut dc = DutyCycle::new(
            vec![n(0)],
            SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        let mut rng = SimRng::seed_from(1);
        // A link between two fixed nodes never drops.
        for i in 0..200 {
            assert!(dc.connected(n(1), n(2), SimTime::from_millis(i * 37), &mut rng));
        }
        // The mobile node is detached roughly half the time.
        let mut down = 0;
        let total = 5_000;
        for i in 0..total {
            if !dc.connected(n(0), n(1), SimTime::from_millis(i * 100), &mut rng) {
                down += 1;
            }
        }
        let frac = down as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "detached fraction {frac}");
        assert!((dc.steady_state_detached() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duty_cycle_exempt_pair_stays_connected() {
        let mut dc = DutyCycle::new(
            vec![n(0)],
            SimDuration::from_millis(1),
            SimDuration::from_secs(1_000), // effectively always detached
        )
        .exempt_pair(n(1), n(0));
        let mut rng = SimRng::seed_from(5);
        for i in 1..100 {
            let t = SimTime::from_secs(i);
            assert!(dc.connected(n(0), n(1), t, &mut rng), "local link must stay up");
            assert!(!dc.connected(n(0), n(2), t, &mut rng), "uplink must be down");
        }
    }

    #[test]
    fn duty_cycle_detachment_is_node_wide() {
        // While detached, the mobile node is unreachable from *everyone*
        // at the same instant.
        let mut dc = DutyCycle::new(
            vec![n(0)],
            SimDuration::from_secs(2),
            SimDuration::from_secs(2),
        );
        let mut rng = SimRng::seed_from(3);
        for i in 0..1_000 {
            let t = SimTime::from_millis(i * 53);
            let via_1 = dc.connected(n(0), n(1), t, &mut rng);
            let via_2 = dc.connected(n(2), n(0), t, &mut rng);
            assert_eq!(via_1, via_2, "detachment must be consistent across peers");
        }
    }

    #[test]
    fn composite_requires_all_layers() {
        let cut = ScheduledPartitions::cut_between(
            vec![n(0)],
            vec![n(1)],
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
        let mut comp = Composite::new(vec![Box::new(AlwaysConnected), Box::new(cut)]);
        let mut rng = SimRng::seed_from(0);
        assert!(!comp.connected(n(0), n(1), SimTime::from_millis(500), &mut rng));
        assert!(comp.connected(n(0), n(1), SimTime::from_secs(5), &mut rng));
    }
}
