//! Propagation-delay models for the simulated WAN.

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Samples a one-way propagation delay for a (sender, receiver) pair.
pub trait DelayModel {
    /// Draws the delay for one message.
    fn sample(&mut self, from: NodeId, to: NodeId, rng: &mut SimRng) -> SimDuration;
}

/// A constant one-way delay.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDelay {
    delay: SimDuration,
}

impl ConstantDelay {
    /// Creates the model.
    pub fn new(delay: SimDuration) -> Self {
        ConstantDelay { delay }
    }
}

impl DelayModel for ConstantDelay {
    fn sample(&mut self, _from: NodeId, _to: NodeId, _rng: &mut SimRng) -> SimDuration {
        self.delay
    }
}

/// Uniform one-way delay in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    lo: SimDuration,
    hi: SimDuration,
}

impl UniformDelay {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn new(lo: SimDuration, hi: SimDuration) -> Self {
        assert!(lo < hi, "uniform delay needs lo < hi");
        UniformDelay { lo, hi }
    }
}

impl DelayModel for UniformDelay {
    fn sample(&mut self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_nanos(rng.range(self.lo.as_nanos(), self.hi.as_nanos()))
    }
}

/// Shifted-exponential delay: a fixed propagation base plus an exponential
/// queueing tail — a standard first-order model of WAN latency.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialDelay {
    base: SimDuration,
    tail_mean: SimDuration,
}

impl ExponentialDelay {
    /// Creates the model. A zero `tail_mean` degenerates to a constant.
    pub fn new(base: SimDuration, tail_mean: SimDuration) -> Self {
        ExponentialDelay { base, tail_mean }
    }
}

impl DelayModel for ExponentialDelay {
    fn sample(&mut self, _from: NodeId, _to: NodeId, rng: &mut SimRng) -> SimDuration {
        if self.tail_mean == SimDuration::ZERO {
            return self.base;
        }
        let tail = rng.exponential(self.tail_mean.as_secs_f64());
        self.base + SimDuration::from_secs_f64(tail)
    }
}

/// A per-pair delay matrix with a default for unlisted pairs, for
/// heterogeneous topologies (§4.1's "realistic systems" discussion).
#[derive(Debug, Clone)]
pub struct MatrixDelay {
    default: SimDuration,
    overrides: std::collections::HashMap<(NodeId, NodeId), SimDuration>,
}

impl MatrixDelay {
    /// Creates a matrix where every pair uses `default` until overridden.
    pub fn new(default: SimDuration) -> Self {
        MatrixDelay { default, overrides: std::collections::HashMap::new() }
    }

    /// Sets the delay for the ordered pair `(from, to)`.
    pub fn set(&mut self, from: NodeId, to: NodeId, delay: SimDuration) -> &mut Self {
        self.overrides.insert((from, to), delay);
        self
    }

    /// Sets the delay in both directions.
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, delay: SimDuration) -> &mut Self {
        self.overrides.insert((a, b), delay);
        self.overrides.insert((b, a), delay);
        self
    }
}

impl DelayModel for MatrixDelay {
    fn sample(&mut self, from: NodeId, to: NodeId, _rng: &mut SimRng) -> SimDuration {
        self.overrides.get(&(from, to)).copied().unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn constant_is_constant() {
        let mut m = ConstantDelay::new(SimDuration::from_millis(5));
        let mut rng = SimRng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(m.sample(n(0), n(1), &mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut m = UniformDelay::new(SimDuration::from_millis(1), SimDuration::from_millis(3));
        let mut rng = SimRng::seed_from(2);
        for _ in 0..500 {
            let d = m.sample(n(0), n(1), &mut rng);
            assert!(d >= SimDuration::from_millis(1) && d < SimDuration::from_millis(3));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_empty_range() {
        let _ = UniformDelay::new(SimDuration::from_millis(3), SimDuration::from_millis(3));
    }

    #[test]
    fn exponential_never_below_base() {
        let base = SimDuration::from_millis(20);
        let mut m = ExponentialDelay::new(base, SimDuration::from_millis(30));
        let mut rng = SimRng::seed_from(3);
        for _ in 0..500 {
            assert!(m.sample(n(0), n(1), &mut rng) >= base);
        }
    }

    #[test]
    fn exponential_zero_tail_is_constant() {
        let mut m = ExponentialDelay::new(SimDuration::from_millis(7), SimDuration::ZERO);
        let mut rng = SimRng::seed_from(4);
        assert_eq!(m.sample(n(0), n(1), &mut rng), SimDuration::from_millis(7));
    }

    #[test]
    fn exponential_mean_roughly_base_plus_tail() {
        let mut m =
            ExponentialDelay::new(SimDuration::from_millis(10), SimDuration::from_millis(40));
        let mut rng = SimRng::seed_from(5);
        let k = 20_000;
        let total: f64 = (0..k).map(|_| m.sample(n(0), n(1), &mut rng).as_secs_f64()).sum();
        let mean_ms = total / k as f64 * 1e3;
        assert!((47.0..53.0).contains(&mean_ms), "mean={mean_ms}ms");
    }

    #[test]
    fn matrix_overrides_and_defaults() {
        let mut m = MatrixDelay::new(SimDuration::from_millis(50));
        m.set_symmetric(n(0), n(1), SimDuration::from_millis(5));
        m.set(n(0), n(2), SimDuration::from_millis(200));
        let mut rng = SimRng::seed_from(6);
        assert_eq!(m.sample(n(0), n(1), &mut rng), SimDuration::from_millis(5));
        assert_eq!(m.sample(n(1), n(0), &mut rng), SimDuration::from_millis(5));
        assert_eq!(m.sample(n(0), n(2), &mut rng), SimDuration::from_millis(200));
        assert_eq!(m.sample(n(2), n(0), &mut rng), SimDuration::from_millis(50));
    }
}
