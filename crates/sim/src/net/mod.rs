//! The simulated wide-area network.
//!
//! §2.2 of the paper assumes an *unreliable* point-to-point / multicast
//! network; §2.1 assumes host failures are rare but temporary partitions —
//! mostly congestion-induced — are frequent. This module models exactly
//! those observables:
//!
//! * per-link propagation delay ([`delay::DelayModel`]),
//! * independent message loss,
//! * connectivity overlays ([`partition::PartitionOracle`]): scheduled
//!   partitions, congestion bursts (Gilbert–Elliott), and the i.i.d.
//!   pairwise-inaccessibility model used by the paper's §4.1 analysis.
//!
//! The composition is [`WanNet`]: `verdict = oracle ∘ loss ∘ delay`.

pub mod delay;
pub mod partition;

use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

use delay::DelayModel;
use partition::PartitionOracle;

/// Why a message was not delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// The pair is currently disconnected by the partition oracle.
    Partitioned,
    /// Random message loss on an otherwise connected path.
    Loss,
    /// The destination node was down at delivery time.
    DestinationDown,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DropReason::Partitioned => write!(f, "partitioned"),
            DropReason::Loss => write!(f, "loss"),
            DropReason::DestinationDown => write!(f, "destination down"),
        }
    }
}

/// Outcome of attempting to transmit one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Deliver after the given propagation delay.
    Deliver(SimDuration),
    /// Deliver twice (networks duplicate as well as drop; protocols must
    /// be idempotent).
    Duplicate(SimDuration, SimDuration),
    /// Silently drop (the sender learns nothing, as on a real WAN).
    Drop(DropReason),
}

/// A network model decides the fate of every message.
///
/// Implementations may keep per-link state (e.g. congestion bursts) and may
/// consult the provided RNG; both must be used deterministically.
pub trait NetModel {
    /// Decides delivery of a message sent by `from` to `to` at real time
    /// `now`.
    fn transmit(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> Verdict;
}

/// A perfect network: constant delay, no loss, never partitioned.
///
/// # Examples
///
/// ```
/// use wanacl_sim::net::{NetModel, PerfectNet, Verdict};
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::rng::SimRng;
/// use wanacl_sim::time::{SimDuration, SimTime};
///
/// let mut net = PerfectNet::new(SimDuration::from_millis(10));
/// let mut rng = SimRng::seed_from(0);
/// let v = net.transmit(NodeId::from_index(0), NodeId::from_index(1), SimTime::ZERO, &mut rng);
/// assert_eq!(v, Verdict::Deliver(SimDuration::from_millis(10)));
/// ```
#[derive(Debug, Clone)]
pub struct PerfectNet {
    delay: SimDuration,
}

impl PerfectNet {
    /// Creates a perfect network with the given one-way delay.
    pub fn new(delay: SimDuration) -> Self {
        PerfectNet { delay }
    }
}

impl NetModel for PerfectNet {
    fn transmit(&mut self, _from: NodeId, _to: NodeId, _now: SimTime, _rng: &mut SimRng) -> Verdict {
        Verdict::Deliver(self.delay)
    }
}

/// The full WAN model: a delay distribution, independent loss, and a
/// partition overlay.
///
/// Built with [`WanNetBuilder`] (C-BUILDER).
pub struct WanNet {
    delay: Box<dyn DelayModel>,
    loss_prob: f64,
    duplicate_prob: f64,
    oracle: Box<dyn PartitionOracle>,
}

impl std::fmt::Debug for WanNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WanNet").field("loss_prob", &self.loss_prob).finish_non_exhaustive()
    }
}

impl WanNet {
    /// Starts building a WAN model.
    pub fn builder() -> WanNetBuilder {
        WanNetBuilder::default()
    }
}

impl NetModel for WanNet {
    fn transmit(&mut self, from: NodeId, to: NodeId, now: SimTime, rng: &mut SimRng) -> Verdict {
        if !self.oracle.connected(from, to, now, rng) {
            return Verdict::Drop(DropReason::Partitioned);
        }
        if rng.chance(self.loss_prob) {
            return Verdict::Drop(DropReason::Loss);
        }
        let first = self.delay.sample(from, to, rng);
        if rng.chance(self.duplicate_prob) {
            let second = self.delay.sample(from, to, rng);
            return Verdict::Duplicate(first, second);
        }
        Verdict::Deliver(first)
    }
}

/// Builder for [`WanNet`].
///
/// # Examples
///
/// ```
/// use wanacl_sim::net::WanNet;
/// use wanacl_sim::time::SimDuration;
///
/// let net = WanNet::builder()
///     .uniform_delay(SimDuration::from_millis(20), SimDuration::from_millis(80))
///     .loss(0.01)
///     .build();
/// let _ = net;
/// ```
pub struct WanNetBuilder {
    delay: Box<dyn DelayModel>,
    loss_prob: f64,
    duplicate_prob: f64,
    oracle: Box<dyn PartitionOracle>,
}

impl std::fmt::Debug for WanNetBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WanNetBuilder").field("loss_prob", &self.loss_prob).finish_non_exhaustive()
    }
}

impl Default for WanNetBuilder {
    fn default() -> Self {
        WanNetBuilder {
            delay: Box::new(delay::ConstantDelay::new(SimDuration::from_millis(50))),
            loss_prob: 0.0,
            duplicate_prob: 0.0,
            oracle: Box::new(partition::AlwaysConnected),
        }
    }
}

impl WanNetBuilder {
    /// Uses a constant one-way delay.
    pub fn constant_delay(mut self, delay: SimDuration) -> Self {
        self.delay = Box::new(delay::ConstantDelay::new(delay));
        self
    }

    /// Uses a uniform one-way delay in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_delay(mut self, lo: SimDuration, hi: SimDuration) -> Self {
        self.delay = Box::new(delay::UniformDelay::new(lo, hi));
        self
    }

    /// Uses a shifted-exponential one-way delay (`base` plus an exponential
    /// tail with the given mean), a common heavy-ish WAN latency shape.
    pub fn exponential_delay(mut self, base: SimDuration, tail_mean: SimDuration) -> Self {
        self.delay = Box::new(delay::ExponentialDelay::new(base, tail_mean));
        self
    }

    /// Uses a custom delay model.
    pub fn delay_model(mut self, model: Box<dyn DelayModel>) -> Self {
        self.delay = model;
        self
    }

    /// Sets independent per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability must be in [0,1], got {p}");
        self.loss_prob = p;
        self
    }

    /// Sets independent per-message duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn duplication(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability must be in [0,1], got {p}");
        self.duplicate_prob = p;
        self
    }

    /// Installs a partition overlay.
    pub fn partitions(mut self, oracle: Box<dyn PartitionOracle>) -> Self {
        self.oracle = oracle;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> WanNet {
        WanNet {
            delay: self.delay,
            loss_prob: self.loss_prob,
            duplicate_prob: self.duplicate_prob,
            oracle: self.oracle,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::partition::ScheduledPartitions;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn wan_applies_loss() {
        let mut net = WanNet::builder().loss(1.0).build();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(net.transmit(n(0), n(1), SimTime::ZERO, &mut rng), Verdict::Drop(DropReason::Loss));
    }

    #[test]
    fn wan_partition_takes_priority_over_loss() {
        let schedule = ScheduledPartitions::cut_between(
            vec![n(0)],
            vec![n(1)],
            SimTime::ZERO,
            SimTime::from_secs(10),
        );
        let mut net = WanNet::builder().loss(1.0).partitions(Box::new(schedule)).build();
        let mut rng = SimRng::seed_from(0);
        assert_eq!(
            net.transmit(n(0), n(1), SimTime::from_secs(5), &mut rng),
            Verdict::Drop(DropReason::Partitioned)
        );
    }

    #[test]
    fn wan_uniform_delay_within_bounds() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        let mut net = WanNet::builder().uniform_delay(lo, hi).build();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..200 {
            match net.transmit(n(0), n(1), SimTime::ZERO, &mut rng) {
                Verdict::Deliver(d) => assert!(d >= lo && d < hi, "delay {d} out of bounds"),
                Verdict::Duplicate(..) => panic!("duplication is off by default"),
                Verdict::Drop(r) => panic!("unexpected drop: {r}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn builder_rejects_bad_loss() {
        let _ = WanNet::builder().loss(1.5);
    }

    #[test]
    fn duplication_yields_two_deliveries() {
        let mut net = WanNet::builder()
            .constant_delay(SimDuration::from_millis(10))
            .duplication(1.0)
            .build();
        let mut rng = SimRng::seed_from(1);
        match net.transmit(n(0), n(1), SimTime::ZERO, &mut rng) {
            Verdict::Duplicate(a, b) => {
                assert_eq!(a, SimDuration::from_millis(10));
                assert_eq!(b, SimDuration::from_millis(10));
            }
            other => panic!("expected duplicate, got {other:?}"),
        }
    }

    #[test]
    fn duplication_rate_is_roughly_calibrated() {
        let mut net = WanNet::builder().duplication(0.25).build();
        let mut rng = SimRng::seed_from(2);
        let dups = (0..10_000)
            .filter(|_| matches!(net.transmit(n(0), n(1), SimTime::ZERO, &mut rng), Verdict::Duplicate(..)))
            .count();
        assert!((2_200..2_800).contains(&dups), "dups={dups}");
    }

    #[test]
    #[should_panic(expected = "duplication probability")]
    fn builder_rejects_bad_duplication() {
        let _ = WanNet::builder().duplication(-0.1);
    }

    #[test]
    fn drop_reason_displays() {
        assert_eq!(DropReason::Partitioned.to_string(), "partitioned");
        assert_eq!(DropReason::Loss.to_string(), "loss");
        assert_eq!(DropReason::DestinationDown.to_string(), "destination down");
    }
}
