//! Simulated time.
//!
//! The simulator measures *real* (perfect) time as a monotonically
//! increasing count of nanoseconds since the start of the run. Nodes never
//! observe this value directly — they only see their local, possibly
//! drifting, clock (see [`crate::clock`]).
//!
//! Two newtypes keep instants and durations from being confused
//! (C-NEWTYPE): [`SimTime`] is a point on the simulation timeline and
//! [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated timeline, in nanoseconds since the start of
/// the run.
///
/// # Examples
///
/// ```
/// use wanacl_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use wanacl_sim::time::SimDuration;
///
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_millis(), 2_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far"
    /// sentinel for run deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the run (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// (saturating), mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span; used as an "effectively forever"
    /// expiry sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "duration must be finite and non-negative");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The span in raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by a non-negative scale factor, saturating.
    ///
    /// Used by the drift-clock math (`te = b * Te`).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0 && !factor.is_nan(), "scale factor must be non-negative");
        let scaled = self.0 as f64 * factor;
        if scaled >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(scaled.round() as u64)
        }
    }

    /// Divides the span by a positive factor, saturating.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    pub fn div_f64(self, factor: f64) -> SimDuration {
        assert!(factor > 0.0, "divisor must be strictly positive");
        self.mul_f64(1.0 / factor)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_nanos(1_000_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_micros(1_000), SimDuration::from_millis(1));
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 3_250);
    }

    #[test]
    fn time_subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(5);
        assert_eq!(b - a, SimDuration::from_secs(4));
        assert_eq!(a - b, SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn div_f64_is_inverse_of_mul() {
        let d = SimDuration::from_secs(9);
        assert_eq!(d.div_f64(3.0), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn div_f64_rejects_zero() {
        let _ = SimDuration::from_secs(1).div_f64(0.0);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SimTime::from_secs(1)).is_empty());
        assert!(!format!("{}", SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_nanos(1)), None);
        assert!(SimTime::ZERO.checked_add(SimDuration::MAX).is_some());
        assert_eq!(SimDuration::MAX.checked_add(SimDuration::from_nanos(1)), None);
    }

    #[test]
    fn ordering_follows_timeline() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
