//! Determinism properties of the indexed event queue and the workload
//! generators.
//!
//! The calendar queue replaced the global `BinaryHeap` on the simulator
//! hot path; these tests pin the contract that made that swap safe:
//! for any seed, a world stepped on the calendar scheduler produces a
//! **byte-identical** trace to the same world on the naive heap, and
//! every workload generator yields a fixed sequence for a fixed seed no
//! matter which thread runs it.

use wanacl_sim::clock::ClockSpec;
use wanacl_sim::net::WanNet;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::queue::Scheduler;
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::workload::{arrivals, LoadCurve, RegionalTopology, ZipfPopularity};
use wanacl_sim::world::World;

/// A chatty node that exercises every event kind: timers reschedule
/// themselves, messages fan out to random peers, replies bounce back,
/// and the driver layers crashes/recoveries on top.
struct Gossip {
    peers: Vec<NodeId>,
    rounds: u32,
}

impl Node for Gossip {
    type Msg = u64;

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
        ctx.set_timer(SimDuration::from_millis(5), 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, u64>, tag: u64) {
        if self.rounds == 0 {
            return;
        }
        self.rounds -= 1;
        let n = self.peers.len() as u64;
        let peer = self.peers[ctx.rng().range(0, n - 1) as usize];
        ctx.send(peer, tag + 1);
        ctx.trace(format!("gossip round tag={tag}"));
        ctx.set_timer(SimDuration::from_millis(7 + (tag % 5)), tag + 1);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, u64>, from: NodeId, msg: u64) {
        // Bounce every third message back so simultaneous deliveries and
        // FIFO tie-breaking actually occur.
        if msg.is_multiple_of(3) {
            ctx.send(from, msg + 1);
        }
        ctx.trace(format!("got {msg}"));
    }
}

fn gossip_trace(seed: u64, scheduler: Scheduler) -> String {
    let mut world: World<u64> = World::with_scheduler(seed, scheduler);
    world.enable_trace();
    world.set_net(Box::new(
        WanNet::builder()
            .uniform_delay(SimDuration::from_millis(3), SimDuration::from_millis(40))
            .build(),
    ));
    let ids: Vec<NodeId> = (0..6).map(NodeId::from_index).collect();
    for (i, &id) in ids.iter().enumerate() {
        let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
        let got = world.add_node(
            format!("g{i}"),
            Box::new(Gossip { peers, rounds: 40 }),
            ClockSpec::RandomRate { min_rate: 0.999 },
        );
        assert_eq!(got, id);
    }
    world.schedule_crash(SimTime::ZERO + SimDuration::from_millis(120), ids[1]);
    world.schedule_recover(SimTime::ZERO + SimDuration::from_millis(310), ids[1]);
    world.run_until(SimTime::ZERO + SimDuration::from_secs(2));
    world.trace().to_text()
}

#[test]
fn calendar_trace_is_byte_identical_to_heap() {
    for seed in 0..10u64 {
        let cal = gossip_trace(seed, Scheduler::Calendar);
        let heap = gossip_trace(seed, Scheduler::NaiveHeap);
        assert!(!cal.is_empty(), "seed {seed} produced an empty trace");
        assert_eq!(cal, heap, "seed {seed}: calendar and heap traces diverge");
    }
}

#[test]
fn calendar_trace_is_stable_across_runs() {
    for seed in [3u64, 17, 4242] {
        assert_eq!(
            gossip_trace(seed, Scheduler::Calendar),
            gossip_trace(seed, Scheduler::Calendar),
            "seed {seed}: re-running the same world changed the trace"
        );
    }
}

fn zipf_sequence(seed: u64, n: usize) -> Vec<usize> {
    let pop = ZipfPopularity::new(1_000, 1.1);
    let mut rng = SimRng::seed_from(seed);
    (0..n).map(|_| pop.sample_user(&mut rng)).collect()
}

fn arrival_sequence(seed: u64) -> Vec<SimTime> {
    let curve = LoadCurve::constant(50.0)
        .diurnal(0.6, SimDuration::from_secs(600))
        .flash_crowd(
            SimTime::ZERO + SimDuration::from_secs(100),
            SimDuration::from_secs(30),
            4.0,
        );
    let mut rng = SimRng::seed_from(seed);
    arrivals(&curve, SimTime::ZERO, SimTime::ZERO + SimDuration::from_secs(300), &mut rng)
}

fn delay_sequence(seed: u64, n: usize) -> Vec<SimDuration> {
    use wanacl_sim::net::delay::DelayModel;
    let mut topo = RegionalTopology::planet().jitter(0.15);
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            topo.sample(NodeId::from_index(i % 7), NodeId::from_index((i * 3 + 1) % 11), &mut rng)
        })
        .collect()
}

#[test]
fn workload_generators_are_seed_deterministic() {
    assert_eq!(zipf_sequence(9, 500), zipf_sequence(9, 500));
    assert_ne!(zipf_sequence(9, 500), zipf_sequence(10, 500));

    let a = arrival_sequence(5);
    assert!(a.len() > 1_000, "expected a dense arrival schedule, got {}", a.len());
    assert_eq!(a, arrival_sequence(5));
    assert_ne!(a, arrival_sequence(6));

    assert_eq!(delay_sequence(2, 200), delay_sequence(2, 200));
}

#[test]
fn workload_generators_are_thread_stable() {
    // Generators draw only from the SimRng they are handed, so the same
    // seed must yield the same sequence from any thread (`--jobs N`
    // sweeps rely on this).
    let here = (zipf_sequence(77, 300), arrival_sequence(77), delay_sequence(77, 100));
    let there = std::thread::spawn(|| {
        (zipf_sequence(77, 300), arrival_sequence(77), delay_sequence(77, 100))
    })
    .join()
    .expect("worker thread");
    assert_eq!(here, there);
}

#[test]
fn schedulers_agree_under_far_future_and_rebase_pressure() {
    // Push the calendar through its overflow/rebase machinery: inject
    // events far beyond the bucket window, interleaved with near-term
    // chatter, and require heap parity on the resulting trace.
    for seed in 0..5u64 {
        let run = |scheduler| {
            let mut world: World<u64> = World::with_scheduler(seed, scheduler);
            world.enable_trace();
            let ids: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
            for (i, &id) in ids.iter().enumerate() {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
                let got = world.add_node(
                    format!("n{i}"),
                    Box::new(Gossip { peers, rounds: 10 }),
                    ClockSpec::Perfect,
                );
                assert_eq!(got, id);
            }
            // Far beyond one calendar window (~4.3s): these live in the
            // overflow heap and drain through a rebase.
            for k in 0..50u64 {
                let at = SimTime::ZERO + SimDuration::from_secs(20 + k * 7);
                world.inject(at, ids[(k % 3) as usize], k);
            }
            world.run_until(SimTime::ZERO + SimDuration::from_secs(400));
            world.trace().to_text()
        };
        assert_eq!(
            run(Scheduler::Calendar),
            run(Scheduler::NaiveHeap),
            "seed {seed}: overflow/rebase path diverged from heap order"
        );
    }
}
