//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The access-control protocol assumes an authentication substrate (§2.1
//! of the paper cites RSA). This module provides the hash that substrate
//! is built on. It is a straightforward, well-tested implementation — not
//! hardened against side channels, which is irrelevant inside a simulator.

/// Initial hash values: first 32 bits of the fractional parts of the
/// square roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// # Examples
///
/// ```
/// use wanacl_auth::sha256::Digest;
///
/// let d = Digest::of(b"abc");
/// assert!(d.to_hex().starts_with("ba7816bf"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Hashes `data` in one shot.
    pub fn of(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finish()
    }

    /// The digest as raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// The first 8 bytes of the digest as a big-endian integer; used by
    /// the toy RSA layer to map messages into the modulus group.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use wanacl_auth::sha256::{Digest, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finish(), Digest::of(b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buffer: [0; 64], buffer_len: 0, total_len: 0 }
    }

    /// Absorbs more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finalizes and returns the digest, consuming the hasher.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit length.
        let rem = (self.buffer_len + 1) % 64;
        let zeros = if rem <= 56 { 56 - rem } else { 120 - rem };
        let mut pad = Vec::with_capacity(1 + zeros + 8);
        pad.push(0x80);
        pad.resize(1 + zeros, 0);
        pad.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&pad);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_empty_string() {
        assert_eq!(
            Digest::of(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_abc() {
        assert_eq!(
            Digest::of(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_two_block_message() {
        assert_eq!(
            Digest::of(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            Digest::of(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0u32..1_000).map(|i| (i % 251) as u8).collect();
        for chunk in [1usize, 3, 63, 64, 65, 127, 500] {
            let mut h = Sha256::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finish(), Digest::of(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Exercise padding around the 55/56/64-byte boundaries.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xAB; len];
            let mut h = Sha256::new();
            h.update(&data);
            let one = h.finish();
            let mut h2 = Sha256::new();
            let mid = len / 2;
            h2.update(&data[..mid]);
            h2.update(&data[mid..]);
            assert_eq!(one, h2.finish(), "len {len}");
        }
    }

    #[test]
    fn digest_prefix_u64_is_big_endian() {
        let d = Digest([
            0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
        ]);
        assert_eq!(d.prefix_u64(), 0x0102030405060708);
    }

    #[test]
    fn display_is_hex() {
        let d = Digest::of(b"abc");
        assert_eq!(d.to_string(), d.to_hex());
        assert_eq!(d.to_hex().len(), 64);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Digest::of(b"a"), Digest::of(b"b"));
        assert_ne!(Digest::of(b""), Digest::of(b"\0"));
    }
}
