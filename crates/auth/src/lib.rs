//! # wanacl-auth — authentication substrate
//!
//! The paper (§2.1) *assumes* an authentication method "such as the RSA
//! algorithm" exists so that a message claiming to come from user `U`
//! really did. This crate builds that substrate from scratch:
//!
//! * [`sha256`] — SHA-256 (FIPS 180-4), validated against FIPS vectors,
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), validated against RFC 4231,
//! * [`rsa`] — textbook RSA signatures over 64-bit moduli (toy key sizes;
//!   same code path as the real thing — see DESIGN.md, substitutions),
//! * [`signed`] — [`signed::Signed`] envelopes and the
//!   [`signed::KeyRegistry`] the access-control layer checks against.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use wanacl_auth::prelude::*;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut registry = KeyRegistry::new();
//! let user = PrincipalId(7);
//! let keys = registry.enroll(user, &mut rng);
//!
//! let request = Signed::seal("Invoke(stock-quotes)".to_string(), user, &keys.secret);
//! assert!(request.verify(&registry));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod hmac;
pub mod rsa;
pub mod sha256;
pub mod signed;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::hmac::{hmac_sha256, Tag};
    pub use crate::rsa::{KeyPair, PublicKey, SecretKey, Signature};
    pub use crate::sha256::{Digest, Sha256};
    pub use crate::signed::{AuthEncode, KeyRegistry, PrincipalId, Signed};
}
