//! Textbook RSA over 64-bit moduli — the paper's assumed public-key
//! authentication (\[22\] in its bibliography), in toy form.
//!
//! **This is not cryptographically secure.** The protocol under study only
//! needs the *interface* of a signature scheme (a message from user `U`
//! verifies against `U`'s public key); a 64-bit modulus exercises exactly
//! the same sign/verify code path at simulation-friendly cost. DESIGN.md
//! records this substitution.

use crate::sha256::Digest;
use rand::Rng;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Public exponent.
    pub e: u64,
}

/// An RSA secret key `(n, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecretKey {
    /// Modulus `n = p·q`.
    pub n: u64,
    /// Private exponent.
    pub d: u64,
}

/// A signature over a message digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

/// A public/secret key pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyPair {
    /// The shareable half.
    pub public: PublicKey,
    /// The private half.
    pub secret: SecretKey,
}

impl KeyPair {
    /// Generates a key pair from the given RNG (deterministic under a
    /// seeded RNG, as everything in the simulator must be).
    pub fn generate<R: Rng>(rng: &mut R) -> KeyPair {
        loop {
            let p = random_prime(rng);
            let q = random_prime(rng);
            if p == q {
                continue;
            }
            let n = (p as u64) * (q as u64);
            let phi = (p as u64 - 1) * (q as u64 - 1);
            let e = 65_537u64;
            if gcd(e, phi) != 1 {
                continue;
            }
            let d = match mod_inverse(e, phi) {
                Some(d) => d,
                None => continue,
            };
            return KeyPair { public: PublicKey { n, e }, secret: SecretKey { n, d } };
        }
    }

    /// Signs a message (hash-then-sign: `SHA-256(msg) mod n`, raised to
    /// `d`).
    pub fn sign(&self, message: &[u8]) -> Signature {
        sign(&self.secret, message)
    }
}

/// Signs `message` with `key`.
pub fn sign(key: &SecretKey, message: &[u8]) -> Signature {
    let m = Digest::of(message).prefix_u64() % key.n;
    Signature(mod_pow(m, key.d, key.n))
}

/// Verifies `sig` over `message` against `key`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wanacl_auth::rsa::{verify, KeyPair};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(&mut rng);
/// let sig = kp.sign(b"grant access");
/// assert!(verify(&kp.public, b"grant access", &sig));
/// assert!(!verify(&kp.public, b"grant more access", &sig));
/// ```
pub fn verify(key: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    let m = Digest::of(message).prefix_u64() % key.n;
    mod_pow(sig.0, key.e, key.n) == m
}

/// Modular exponentiation by squaring, `base^exp mod modulus`.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn mod_pow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus != 0, "modulus must be non-zero");
    if modulus == 1 {
        return 0;
    }
    let m = modulus as u128;
    let mut result: u128 = 1;
    let mut b = (base % modulus) as u128;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    base = result as u64;
    base
}

/// Greatest common divisor.
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `m` via the extended Euclidean
/// algorithm; `None` when `gcd(a, m) != 1`.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (mut old_r, mut r) = (a as i128, m as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let mut inv = old_s % m as i128;
    if inv < 0 {
        inv += m as i128;
    }
    Some(inv as u64)
}

/// Deterministic Miller–Rabin, exact for all `u64` inputs with this
/// witness set.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Draws a random 32-bit prime (so `p·q` fits in `u64`).
fn random_prime<R: Rng>(rng: &mut R) -> u32 {
    loop {
        // Top two bits set keeps the product comfortably large.
        let candidate: u32 = rng.gen::<u32>() | 0xc000_0001;
        if is_prime(candidate as u64) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_pow_small_cases() {
        assert_eq!(mod_pow(2, 10, 1_000), 24);
        assert_eq!(mod_pow(3, 0, 7), 1);
        assert_eq!(mod_pow(0, 5, 7), 0);
        assert_eq!(mod_pow(5, 3, 1), 0);
        // Fermat: a^(p-1) = 1 mod p.
        assert_eq!(mod_pow(2, 12, 13), 1);
    }

    #[test]
    fn mod_pow_large_operands_do_not_overflow() {
        let p = 0xffff_fffb_u64; // large prime-ish operand
        assert_eq!(mod_pow(p - 1, 2, p), 1);
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 9), 9);
        assert_eq!(gcd(9, 0), 9);
    }

    #[test]
    fn mod_inverse_roundtrip() {
        let m = 1_000_000_007u64;
        for a in [2u64, 3, 999, 123_456] {
            let inv = mod_inverse(a, m).expect("prime modulus");
            assert_eq!((a as u128 * inv as u128 % m as u128) as u64, 1);
        }
        assert_eq!(mod_inverse(6, 9), None);
    }

    #[test]
    fn primality_known_values() {
        for p in [2u64, 3, 5, 104_729, 1_000_000_007, 0xffff_ffff_ffff_ffc5] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 104_730, 1_000_000_007 * 3] {
            assert!(!is_prime(c), "{c} is composite");
        }
        // Strong pseudoprime to several bases; MR with our witness set
        // must still reject it.
        assert!(!is_prime(3_215_031_751));
    }

    #[test]
    fn keypair_sign_verify_roundtrip() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let kp = KeyPair::generate(&mut rng);
            let msg = b"Add(stock-quotes, alice, use)";
            let sig = kp.sign(msg);
            assert!(verify(&kp.public, msg, &sig));
            assert!(!verify(&kp.public, b"Add(stock-quotes, mallory, use)", &sig));
        }
    }

    #[test]
    fn signature_does_not_verify_under_other_key() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp1 = KeyPair::generate(&mut rng);
        let kp2 = KeyPair::generate(&mut rng);
        let sig = kp1.sign(b"msg");
        assert!(!verify(&kp2.public, b"msg", &sig));
    }

    #[test]
    fn keygen_is_deterministic_under_seed() {
        let kp1 = KeyPair::generate(&mut StdRng::seed_from_u64(99));
        let kp2 = KeyPair::generate(&mut StdRng::seed_from_u64(99));
        assert_eq!(kp1.public, kp2.public);
    }

    #[test]
    fn encryption_identity_holds() {
        // m^(ed) = m mod n for m coprime to n.
        let kp = KeyPair::generate(&mut StdRng::seed_from_u64(3));
        for m in [2u64, 12_345, 999_999_937] {
            let c = mod_pow(m, kp.public.e, kp.public.n);
            let back = mod_pow(c, kp.secret.d, kp.secret.n);
            assert_eq!(back, m % kp.public.n);
        }
    }
}
