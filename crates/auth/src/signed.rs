//! Signed message envelopes and the principal key registry.
//!
//! §2.1: "we assume that … an authentication method is available to ensure
//! that a message sent by a user U has indeed been sent by this user".
//! [`Signed`] is that method's interface: a payload plus the signer's id
//! and an RSA signature over the payload's canonical bytes, checked
//! against a [`KeyRegistry`].

use std::collections::BTreeMap;

use crate::rsa::{self, KeyPair, PublicKey, SecretKey, Signature};

/// Identifies a principal (user, manager, or host) in the auth domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrincipalId(pub u64);

impl std::fmt::Display for PrincipalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Canonical byte encoding for signing.
///
/// Implementations must be injective for values that should be
/// distinguishable: two different payloads must encode to different byte
/// strings, or signatures could be replayed across meanings.
pub trait AuthEncode {
    /// Appends the canonical encoding of `self` to `out`.
    fn auth_encode(&self, out: &mut Vec<u8>);

    /// The canonical encoding as a fresh buffer.
    fn auth_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.auth_encode(&mut out);
        out
    }
}

impl AuthEncode for u64 {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_be_bytes());
    }
}

impl AuthEncode for &str {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_be_bytes());
        out.extend_from_slice(self.as_bytes());
    }
}

impl AuthEncode for String {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        self.as_str().auth_encode(out);
    }
}

impl<T: AuthEncode> AuthEncode for Vec<T> {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len() as u64).to_be_bytes());
        for item in self {
            item.auth_encode(out);
        }
    }
}

/// A payload carrying a verifiable claim of who produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signed<T> {
    /// The signed payload.
    pub payload: T,
    /// Who claims to have signed it.
    pub signer: PrincipalId,
    /// RSA signature over `signer || payload` canonical bytes.
    pub signature: Signature,
}

impl<T: AuthEncode> Signed<T> {
    /// Signs `payload` as `signer` using `key`.
    pub fn seal(payload: T, signer: PrincipalId, key: &SecretKey) -> Signed<T> {
        let bytes = signing_bytes(&payload, signer);
        Signed { payload, signer, signature: rsa::sign(key, &bytes) }
    }

    /// Verifies the envelope against the registry.
    ///
    /// Returns `false` when the signer is unknown or the signature does
    /// not check out.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        match registry.public_key(self.signer) {
            Some(pk) => {
                let bytes = signing_bytes(&self.payload, self.signer);
                rsa::verify(&pk, &bytes, &self.signature)
            }
            None => false,
        }
    }
}

fn signing_bytes<T: AuthEncode>(payload: &T, signer: PrincipalId) -> Vec<u8> {
    let mut bytes = Vec::new();
    signer.0.auth_encode(&mut bytes);
    payload.auth_encode(&mut bytes);
    bytes
}

/// Signs pre-encoded canonical bytes as `signer` — the detached
/// counterpart of [`Signed::seal`] for records that carry their
/// signature inline (e.g. directory records replicated by value) rather
/// than inside an envelope. The signer id is prepended exactly as
/// `seal` does, so detached and enveloped signatures share the same
/// mis-attribution resistance.
pub fn sign_bytes(signer: PrincipalId, bytes: &[u8], key: &SecretKey) -> Signature {
    let mut buf = Vec::with_capacity(8 + bytes.len());
    signer.0.auth_encode(&mut buf);
    buf.extend_from_slice(bytes);
    rsa::sign(key, &buf)
}

/// Verifies a detached signature produced by [`sign_bytes`] against the
/// registry. Returns `false` for unknown signers, tampered bytes, or
/// signatures attributed to the wrong principal.
pub fn verify_bytes(
    registry: &KeyRegistry,
    signer: PrincipalId,
    bytes: &[u8],
    sig: &Signature,
) -> bool {
    match registry.public_key(signer) {
        Some(pk) => {
            let mut buf = Vec::with_capacity(8 + bytes.len());
            signer.0.auth_encode(&mut buf);
            buf.extend_from_slice(bytes);
            rsa::verify(&pk, &buf, sig)
        }
        None => false,
    }
}

/// Maps principals to their public keys.
///
/// In the paper's deployment this would be distributed via the trusted
/// name service; here it is a plain map shared by construction.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use wanacl_auth::rsa::KeyPair;
/// use wanacl_auth::signed::{KeyRegistry, PrincipalId, Signed};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let alice = PrincipalId(1);
/// let kp = KeyPair::generate(&mut rng);
/// let mut registry = KeyRegistry::new();
/// registry.register(alice, kp.public);
///
/// let msg = Signed::seal("invoke".to_string(), alice, &kp.secret);
/// assert!(msg.verify(&registry));
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    keys: BTreeMap<PrincipalId, PublicKey>,
}

impl KeyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a principal's public key.
    pub fn register(&mut self, id: PrincipalId, key: PublicKey) {
        self.keys.insert(id, key);
    }

    /// Removes a principal (e.g. a compromised identity).
    pub fn remove(&mut self, id: PrincipalId) -> Option<PublicKey> {
        self.keys.remove(&id)
    }

    /// Looks up a principal's public key.
    pub fn public_key(&self, id: PrincipalId) -> Option<PublicKey> {
        self.keys.get(&id).copied()
    }

    /// Number of registered principals.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Convenience: generates a key pair with `rng`, registers the public
    /// half, and returns the pair.
    pub fn enroll<R: rand::Rng>(&mut self, id: PrincipalId, rng: &mut R) -> KeyPair {
        let kp = KeyPair::generate(rng);
        self.register(id, kp.public);
        kp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (KeyRegistry, KeyPair, PrincipalId) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut reg = KeyRegistry::new();
        let id = PrincipalId(42);
        let kp = reg.enroll(id, &mut rng);
        (reg, kp, id)
    }

    #[test]
    fn seal_verify_roundtrip() {
        let (reg, kp, id) = setup();
        let s = Signed::seal("hello".to_string(), id, &kp.secret);
        assert!(s.verify(&reg));
    }

    #[test]
    fn tampered_payload_fails() {
        let (reg, kp, id) = setup();
        let mut s = Signed::seal("hello".to_string(), id, &kp.secret);
        s.payload = "hacked".to_string();
        assert!(!s.verify(&reg));
    }

    #[test]
    fn unknown_signer_fails() {
        let (reg, kp, _) = setup();
        let s = Signed::seal("hello".to_string(), PrincipalId(999), &kp.secret);
        assert!(!s.verify(&reg));
    }

    #[test]
    fn impersonation_fails() {
        // Mallory signs with her key but claims to be Alice.
        let mut rng = StdRng::seed_from_u64(12);
        let mut reg = KeyRegistry::new();
        let alice = PrincipalId(1);
        let mallory = PrincipalId(2);
        let _alice_kp = reg.enroll(alice, &mut rng);
        let mallory_kp = reg.enroll(mallory, &mut rng);
        let s = Signed::seal("pay mallory".to_string(), alice, &mallory_kp.secret);
        assert!(!s.verify(&reg));
    }

    #[test]
    fn removed_principal_no_longer_verifies() {
        let (mut reg, kp, id) = setup();
        let s = Signed::seal("hello".to_string(), id, &kp.secret);
        assert!(reg.remove(id).is_some());
        assert!(!s.verify(&reg));
        assert!(reg.is_empty());
    }

    #[test]
    fn signer_is_bound_into_signature() {
        // The same payload signed by the same key but attributed to a
        // different principal must not verify even if that principal has
        // the same public key (id is part of the signed bytes).
        let mut rng = StdRng::seed_from_u64(13);
        let mut reg = KeyRegistry::new();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let kp = KeyPair::generate(&mut rng);
        reg.register(a, kp.public);
        reg.register(b, kp.public);
        let s = Signed::seal(7u64, a, &kp.secret);
        let forged = Signed { payload: 7u64, signer: b, signature: s.signature };
        assert!(s.verify(&reg));
        assert!(!forged.verify(&reg));
    }

    #[test]
    fn auth_encode_is_length_prefixed() {
        // "ab" + "c" must differ from "a" + "bc".
        let mut v1 = Vec::new();
        "ab".auth_encode(&mut v1);
        "c".auth_encode(&mut v1);
        let mut v2 = Vec::new();
        "a".auth_encode(&mut v2);
        "bc".auth_encode(&mut v2);
        assert_ne!(v1, v2);
    }

    #[test]
    fn vec_encoding_includes_length() {
        let a: Vec<u64> = vec![1, 2];
        let b: Vec<u64> = vec![1, 2, 0];
        assert_ne!(a.auth_bytes(), b.auth_bytes());
    }

    #[test]
    fn registry_len_tracks_enrollment() {
        let (reg, _, _) = setup();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn detached_sign_verify_roundtrip() {
        let (reg, kp, id) = setup();
        let sig = sign_bytes(id, b"record-bytes", &kp.secret);
        assert!(verify_bytes(&reg, id, b"record-bytes", &sig));
        assert!(!verify_bytes(&reg, id, b"record-bytez", &sig), "tampered bytes");
        assert!(!verify_bytes(&reg, PrincipalId(999), b"record-bytes", &sig), "unknown signer");
    }

    #[test]
    fn detached_signature_binds_the_signer() {
        // Same key registered under two ids: a signature made as `a`
        // must not verify when attributed to `b`.
        let mut rng = StdRng::seed_from_u64(14);
        let mut reg = KeyRegistry::new();
        let a = PrincipalId(1);
        let b = PrincipalId(2);
        let kp = KeyPair::generate(&mut rng);
        reg.register(a, kp.public);
        reg.register(b, kp.public);
        let sig = sign_bytes(a, b"payload", &kp.secret);
        assert!(verify_bytes(&reg, a, b"payload", &sig));
        assert!(!verify_bytes(&reg, b, b"payload", &sig));
    }

    #[test]
    fn detached_and_enveloped_signatures_agree() {
        // sign_bytes over a payload's canonical bytes must produce the
        // same signature Signed::seal embeds — one signing discipline,
        // two carriers.
        let (reg, kp, id) = setup();
        let payload = 99u64;
        let enveloped = Signed::seal(payload, id, &kp.secret);
        let detached = sign_bytes(id, &payload.auth_bytes(), &kp.secret);
        assert_eq!(enveloped.signature, detached);
        assert!(verify_bytes(&reg, id, &payload.auth_bytes(), &detached));
    }
}
