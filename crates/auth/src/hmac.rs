//! HMAC-SHA-256 (RFC 2104), for symmetric message authentication.
//!
//! Used by the simulated deployment where a host and a manager share a
//! session key; the protocol only requires *some* authentication method
//! (§2.1), and HMAC exercises the cheap symmetric path while RSA (see
//! [`crate::rsa`]) exercises the public-key path.

use crate::sha256::{Digest, Sha256};

const BLOCK_LEN: usize = 64;

/// A 32-byte HMAC-SHA-256 tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(pub [u8; 32]);

impl Tag {
    /// Lowercase hex rendering.
    pub fn to_hex(&self) -> String {
        Digest(self.0).to_hex()
    }
}

impl std::fmt::Display for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block are hashed first, per RFC 2104.
///
/// # Examples
///
/// ```
/// use wanacl_auth::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag, hmac_sha256(b"key", b"message"));
/// assert_ne!(tag, hmac_sha256(b"other", b"message"));
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Tag {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        key_block[..32].copy_from_slice(Digest::of(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finish();
    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    Tag(outer.finish().0)
}

/// Constant-time-ish tag comparison (full scan regardless of mismatch).
pub fn verify(key: &[u8], message: &[u8], tag: &Tag) -> bool {
    let expected = hmac_sha256(key, message);
    let mut diff = 0u8;
    for (a, b) in expected.0.iter().zip(tag.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_long_key() {
        // Case 6: 131-byte key forces the hash-the-key path.
        let key = [0xaau8; 131];
        let tag = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify(b"k", b"m", &tag));
        assert!(!verify(b"k", b"m2", &tag));
        assert!(!verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!verify(b"k", b"m", &bad));
    }

    #[test]
    fn empty_inputs_work() {
        let t1 = hmac_sha256(b"", b"");
        let t2 = hmac_sha256(b"", b"");
        assert_eq!(t1, t2);
        assert!(verify(b"", b"", &t1));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(hmac_sha256(b"a", b"b").to_string().len(), 64);
    }
}
