//! End-to-end protocol scenarios (experiment E4/E5 of DESIGN.md):
//! behavioural reproduction of Figures 2–4 and Sections 3.2–3.4.

use wanacl_core::prelude::*;
use wanacl_sim::clock::ClockSpec;
use wanacl_sim::net::partition::ScheduledPartitions;
use wanacl_sim::net::WanNet;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::{SimDuration, SimTime};

fn n(i: usize) -> NodeId {
    NodeId::from_index(i)
}

fn fast_policy(c: usize) -> Policy {
    Policy::builder(c)
        .revocation_bound(SimDuration::from_secs(30))
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_secs(5))
        .build()
}

#[test]
fn granted_user_is_allowed_and_cached() {
    let mut d = Scenario::builder(1)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(2))
        .all_users_granted()
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    let host = d.host(0);
    assert_eq!(host.stats().cache_misses, 1);
    assert_eq!(host.stats().allowed, 1);
    assert_eq!(host.cached_entries(d.app), 1);

    // Second invoke hits the cache: no new queries.
    let queries_before = d.host(0).stats().queries_sent;
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    let host = d.host(0);
    assert_eq!(host.stats().cache_hits, 1);
    assert_eq!(host.stats().allowed, 2);
    assert_eq!(host.stats().queries_sent, queries_before);
    assert_eq!(d.user_agent(0).stats().allowed, 2);
}

#[test]
fn unauthorized_user_is_denied() {
    let mut d = Scenario::builder(2)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(2))
        // No initial rights.
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().denied, 1);
    assert_eq!(d.user_agent(0).stats().allowed, 0);
    assert_eq!(d.host(0).cached_entries(d.app), 0);
}

#[test]
fn dynamic_grant_takes_effect_after_dissemination() {
    let mut d = Scenario::builder(3)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(3)) // C = M: every manager must agree
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().denied, 1);

    d.grant(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    // Update quorum for C=3 is M-C+1 = 1, but with C=3 every manager must
    // grant; dissemination must have reached all three by now.
    assert_eq!(d.admin_agent().stable_count(), 1);
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
}

#[test]
fn revocation_flushes_host_caches() {
    let mut d = Scenario::builder(4)
        .managers(2)
        .hosts(2)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .build();
    d.run_for(SimDuration::from_secs(1));
    // Prime both hosts' caches.
    for _ in 0..2 {
        d.invoke_from(0);
        d.run_for(SimDuration::from_secs(1));
    }
    // The user agent picks hosts randomly; make sure at least one host
    // cached the right.
    let cached: usize = (0..2).map(|i| d.host(i).cached_entries(d.app)).sum();
    assert!(cached >= 1);

    d.revoke(UserId(1), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    let cached_after: usize = (0..2).map(|i| d.host(i).cached_entries(d.app)).sum();
    assert_eq!(cached_after, 0, "RevokeNotice must flush caches");

    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().denied, 1);
}

/// Invariant I1: with the host partitioned away from every manager, a
/// revoked right survives only until its cache entry expires — never past
/// `Te` after the revoke stabilized.
#[test]
fn revocation_is_time_bounded_under_partition() {
    // Layout: managers 0..2, host 2, user 3, admin 4.
    let te = SimDuration::from_secs(20);
    let policy = Policy::builder(1)
        .revocation_bound(te)
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(2)
        .cache_sweep_interval(SimDuration::from_secs(2))
        .build();
    // Cut host <-> managers from t=5s onwards, far beyond the horizon.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0), n(1)],
        vec![n(2)],
        SimTime::from_secs(5),
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(5)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();

    // Grant gets cached at ~t=1s; cache entry dies by t=1s+te=21s.
    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // Partition starts at 5 s; revoke at 6 s. It stabilizes immediately
    // at the issuing manager's quorum (uq = M - C + 1 = 2... with C=1,
    // uq=2: needs the peer, which is still reachable — managers are not
    // cut from each other).
    d.run_until(SimTime::from_secs(6));
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::from_secs(8));
    assert_eq!(d.admin_agent().stable_count(), 1, "revoke must reach update quorum");

    // While the cache entry lives, the host (cut off from managers and
    // from the RevokeNotice) still serves the user: the availability
    // side of the tradeoff.
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(10));
    assert_eq!(d.user_agent(0).stats().allowed, 2, "cached right still valid");

    // After the entry expires (t = 21 s < revoke-stable + Te = 26 s), the
    // host can no longer check with any manager: access dies.
    d.run_until(SimTime::from_secs(22));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(25));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.allowed, 2, "no access after expiry");
    assert_eq!(stats.unavailable, 1);
    // The guarantee: nothing was allowed after revoke-stable + Te.
    assert!(d.world.now() <= SimTime::from_secs(26) || stats.allowed == 2);
}

/// Invariant I4: a slow (rate = b) host clock still respects the
/// real-time bound, because managers hand out te = b·Te.
#[test]
fn expiry_respects_clock_drift() {
    let te_real = SimDuration::from_secs(20);
    let b = 0.8;
    let policy = Policy::builder(1)
        .revocation_bound(te_real)
        .clock_rate_bound(b)
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(1)
        .cache_sweep_interval(SimDuration::from_secs(100)) // no sweeping: lookups expire entries
        .build();
    // Host cut from managers right after the initial grant.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1)],
        SimTime::from_secs(3),
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(6)
        .managers(1)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .host_clock(ClockSpec::Fixed { rate: b, offset: SimDuration::ZERO })
        .net(Box::new(net))
        .build();

    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0); // grant cached; limit = local(t~1s) + b*Te
    d.run_until(SimTime::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // The entry was anchored at ~1 s; with the slow clock it lives until
    // 1 + (b*Te)/b = 1 + Te = 21 s of real time. At 19 s it is alive:
    d.run_until(SimTime::from_secs(19));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(20));
    assert_eq!(d.user_agent(0).stats().allowed, 2);

    // Past 21 s real time it must be dead even on the slow clock.
    d.run_until(SimTime::from_secs(22));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(24));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.allowed, 2, "entry must have expired by Te real time after grant");
    assert_eq!(stats.unavailable, 1);
}

#[test]
fn check_quorum_blocks_when_too_few_managers_reachable() {
    // Managers 0,1,2; host 3. Cut managers 1,2 from the host: only one
    // manager reachable.
    let cut = ScheduledPartitions::cut_between(
        vec![n(1), n(2)],
        vec![n(3)],
        SimTime::ZERO,
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();

    // C = 2 cannot be met.
    let mut d = Scenario::builder(7)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(2))
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(5));
    assert_eq!(d.user_agent(0).stats().unavailable, 1);
    assert_eq!(d.user_agent(0).stats().allowed, 0);

    // Same partition, C = 1: the one reachable manager suffices.
    let cut = ScheduledPartitions::cut_between(
        vec![n(1), n(2)],
        vec![n(3)],
        SimTime::ZERO,
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(8)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(5));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
}

/// Figure 4: after R failed attempts a fail-open application allows the
/// access; a fail-closed one rejects it.
#[test]
fn exhaustion_policy_fail_open_vs_closed() {
    let run = |behavior: ExhaustionBehavior, seed: u64| -> UserStats {
        let policy = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(30))
            .query_timeout(SimDuration::from_millis(100))
            .max_attempts(3)
            .exhaustion(behavior)
            .build();
        // Host 1 permanently cut from the single manager 0.
        let cut = ScheduledPartitions::cut_between(
            vec![n(0)],
            vec![n(1)],
            SimTime::ZERO,
            SimTime::from_secs(10_000),
        );
        let net = WanNet::builder()
            .constant_delay(SimDuration::from_millis(10))
            .partitions(Box::new(cut))
            .build();
        let mut d = Scenario::builder(seed)
            .managers(1)
            .hosts(1)
            .users(1)
            .policy(policy)
            .all_users_granted()
            .net(Box::new(net))
            .build();
        d.run_for(SimDuration::from_secs(1));
        d.invoke_from(0);
        d.run_for(SimDuration::from_secs(10));
        d.user_agent(0).stats()
    };

    let open = run(ExhaustionBehavior::FailOpen, 9);
    assert_eq!(open.allowed, 1, "fail-open must allow after R attempts");
    let closed = run(ExhaustionBehavior::FailClosed, 10);
    assert_eq!(closed.allowed, 0);
    assert_eq!(closed.unavailable, 1);
}

/// Fail-open grants are not cached: every request re-runs the R attempts.
#[test]
fn fail_open_does_not_cache() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(100))
        .max_attempts(2)
        .exhaustion(ExhaustionBehavior::FailOpen)
        .build();
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1)],
        SimTime::ZERO,
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(10))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(11)
        .managers(1)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(5));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(5));
    let host = d.host(0);
    assert_eq!(host.stats().fail_open_allows, 2);
    assert_eq!(host.cached_entries(d.app), 0, "fail-open must not populate the cache");
}

/// §3.3 freeze strategy: a manager that loses contact with a peer for
/// longer than Ti stops answering checks; it resumes when connectivity
/// returns.
#[test]
fn freeze_strategy_stops_grants_during_manager_partition() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(60))
        .clock_rate_bound(0.5) // te = 30 s
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(1)
        .freeze(FreezePolicy {
            ti: SimDuration::from_secs(10),
            heartbeat_interval: SimDuration::from_secs(1),
        })
        .build();
    // Managers 0 and 1 cut from each other between t=5 and t=40. The
    // host (2) stays connected to both.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1)],
        SimTime::from_secs(5),
        SimTime::from_secs(40),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(12)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();

    // Before the partition: fine.
    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(3));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // Inside the partition, past Ti (freeze scales Ti by b, so it trips
    // within 5 s of local silence): both managers freeze. The cached
    // entry at the host is still valid (te = 30 s), so cached access
    // continues — but a *new* user check must fail.
    d.run_until(SimTime::from_secs(25));
    assert!(d.manager(0).is_frozen(d.app), "manager 0 must freeze");
    assert!(d.manager(1).is_frozen(d.app), "manager 1 must freeze");

    // Partition heals at 40 s; heartbeats resume; unfreeze.
    d.run_until(SimTime::from_secs(45));
    assert!(!d.manager(0).is_frozen(d.app));
    assert!(!d.manager(1).is_frozen(d.app));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(48));
    assert_eq!(d.user_agent(0).stats().allowed, 2);
}

/// §3.4: a crashed manager refuses queries until it has synchronized
/// state from a peer, then serves the post-crash ACL.
#[test]
fn manager_recovery_synchronizes_state() {
    let mut d = Scenario::builder(13)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .build();
    d.run_until(SimTime::from_secs(1));

    // Crash manager 1; then revoke the user's right at manager 0.
    let m1 = d.managers[1];
    d.world.schedule_crash(SimTime::from_secs(2), m1);
    d.run_until(SimTime::from_secs(3));
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::from_secs(4));
    // Update quorum for C=1 is 2: cannot stabilize while m1 is down.
    assert_eq!(d.admin_agent().stable_count(), 0);
    assert_eq!(d.manager(0).pending_updates(), 1);

    // Recover m1: it must sync (learning the revoke) and the pending
    // update must reach its quorum via the retransmission path.
    d.world.schedule_recover(SimTime::from_secs(5), m1);
    d.run_until(SimTime::from_secs(8));
    assert!(!d.manager(1).is_recovering());
    assert!(!d.manager(1).acl_has(d.app, UserId(1), Right::Use), "sync must carry the revoke");
    assert_eq!(d.admin_agent().stable_count(), 1, "retransmission must complete the quorum");

    // And the user is now denied by both managers.
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(10));
    assert_eq!(d.user_agent(0).stats().denied, 1);
}

/// §3.4: host recovery restarts with an empty cache and refills it via
/// the normal check protocol.
#[test]
fn host_recovery_clears_cache() {
    let mut d = Scenario::builder(14)
        .managers(1)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .build();
    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(2));
    assert_eq!(d.host(0).cached_entries(d.app), 1);

    let h = d.hosts[0];
    d.world.schedule_crash(SimTime::from_secs(3), h);
    d.world.schedule_recover(SimTime::from_secs(4), h);
    d.run_until(SimTime::from_secs(5));
    assert_eq!(d.host(0).cached_entries(d.app), 0, "recovered host starts empty");

    d.invoke_from(0);
    d.run_until(SimTime::from_secs(7));
    assert_eq!(d.user_agent(0).stats().allowed, 2);
    assert_eq!(d.host(0).stats().cache_misses, 2, "recovered host re-checks");
}

#[test]
fn name_service_discovery_works() {
    let mut d = Scenario::builder(15)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(2))
        .all_users_granted()
        .with_name_service(SimDuration::from_secs(60))
        .build();
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.host(0).manager_view(d.app).len(), 3, "host must learn managers from NS");
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(3));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
}

#[test]
fn authentication_rejects_forged_invokes() {
    let mut d = Scenario::builder(16)
        .managers(1)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .authenticate()
        .build();
    d.run_for(SimDuration::from_secs(1));

    // The legitimate signed path works.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // A forged (unsigned) invoke straight to the host is rejected before
    // any access-control processing.
    let host = d.hosts[0];
    let now = d.world.now();
    d.world.inject(
        now,
        host,
        ProtoMsg::Invoke {
            app: d.app,
            user: UserId(1),
            req: ReqId(999),
            payload: "forged".into(),
            signature: None,
        },
    );
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.host(0).stats().auth_rejects, 1);
    assert_eq!(d.host(0).stats().allowed, 1, "forged request must not reach the app");
}

#[test]
fn unauthorized_admin_op_is_rejected() {
    let mut d = Scenario::builder(17)
        .managers(2)
        .hosts(1)
        .users(2)
        .policy(fast_policy(1))
        .initial_rights(vec![(UserId(1), Right::Use)])
        .authenticate()
        .build();
    d.run_for(SimDuration::from_secs(1));

    // A rogue op claiming to be from user 2 (no manage right, and not
    // even signed) goes straight to a manager.
    let mgr = d.managers[0];
    let now = d.world.now();
    d.world.inject(
        now,
        mgr,
        ProtoMsg::Admin {
            op: AclOp::Add { app: d.app, user: UserId(2), right: Right::Use },
            req: ReqId(1),
            issuer: UserId(2),
            signature: None,
        },
    );
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.world.metrics().counter("mgr.admin_rejected"), 1);
    assert!(!d.manager(0).acl_has(d.app, UserId(2), Right::Use));

    // The legitimate admin still works.
    d.grant(UserId(2), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    assert!(d.manager(0).acl_has(d.app, UserId(2), Right::Use));
}

/// Figure 3's timeliness rule: grants arriving after the attempt's timer
/// are ignored rather than trusted.
#[test]
fn late_query_replies_are_ignored() {
    // One manager whose replies take 600 ms; query timeout 200 ms, one
    // attempt, fail closed.
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(1)
        .build();
    let net = WanNet::builder().constant_delay(SimDuration::from_millis(300)).build();
    let mut d = Scenario::builder(18)
        .managers(1)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .request_timeout(SimDuration::from_secs(30))
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(5));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.unavailable, 1, "slow grant must not be honoured");
    assert_eq!(stats.allowed, 0);
    assert!(d.world.metrics().counter("host.late_reply") >= 1);
    assert_eq!(d.host(0).cached_entries(d.app), 0);
}

/// Invariant I6: identical seeds give identical runs.
#[test]
fn full_scenario_is_deterministic() {
    let run = |seed: u64| -> (u64, u64, u64) {
        let net = WanNet::builder()
            .uniform_delay(SimDuration::from_millis(10), SimDuration::from_millis(200))
            .loss(0.05)
            .build();
        let mut d = Scenario::builder(seed)
            .managers(5)
            .hosts(3)
            .users(10)
            .policy(fast_policy(3))
            .all_users_granted()
            .workload(SimDuration::from_secs(2))
            .net(Box::new(net))
            .build();
        d.run_for(SimDuration::from_secs(120));
        let s = d.aggregate_user_stats();
        (s.sent, s.allowed, d.world.metrics().counter("net.sent"))
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b);
    let c = run(43);
    assert_ne!(a, c, "different seeds should differ somewhere");
}

/// Subset fan-out sends O(C) queries per check instead of O(M).
#[test]
fn subset_fanout_limits_query_cost() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(3)
        .fanout(QueryFanout::Subset)
        .build();
    let mut d = Scenario::builder(19)
        .managers(10)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(3));
    let host = d.host(0);
    assert_eq!(d.user_agent(0).stats().allowed, 1);
    assert_eq!(host.stats().queries_sent, 2, "subset fan-out queries exactly C managers");
}

/// Concurrent conflicting operations issued at different managers during
/// a manager partition resolve identically everywhere after the heal
/// (Lamport last-writer-wins; see msg::OpId).
#[test]
fn conflicting_concurrent_ops_converge() {
    // Managers 0,1,2 — manager 0 cut from 1,2 between 5 s and 15 s.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1), n(2)],
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(21)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .net(Box::new(net))
        .build();
    d.run_until(SimTime::from_secs(6));

    // During the partition: Add at manager 0, Revoke at manager 1 —
    // concurrent (neither has seen the other).
    let target = UserId(9);
    let now = d.world.now();
    d.world.inject(
        now,
        d.managers[0],
        ProtoMsg::Admin {
            op: AclOp::Add { app: d.app, user: target, right: Right::Use },
            req: ReqId(1),
            issuer: UserId(0),
            signature: None,
        },
    );
    d.world.inject(
        now,
        d.managers[1],
        ProtoMsg::Admin {
            op: AclOp::Revoke { app: d.app, user: target, right: Right::Use },
            req: ReqId(2),
            issuer: UserId(0),
            signature: None,
        },
    );

    // Heal and let persistent retransmission finish.
    d.run_until(SimTime::from_secs(25));
    let answers: Vec<bool> =
        (0..3).map(|i| d.manager(i).acl_has(d.app, target, Right::Use)).collect();
    assert!(
        answers.iter().all(|&a| a == answers[0]),
        "managers diverged: {answers:?}"
    );
    // Equal Lamport timestamps: the higher origin id (manager 1's
    // revoke) wins deterministically.
    assert!(!answers[0], "revoke from the higher-origin manager must win");
}

/// Figure 2's basic loop: one manager queried per attempt, rotating past
/// an unreachable one.
#[test]
fn sequential_fanout_rotates_past_dead_manager() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(3)
        .fanout(QueryFanout::Sequential)
        .build();
    // Managers 0,1; host 2. Manager 0 is cut from the host, so the first
    // attempt times out and the second (manager 1) succeeds.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(2)],
        SimTime::ZERO,
        SimTime::from_secs(10_000),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(22)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(3));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
    // Exactly one query per attempt: 1 (to dead m0) + 1 (to m1).
    assert_eq!(d.host(0).stats().queries_sent, 2);
}

/// Per-application independence (§3.1): one host serving two
/// applications with different policies and different ACLs keeps them
/// fully isolated.
#[test]
fn multiple_applications_are_independent() {
    use wanacl_core::host::{AppHost, HostNode, ManagerDirectory};
    use wanacl_core::manager::{ManagerApp, ManagerConfig, ManagerNode};
    use wanacl_core::wrapper::CountingApp;
    use wanacl_sim::clock::ClockSpec;
    use wanacl_sim::world::World;

    let magazine = AppId(1);
    let vault = AppId(2);
    let mag_policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(60))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(1)
        .exhaustion(ExhaustionBehavior::FailOpen)
        .build();
    let vault_policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(10))
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(1)
        .build();

    let mut mag_acl = Acl::new();
    mag_acl.add(UserId(1), Right::Use);
    let mut vault_acl = Acl::new();
    vault_acl.add(UserId(2), Right::Use);

    let mut world: World<ProtoMsg> = World::new(23);
    let manager_ids = [NodeId::from_index(0), NodeId::from_index(1)];
    for (i, &id) in manager_ids.iter().enumerate() {
        let peers = manager_ids.iter().copied().filter(|p| *p != id).collect();
        let got = world.add_node(
            format!("m{i}"),
            Box::new(ManagerNode::new(ManagerConfig {
                peers,
                apps: vec![
                    ManagerApp {
                        app: magazine,
                        policy: mag_policy.clone(),
                        initial_acl: mag_acl.clone(),
                    },
                    ManagerApp {
                        app: vault,
                        policy: vault_policy.clone(),
                        initial_acl: vault_acl.clone(),
                    },
                ],
                ..ManagerConfig::default()
            })),
            ClockSpec::Perfect,
        );
        assert_eq!(got, id);
    }
    let host = world.add_node(
        "host",
        Box::new(HostNode::new(
            vec![
                AppHost {
                    app: magazine,
                    policy: mag_policy,
                    directory: ManagerDirectory::Static(manager_ids.to_vec().into()),
                    application: Box::new(CountingApp::new()),
                },
                AppHost {
                    app: vault,
                    policy: vault_policy,
                    directory: ManagerDirectory::Static(manager_ids.to_vec().into()),
                    application: Box::new(CountingApp::new()),
                },
            ],
            None,
        )),
        ClockSpec::Perfect,
    );

    // User 1 may read the magazine but not the vault; user 2 vice versa.
    let mut req = 0u64;
    let mut invoke = |world: &mut World<ProtoMsg>, app: AppId, user: u64, at: SimTime| {
        req += 1;
        world.inject(
            at,
            host,
            ProtoMsg::Invoke {
                app,
                user: UserId(user),
                req: ReqId(req),
                payload: "x".into(),
                signature: None,
            },
        );
    };
    invoke(&mut world, magazine, 1, SimTime::from_secs(1));
    invoke(&mut world, vault, 1, SimTime::from_secs(1));
    invoke(&mut world, magazine, 2, SimTime::from_secs(1));
    invoke(&mut world, vault, 2, SimTime::from_secs(1));
    world.run_until(SimTime::from_secs(5));

    let host_node = world.node_as::<HostNode>(host);
    let mag_app: &CountingApp = host_node.application_as(magazine);
    let vault_app: &CountingApp = host_node.application_as(vault);
    assert_eq!(mag_app.handled(), 1, "only user 1 reaches the magazine");
    assert_eq!(vault_app.handled(), 1, "only user 2 reaches the vault");
    assert_eq!(host_node.cached_entries(magazine), 1);
    assert_eq!(host_node.cached_entries(vault), 1);
}

/// §3.2: "If the set of managers changes, a scheme similar to the
/// time-based expiration of cached information can be used to trigger a
/// new query to the name service." Hosts pick up a replaced manager set
/// after the TTL refresh.
#[test]
fn manager_set_change_via_name_service() {
    let ttl = SimDuration::from_secs(10);
    let mut d = Scenario::builder(24)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(fast_policy(1))
        .all_users_granted()
        .with_name_service(ttl)
        .build();
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.host(0).manager_view(d.app).len(), 3);

    // The deployment shrinks to managers {1, 2}: update the directory.
    let ns = NodeId::from_index(3); // managers 0..3, NS at index 3
    let new_set = vec![d.managers[1], d.managers[2]];
    let now = d.world.now();
    d.world.inject(
        now,
        ns,
        ProtoMsg::NsReply { app: d.app, managers: new_set.clone(), ttl },
    );
    // After the TTL-driven refresh the host holds the new set.
    d.run_for(SimDuration::from_secs(12));
    assert_eq!(d.host(0).manager_view(d.app), new_set.as_slice());

    // And checks still work against the new set.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);
}

/// Proactive refresh: an actively used lease is renewed before expiry,
/// so a steady user never sees a second cold check.
#[test]
fn proactive_refresh_keeps_active_lease_warm() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(5))
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .refresh_margin(SimDuration::from_secs(1))
        .build();
    let mut d = Scenario::builder(25)
        .managers(3)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .build();
    // One request per second for 30 s: far beyond the 5 s lease.
    let user = d.users[0].1;
    for t in 1..30u64 {
        d.world.inject(
            SimTime::from_secs(t),
            user,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "steady".into(),
                signature: None,
            },
        );
    }
    d.run_until(SimTime::from_secs(35));
    let stats = d.host(0).stats();
    assert_eq!(d.user_agent(0).stats().allowed, 29);
    assert_eq!(stats.cache_misses, 1, "only the very first check is cold: {stats:?}");
    assert!(
        d.world.metrics().counter("host.refresh_renewed") >= 4,
        "the lease must have been renewed repeatedly"
    );
}

/// Proactive refresh tightens revocation in practice: the renewal check
/// hits a denying manager and flushes the entry before its natural
/// expiry (the Te bound still holds either way).
#[test]
fn proactive_refresh_flushes_revoked_lease_early() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(10))
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .refresh_margin(SimDuration::from_secs(2))
        .build();
    let mut d = Scenario::builder(26)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .build();
    // Lease granted at ~1 s (limit ~11 s); user stays active.
    let user = d.users[0].1;
    for t in [1u64, 3, 5] {
        d.world.inject(
            SimTime::from_secs(t),
            user,
            ProtoMsg::Invoke {
                app: d.app,
                user: UserId(1),
                req: ReqId(0),
                payload: "steady".into(),
                signature: None,
            },
        );
    }
    // Revoke at 6 s. The manager also sends RevokeNotice — to isolate
    // the refresh path we just check the refresh-denied counter fires
    // when the notice would have been lost; with perfect links both
    // mechanisms race, so assert the final state plus metrics.
    d.run_until(SimTime::from_secs(6));
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::from_secs(15));
    assert_eq!(d.host(0).cached_entries(d.app), 0);
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(18));
    assert_eq!(d.user_agent(0).stats().denied, 1);
}

/// An idle lease is not refreshed: no background traffic for users who
/// stopped making requests.
#[test]
fn proactive_refresh_lets_idle_leases_lapse() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(5))
        .query_timeout(SimDuration::from_millis(300))
        .max_attempts(2)
        .refresh_margin(SimDuration::from_secs(1))
        .cache_sweep_interval(SimDuration::from_secs(2))
        .build();
    let mut d = Scenario::builder(27)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .build();
    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0); // one request, then silence
    d.run_until(SimTime::from_secs(30));
    assert_eq!(d.host(0).cached_entries(d.app), 0, "idle lease must lapse");
    let renewed = d.world.metrics().counter("host.refresh_renewed");
    assert!(renewed <= 1, "at most one renewal for a one-shot user, got {renewed}");
}

/// §2.3 blocking semantics: a serial admin issues operations strictly
/// one at a time, each waiting for the previous one to stabilize.
#[test]
fn serial_admin_blocks_until_stable() {
    // Managers 0,1 cut from each other 0s-10s: the first revoke cannot
    // reach its update quorum (uq = 2) until the heal.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1)],
        SimTime::ZERO,
        SimTime::from_secs(10),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(28)
        .managers(2)
        .hosts(1)
        .users(3)
        .policy(fast_policy(1))
        .all_users_granted()
        .serial_admin()
        .net(Box::new(net))
        .build();
    d.run_until(SimTime::from_secs(1));
    // Three revokes back to back.
    for u in 1..=3u64 {
        d.revoke(UserId(u), Right::Use);
    }
    d.run_until(SimTime::from_secs(5));
    // Mid-partition: op 1 is in flight, ops 2 and 3 are queued.
    assert!(d.admin_agent().has_in_flight());
    assert_eq!(d.admin_agent().backlog_len(), 2);
    assert_eq!(d.admin_agent().op_count(), 1, "only one op may be outstanding");

    // After the heal, all three drain in order.
    d.run_until(SimTime::from_secs(20));
    assert_eq!(d.admin_agent().op_count(), 3);
    assert_eq!(d.admin_agent().stable_count(), 3);
    assert_eq!(d.admin_agent().backlog_len(), 0);
    for i in 0..3 {
        assert_eq!(d.admin_agent().progress(i), Some(OpProgress::Stable));
    }
}

/// With channel authentication on, a reply lacking (or failing) its
/// HMAC tag is dropped before any protocol processing — even if it
/// claims to come from a real manager.
#[test]
fn channel_auth_rejects_untagged_replies() {
    let policy = Policy::builder(1)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(1)
        .build();
    let mut d = Scenario::builder(31)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .authenticate() // turns on channel HMAC too
        .build();
    d.run_for(SimDuration::from_secs(1));

    // The legitimate (tagged) path works end to end.
    d.invoke_from(0);
    d.run_for(SimDuration::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // An untagged RevokeNotice — even "from" a manager id via env
    // injection — must not flush the cache.
    let host = d.hosts[0];
    assert_eq!(d.host(0).cached_entries(d.app), 1);
    let now = d.world.now();
    d.world.inject(now, host, ProtoMsg::RevokeNotice { app: d.app, user: UserId(1), mac: None });
    d.run_for(SimDuration::from_secs(1));
    assert_eq!(d.host(0).cached_entries(d.app), 1, "untagged notice must be ignored");
    assert!(d.world.metrics().counter("host.bad_channel_mac") >= 1);
}

/// §2.1 threat model: non-manager hosts "can experience any type of
/// failure" — a forged grant from a compromised node must not count
/// toward the check quorum.
#[test]
fn forged_query_replies_are_rejected() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(30))
        .query_timeout(SimDuration::from_millis(400))
        .max_attempts(1)
        .build();
    let mut d = Scenario::builder(29)
        .managers(2)
        .hosts(1)
        .users(2)
        .policy(policy)
        .initial_rights(vec![(UserId(1), Right::Use)]) // user 2 unauthorized
        .build();
    d.run_for(SimDuration::from_secs(1));

    // User 2 invokes; while the check is pending, an attacker floods the
    // host with forged grants guessing small request ids (the host's
    // ReqIds are sequential, so guessing is realistic).
    d.invoke_from(1);
    let host = d.hosts[0];
    let now = d.world.now();
    // The invoke reaches the host at +50 ms and real replies land at
    // +150 ms; the forged flood lands at +120 ms, inside the window
    // where the check is pending.
    for guess in 0..64u64 {
        d.world.inject(
            now + SimDuration::from_millis(120),
            host,
            ProtoMsg::QueryReply {
                req: ReqId(guess),
                app: d.app,
                user: UserId(2),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(3_600) },
                mac: None,
            },
        );
    }
    d.run_for(SimDuration::from_secs(3));
    let stats = d.user_agent(1).stats();
    assert_eq!(stats.allowed, 0, "forged grants must not admit the user: {stats:?}");
    assert_eq!(stats.denied, 1, "the real managers deny: {stats:?}");
    assert!(d.world.metrics().counter("host.reply_from_non_manager") > 0);
    assert_eq!(d.host(0).cached_entries(d.app), 0);
}

/// The protocol is idempotent under message duplication: duplicated
/// updates apply once, duplicated acks count once, duplicated grants
/// extend rather than corrupt the cache, and managers still converge.
#[test]
fn protocol_is_idempotent_under_duplication() {
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .duplication(0.5) // half of all messages are delivered twice
        .build();
    let mut d = Scenario::builder(30)
        .managers(3)
        .hosts(2)
        .users(2)
        .policy(fast_policy(2))
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_for(SimDuration::from_secs(1));
    for _ in 0..3 {
        d.invoke_from(0);
        d.invoke_from(1);
        d.run_for(SimDuration::from_secs(2));
    }
    assert!(d.world.metrics().counter("net.duplicated") > 0, "duplication must be active");
    let stats = d.aggregate_user_stats();
    assert_eq!(stats.allowed, 6);
    assert_eq!(stats.denied + stats.unavailable, 0, "{stats:?}");

    // A grant/revoke cycle still converges and stabilizes exactly once
    // per op.
    d.grant(UserId(7), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    d.revoke(UserId(7), Right::Use);
    d.run_for(SimDuration::from_secs(3));
    assert_eq!(d.admin_agent().stable_count(), 2);
    for i in 0..3 {
        assert!(!d.manager(i).acl_has(d.app, UserId(7), Right::Use));
        assert_eq!(d.manager(i).pending_updates(), 0, "dissemination must complete");
    }
}

/// §3.3: "if it takes too long to reach a quorum, external methods are
/// always possible … human operators could … request that the update be
/// entered manually at unreachable managers." The harness plays the
/// operator: entering the revoke at the partitioned manager makes every
/// manager deny immediately, and the two operation records reconcile
/// after the heal.
#[test]
fn manual_override_unsticks_a_partitioned_revocation() {
    // Managers 0 and 1 are cut from each other for a long time.
    let cut = ScheduledPartitions::cut_between(
        vec![n(0)],
        vec![n(1)],
        SimTime::from_secs(2),
        SimTime::from_secs(100),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(32)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(fast_policy(2)) // C = M = 2: checks need both managers
        .all_users_granted()
        .net(Box::new(net))
        .build();
    d.run_until(SimTime::from_secs(3));

    // The admin's revoke reaches only manager 0 (update quorum 1 for
    // C=2, so it even stabilizes) — but manager 1 still grants.
    d.revoke(UserId(1), Right::Use);
    d.run_until(SimTime::from_secs(5));
    assert!(!d.manager(0).acl_has(d.app, UserId(1), Right::Use));
    assert!(d.manager(1).acl_has(d.app, UserId(1), Right::Use), "m1 is behind");

    // The operator enters the same revoke manually at manager 1.
    let now = d.world.now();
    d.world.inject(
        now,
        d.managers[1],
        ProtoMsg::Admin {
            op: AclOp::Revoke { app: d.app, user: UserId(1), right: Right::Use },
            req: ReqId(99),
            issuer: UserId(0),
            signature: None,
        },
    );
    d.run_until(SimTime::from_secs(8));
    assert!(!d.manager(1).acl_has(d.app, UserId(1), Right::Use));

    // Still partitioned, but every manager now denies.
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(12));
    assert_eq!(d.user_agent(0).stats().denied, 1);

    // After the heal the duplicate records reconcile (LWW) and the
    // retransmissions drain.
    d.run_until(SimTime::from_secs(130));
    for i in 0..2 {
        assert!(!d.manager(i).acl_has(d.app, UserId(1), Right::Use));
        assert_eq!(d.manager(i).pending_updates(), 0);
    }
}

#[test]
fn counting_app_only_sees_authorized_requests() {
    use wanacl_core::wrapper::CountingApp;
    let mut d = Scenario::builder(20)
        .managers(1)
        .hosts(1)
        .users(2)
        .policy(fast_policy(1))
        .initial_rights(vec![(UserId(1), Right::Use)]) // user 2 unauthorized
        .build();
    d.run_for(SimDuration::from_secs(1));
    d.invoke_from(0); // user 1: allowed
    d.invoke_from(1); // user 2: denied
    d.run_for(SimDuration::from_secs(3));
    let host = d.host(0);
    let app: &CountingApp = host.application_as(d.app);
    assert_eq!(app.handled(), 1, "the wrapper must shield the app from unauthorized requests");
}

/// Deadline budget + per-peer circuit breaker: with one of two managers
/// silently partitioned away (C = 2, so no check can complete), the host
/// (a) opens the silent peer's breaker and stops querying it, and
/// (b) resolves the check at the deadline budget instead of burning all
/// `R` attempts. After the heal, a successful reply closes the breaker.
#[test]
fn breaker_and_deadline_bound_checks_against_a_silent_manager() {
    let policy = Policy::builder(2)
        .revocation_bound(SimDuration::from_secs(2)) // short te: cache dies fast
        .clock_rate_bound(1.0)
        .query_timeout(SimDuration::from_millis(200))
        .max_attempts(10) // without the deadline this would take 2 s
        .deadline_budget(SimDuration::from_millis(500))
        .breaker(BreakerConfig {
            failure_threshold: 1,
            open_base: SimDuration::from_secs(2),
            open_cap: SimDuration::from_secs(8),
        })
        .cache_sweep_interval(SimDuration::from_secs(1))
        .build();
    // Layout: managers 0..1, host 2, user 3. Cut manager 1 <-> host from
    // 5 s to 15 s; the managers stay connected to each other.
    let cut = ScheduledPartitions::cut_between(
        vec![n(1)],
        vec![n(2)],
        SimTime::from_secs(5),
        SimTime::from_secs(15),
    );
    let net = WanNet::builder()
        .constant_delay(SimDuration::from_millis(20))
        .partitions(Box::new(cut))
        .build();
    let mut d = Scenario::builder(42)
        .managers(2)
        .hosts(1)
        .users(1)
        .policy(policy)
        .all_users_granted()
        .net(Box::new(net))
        .build();

    // Pre-partition: both managers reachable, C = 2 satisfied.
    d.run_until(SimTime::from_secs(1));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(2));
    assert_eq!(d.user_agent(0).stats().allowed, 1);

    // Inside the partition (cache long expired): attempt 1 gets one
    // grant, times out on manager 1 (breaker opens), attempts 2+ skip
    // it, and the 500 ms deadline resolves the check fail-closed well
    // before the 10 × 200 ms attempt schedule would.
    d.run_until(SimTime::from_secs(10));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(11));
    let stats = d.user_agent(0).stats();
    assert_eq!(stats.unavailable, 1, "deadline must resolve within 1 s");
    let m = d.world.metrics();
    assert!(m.counter("rt.breaker_open") >= 1, "silent manager must trip its breaker");
    assert!(m.counter("rt.breaker_skipped") >= 1, "open peer must be skipped on retry");
    assert!(m.counter("rt.deadline_exceeded") >= 1, "budget must cut the retry schedule");

    // After the heal the next check queries manager 1 again (its window
    // elapsed), succeeds, and closes the breaker.
    d.run_until(SimTime::from_secs(16));
    d.invoke_from(0);
    d.run_until(SimTime::from_secs(17));
    assert_eq!(d.user_agent(0).stats().allowed, 2);
    assert!(d.world.metrics().counter("rt.breaker_close") >= 1);
}
