//! The application-host side of the protocol (Figures 2–4 plus the check
//! quorum of §3.3).
//!
//! A [`HostNode`] wraps one or more applications (Figure 1). For each
//! arriving `Invoke` it:
//!
//! 1. authenticates the request (if the deployment runs with signatures),
//! 2. consults the per-application [`AclCache`], honouring the
//!    time-based expiration of §3.2,
//! 3. on a miss, runs the check protocol: query managers, collect a
//!    check quorum of `C` grants (any deny vetoes), retrying up to `R`
//!    attempts with per-attempt timeouts, and finally applying the
//!    fail-open/fail-closed policy of Figure 4,
//! 4. caches a granted right until `query_start + te` on its local clock
//!    (the `δ` adjustment of §3.2), and
//! 5. flushes cache entries when a manager forwards a `RevokeNotice`.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use wanacl_auth::rsa;
use wanacl_auth::signed::{KeyRegistry, PrincipalId};
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId, TimerId};
use wanacl_sim::rng::SimRng;
use wanacl_sim::time::{SimDuration, SimTime};

use crate::breaker::{FailureOutcome, PeerBreaker};
use crate::cache::{AclCache, CacheDecision};
use crate::msg::{
    invoke_signing_bytes, ns_record_signing_bytes_sharded, InvokeOutcome, ProtoMsg, QueryVerdict,
    ReqId, ShardEntry,
};
use crate::nameservice::fmt_mgrs;
use crate::policy::{ExhaustionBehavior, Policy, QueryFanout};
use crate::types::{user_bucket, AppId, UserId};
use crate::wrapper::Application;

/// Static per-shard check-counter names ([`Context::metric_incr`] takes
/// `&'static str`); shards past the table share one overflow row.
static SHARD_CHECK_METRICS: [&str; 8] = [
    "shard.0.checks",
    "shard.1.checks",
    "shard.2.checks",
    "shard.3.checks",
    "shard.4.checks",
    "shard.5.checks",
    "shard.6.checks",
    "shard.7.checks",
];

/// Timer-tag namespaces (top byte selects the kind).
const TAG_KIND_SHIFT: u64 = 56;
const TAG_QUERY: u64 = 1 << TAG_KIND_SHIFT;
const TAG_SWEEP: u64 = 2 << TAG_KIND_SHIFT;
const TAG_NS: u64 = 3 << TAG_KIND_SHIFT;
const TAG_REFRESH: u64 = 4 << TAG_KIND_SHIFT;
const TAG_NSEXP: u64 = 5 << TAG_KIND_SHIFT;
const TAG_PAYLOAD_MASK: u64 = (1 << TAG_KIND_SHIFT) - 1;

/// The TTL-refresh delay: nominally 80% of the TTL, widened by a seeded
/// ±10% band so hosts whose records expire together do not re-query in
/// one synchronized storm.
fn jittered_refresh(ttl: SimDuration, rng: &mut SimRng) -> SimDuration {
    ttl.mul_f64(0.8 * (0.9 + 0.2 * rng.unit()))
}

/// Where a host learns the manager set for an application (§3.2).
#[derive(Debug, Clone)]
pub enum ManagerDirectory {
    /// A fixed set, "known to all the hosts in Hosts(A)".
    ///
    /// Shared (`Arc<[NodeId]>`) so a 10k-host deployment holds one
    /// manager list, not 10k copies of it.
    Static(Arc<[NodeId]>),
    /// A trusted name service queried with TTL-based refresh.
    NameService {
        /// The name-service node.
        ns: NodeId,
    },
    /// A replicated directory read with a quorum: the host fans an
    /// `NsQuery` to every replica, waits for `read_quorum` verified
    /// [`ProtoMsg::NsRecordReply`] answers, and installs the freshest
    /// version among them. No single replica is trusted.
    Replicated {
        /// The directory replicas.
        replicas: Vec<NodeId>,
        /// How many verified replies a read needs (≤ replicas).
        read_quorum: usize,
    },
}

/// Configuration of one application served by a host.
pub struct AppHost {
    /// The application id.
    pub app: AppId,
    /// The per-application policy.
    pub policy: Policy,
    /// How the manager set is discovered.
    pub directory: ManagerDirectory,
    /// The wrapped application (Figure 1).
    pub application: Box<dyn Application>,
}

impl std::fmt::Debug for AppHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppHost").field("app", &self.app).finish_non_exhaustive()
    }
}

/// Counters a host keeps about its own decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Invokes received.
    pub invokes: u64,
    /// Invokes answered from a live cache entry.
    pub cache_hits: u64,
    /// Invokes that had to run the check protocol.
    pub cache_misses: u64,
    /// Invokes allowed (cache or quorum or fail-open).
    pub allowed: u64,
    /// Invokes denied by a manager verdict.
    pub denied: u64,
    /// Invokes rejected after `R` failed attempts (fail-closed).
    pub unavailable: u64,
    /// Invokes allowed by the Figure 4 fail-open rule.
    pub fail_open_allows: u64,
    /// Invokes rejected because the signature did not verify.
    pub auth_rejects: u64,
    /// Queries sent to managers.
    pub queries_sent: u64,
    /// RevokeNotice messages that flushed a live cache entry.
    pub revoke_flushes: u64,
}

#[derive(Debug)]
struct PendingInvoke {
    app: AppId,
    user: UserId,
    requester: NodeId,
    user_req: ReqId,
    payload: Arc<str>,
    attempt: u32,
    attempt_started: LocalTime,
    query_req: ReqId,
    grants: BTreeMap<NodeId, SimDuration>,
    /// The managers queried this attempt.
    targets: Vec<NodeId>,
    /// Managers that answered `Unavailable` this attempt (recovering —
    /// §3.4). Not a veto, but they won't contribute grants either; once
    /// the remainder cannot form the check quorum, the attempt is over.
    unavailable: BTreeSet<NodeId>,
    timer: Option<TimerId>,
    first_started: LocalTime,
    /// A proactive lease refresh: no requester to answer, no
    /// application call — just renew (or flush) the cache entry.
    background: bool,
}

/// One verified directory reply: `(version, managers, shards, ttl)`.
type NsReplyEntry = (u64, Vec<NodeId>, Option<Vec<ShardEntry>>, SimDuration);

struct AppState {
    policy: Policy,
    directory: ManagerDirectory,
    managers: Vec<NodeId>,
    cache: AclCache,
    application: Box<dyn Application>,
    ns_timer: Option<TimerId>,
    /// Consecutive unanswered name-service queries; indexes the
    /// [`Policy::ns_retry_backoff`] schedule and resets on a reply.
    ns_round: u32,
    /// The installed shard map, when the directory record carries one:
    /// checks for a user route to the covering entry's manager set
    /// instead of the flat view.
    shards: Option<Vec<ShardEntry>>,
    /// Fault injection: the *stale shard map* fault. While set, fresher
    /// directory records are not installed — the host keeps routing on
    /// whatever map it already holds.
    ns_pinned: bool,
    /// Verified replies collected during the current quorum read:
    /// replica → (version, managers, shards, ttl). Only meaningful for
    /// [`ManagerDirectory::Replicated`].
    ns_replies: BTreeMap<NodeId, NsReplyEntry>,
    /// When the current quorum read started (for the latency histogram).
    ns_round_started: LocalTime,
    /// Whether a quorum read is in flight (armed but not yet installed).
    ns_inflight: bool,
    /// Version stamp of the installed directory record (0 = none yet).
    record_version: u64,
    /// When the installed record's TTL runs out on the local clock.
    record_expires: Option<LocalTime>,
    /// The TTL-expiry timer for the installed record.
    ns_expiry_timer: Option<TimerId>,
    /// The replicas actually queried by the in-flight quorum read (may
    /// be a subset when the breaker is holding some replicas open).
    ns_targets: Vec<NodeId>,
    /// Per-peer circuit breaker over managers *and* directory replicas
    /// (their [`NodeId`]s are disjoint). `None` unless the policy opts
    /// in via [`Policy::breaker`].
    breaker: Option<PeerBreaker<NodeId>>,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("managers", &self.managers)
            .field("cached", &self.cache.len())
            .finish_non_exhaustive()
    }
}

/// A host running one or more access-controlled applications.
#[derive(Debug)]
pub struct HostNode {
    apps: BTreeMap<AppId, AppState>,
    registry: Option<Arc<KeyRegistry>>,
    pending: BTreeMap<u64, PendingInvoke>,
    query_index: BTreeMap<ReqId, u64>,
    refresh_index: BTreeMap<u64, (AppId, UserId)>,
    next_pending: u64,
    next_req: u64,
    next_refresh: u64,
    channel: Option<Arc<crate::channel::ChannelKeys>>,
    /// Trust anchor for replicated-directory records: the registry to
    /// verify against and the principal whose signature records must
    /// carry. `None` accepts records unverified (protocol-only runs).
    ns_trust: Option<(Arc<KeyRegistry>, PrincipalId)>,
    /// Fault injection: skip record-signature verification (the planted
    /// bug the I7 oracle must catch).
    ns_trust_unsigned: bool,
    stats: HostStats,
}

impl HostNode {
    /// Creates a host serving the given applications.
    ///
    /// When `registry` is provided, every `Invoke` must carry a valid
    /// signature from the claimed user; without it the deployment runs
    /// unauthenticated (useful for protocol-only experiments).
    pub fn new(apps: Vec<AppHost>, registry: Option<Arc<KeyRegistry>>) -> Self {
        let mut map = BTreeMap::new();
        for spec in apps {
            let managers = match &spec.directory {
                ManagerDirectory::Static(m) => m.to_vec(),
                ManagerDirectory::NameService { .. } => Vec::new(),
                ManagerDirectory::Replicated { replicas, read_quorum } => {
                    assert!(
                        *read_quorum >= 1 && *read_quorum <= replicas.len(),
                        "read quorum must satisfy 1 <= q <= replicas"
                    );
                    Vec::new()
                }
            };
            let breaker = spec.policy.breaker().map(PeerBreaker::new);
            map.insert(
                spec.app,
                AppState {
                    policy: spec.policy,
                    directory: spec.directory,
                    managers,
                    cache: AclCache::new(),
                    application: spec.application,
                    ns_timer: None,
                    ns_round: 0,
                    shards: None,
                    ns_pinned: false,
                    ns_replies: BTreeMap::new(),
                    ns_round_started: LocalTime::ZERO,
                    ns_inflight: false,
                    record_version: 0,
                    record_expires: None,
                    ns_expiry_timer: None,
                    ns_targets: Vec::new(),
                    breaker,
                },
            );
        }
        HostNode {
            apps: map,
            registry,
            pending: BTreeMap::new(),
            query_index: BTreeMap::new(),
            refresh_index: BTreeMap::new(),
            next_pending: 0,
            next_req: 0,
            next_refresh: 0,
            channel: None,
            ns_trust: None,
            ns_trust_unsigned: false,
            stats: HostStats::default(),
        }
    }

    /// Installs the replicated-directory trust anchor: records must
    /// verify against `registry` as signed by `writer` or they are
    /// discarded (`host.ns_reject_bad_sig`). Without a trust anchor the
    /// host accepts any well-formed record — fine for protocol-only
    /// experiments, unsafe with a malicious replica.
    pub fn set_ns_trust(&mut self, registry: Arc<KeyRegistry>, writer: PrincipalId) {
        self.ns_trust = Some((registry, writer));
    }

    /// Fault injection: makes this host skip record-signature checks on
    /// quorum reads, so a forged or rolled-back record from a malicious
    /// replica is installed as if legitimate. Used by nemesis campaigns
    /// to plant a known integrity bug and prove invariant I7 detects it.
    pub fn inject_ns_trust_unsigned(&mut self) {
        self.ns_trust_unsigned = true;
    }

    /// Version stamp of the installed directory record for `app`
    /// (0 until a quorum read completes).
    pub fn directory_version(&self, app: AppId) -> u64 {
        self.apps.get(&app).map(|a| a.record_version).unwrap_or(0)
    }

    /// Installs pairwise channel keys: `QueryReply` and `RevokeNotice`
    /// messages must then carry valid HMAC tags (see [`crate::channel`]).
    pub fn set_channel_keys(&mut self, keys: Arc<crate::channel::ChannelKeys>) {
        self.channel = Some(keys);
    }

    /// The host's decision counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The current manager view for an application (empty when a
    /// name-service lookup has not answered yet).
    pub fn manager_view(&self, app: AppId) -> &[NodeId] {
        self.apps.get(&app).map(|a| a.managers.as_slice()).unwrap_or(&[])
    }

    /// Live cache-entry count for an application.
    pub fn cached_entries(&self, app: AppId) -> usize {
        self.apps.get(&app).map(|a| a.cache.len()).unwrap_or(0)
    }

    /// Inspects the cached expiry limit for a user (tests/experiments).
    pub fn cached_limit(&self, app: AppId, user: UserId) -> Option<LocalTime> {
        self.apps.get(&app).and_then(|a| a.cache.peek(user))
    }

    /// Fault injection: makes this host's cache for `app` ignore entry
    /// expiry (see [`crate::cache::AclCache::set_ignore_expiry`]). Used
    /// by nemesis campaigns to plant a known safety bug and prove the
    /// invariant oracle detects it.
    ///
    /// # Panics
    ///
    /// Panics if the app is not served by this host.
    pub fn inject_ignore_expiry(&mut self, app: AppId) {
        self.apps
            .get_mut(&app)
            .unwrap_or_else(|| panic!("{app} not served by this host"))
            .cache
            .set_ignore_expiry(true);
    }

    /// Fault injection: the *stale shard map* fault. The host stops
    /// installing fresher directory records for `app` and keeps routing
    /// checks on whatever map (and manager view) it currently holds,
    /// until the record's TTL lapses and the view fails closed.
    pub fn set_pin_ns_version(&mut self, app: AppId) {
        if let Some(state) = self.apps.get_mut(&app) {
            state.ns_pinned = true;
        }
    }

    /// The installed shard map for an application, if any.
    pub fn shard_map(&self, app: AppId) -> Option<&[ShardEntry]> {
        self.apps.get(&app).and_then(|a| a.shards.as_deref())
    }

    /// Access to a wrapped application for inspection, or `None` when
    /// the app is not served here or is not a `T`. The non-panicking
    /// form of [`HostNode::application_as`].
    pub fn try_application_as<T: 'static>(&self, app: AppId) -> Option<&T> {
        self.apps.get(&app)?.application.as_any().downcast_ref::<T>()
    }

    /// Access to a wrapped application for inspection (e.g.
    /// [`crate::wrapper::CountingApp::handled`]).
    ///
    /// # Panics
    ///
    /// Panics if the app is not served here or is not a `T`.
    pub fn application_as<T: 'static>(&self, app: AppId) -> &T {
        assert!(self.apps.contains_key(&app), "{app} not served by this host");
        self.try_application_as(app)
            .unwrap_or_else(|| panic!("{app} is not a {}", std::any::type_name::<T>()))
    }

    fn fresh_req(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(self.next_req)
    }

    fn arm_periodic(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let apps: Vec<AppId> = self.apps.keys().copied().collect();
        for app in apps {
            let state = self.apps.get_mut(&app).expect("just listed");
            let sweep = state.policy.cache_sweep_interval();
            ctx.set_timer(sweep, TAG_SWEEP | u64::from(app.0));
            match &state.directory {
                ManagerDirectory::NameService { ns } => {
                    let ns = *ns;
                    ctx.metric_incr("host.ns_refresh_rounds");
                    ctx.send(ns, ProtoMsg::NsQuery { app });
                    state.ns_round = 0;
                    let retry = state.policy.ns_retry_backoff().delay(state.ns_round, ctx.rng());
                    state.ns_round = state.ns_round.saturating_add(1);
                    state.ns_timer = Some(ctx.set_timer(retry, TAG_NS | u64::from(app.0)));
                }
                ManagerDirectory::Replicated { .. } => {
                    state.ns_round = 0;
                    self.start_ns_round(ctx, app);
                }
                ManagerDirectory::Static(_) => {}
            }
        }
    }

    /// Starts one quorum-read round against a replicated directory:
    /// fans an `NsQuery` to every replica, clears the reply set, and
    /// arms the capped-backoff retry timer for the round.
    fn start_ns_round(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId) {
        let Some(state) = self.apps.get_mut(&app) else { return };
        let ManagerDirectory::Replicated { replicas, read_quorum } = &state.directory else {
            return;
        };
        let read_quorum = *read_quorum;
        let mut replicas = replicas.clone();
        // Breaker-aware replica selection: skip replicas held Open —
        // *unless* that would leave fewer admitted replicas than the
        // read quorum needs, in which case query everyone (a probe of
        // a dead replica costs less than a round that cannot succeed).
        if let Some(b) = state.breaker.as_mut() {
            let bnow = SimTime::from_nanos(ctx.local_now().as_nanos());
            let admitted: Vec<NodeId> =
                replicas.iter().filter(|r| b.admits(**r, bnow)).copied().collect();
            if admitted.len() >= read_quorum && admitted.len() < replicas.len() {
                for _ in admitted.len()..replicas.len() {
                    ctx.metric_incr("rt.breaker_skipped");
                }
                replicas = admitted;
            }
        }
        if let Some(t) = state.ns_timer.take() {
            ctx.cancel_timer(t);
        }
        ctx.metric_incr("ns.read_rounds");
        state.ns_replies.clear();
        state.ns_round_started = ctx.local_now();
        state.ns_inflight = true;
        state.ns_targets = replicas.clone();
        for r in &replicas {
            ctx.send(*r, ProtoMsg::NsQuery { app });
        }
        let retry = state.policy.ns_retry_backoff().delay(state.ns_round, ctx.rng());
        state.ns_round = state.ns_round.saturating_add(1);
        state.ns_timer = Some(ctx.set_timer(retry, TAG_NS | u64::from(app.0)));
    }

    /// One replica answered a quorum read. Verifies the record
    /// signature, collects the reply, and — once `read_quorum` verified
    /// answers are in — installs the freshest version among them.
    #[allow(clippy::too_many_arguments)]
    fn on_ns_record_reply(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        app: AppId,
        version: u64,
        managers: Vec<NodeId>,
        shards: Option<Vec<ShardEntry>>,
        ttl: SimDuration,
        signature: Option<rsa::Signature>,
    ) {
        let Some(state) = self.apps.get_mut(&app) else { return };
        let ManagerDirectory::Replicated { replicas, read_quorum } = &state.directory else {
            ctx.metric_incr("host.ns_reply_untrusted");
            return;
        };
        // Only configured replicas may vote; anyone else guessing at the
        // protocol (§2.1 failure model) is ignored.
        if !replicas.contains(&from) {
            ctx.metric_incr("host.ns_reply_untrusted");
            return;
        }
        let quorum = *read_quorum;
        // Even a straggler or an unverifiable reply proves the replica
        // is up: the breaker tracks silence, not record validity.
        if let Some(b) = state.breaker.as_mut() {
            if b.record_success(from) {
                ctx.metric_incr("rt.breaker_close");
                ctx.trace(format!("audit=breaker-close peer={}", from.index()));
            }
        }
        if !state.ns_inflight {
            // A straggler from an already-settled round.
            ctx.metric_incr("host.late_reply");
            return;
        }
        // Negative answers (version 0) are unsigned by construction;
        // positive records must verify against the trust anchor.
        if version > 0 && !self.ns_trust_unsigned {
            let verified = match (&self.ns_trust, &signature) {
                (Some((registry, writer)), Some(sig)) => {
                    let bytes = ns_record_signing_bytes_sharded(
                        app,
                        version,
                        &managers,
                        shards.as_deref(),
                    );
                    wanacl_auth::signed::verify_bytes(registry, *writer, &bytes, sig)
                }
                (Some(_), None) => false,
                // No trust anchor configured: accept, but leave a trace
                // that this deployment runs without record integrity.
                (None, _) => {
                    ctx.metric_incr("host.ns_unverified");
                    true
                }
            };
            if !verified {
                ctx.metric_incr("host.ns_reject_bad_sig");
                return;
            }
        }
        let state = self.apps.get_mut(&app).expect("checked above");
        state.ns_replies.insert(from, (version, managers, shards, ttl));
        if state.ns_replies.len() >= quorum {
            self.install_ns_record(ctx, app, quorum);
        }
    }

    /// A quorum of verified replies is in: freshest-version-wins.
    fn install_ns_record(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId, quorum: usize) {
        let Some(state) = self.apps.get_mut(&app) else { return };
        let acks = state.ns_replies.len();
        // Move the winning reply out instead of cloning it: the round is
        // settled, so the reply buffer is about to be discarded anyway.
        let Some(best) = state
            .ns_replies
            .iter()
            .max_by_key(|(_, (v, _, _, _))| *v)
            .map(|(&from, _)| from)
        else {
            return;
        };
        let (version, managers, shards, ttl) =
            state.ns_replies.remove(&best).expect("chosen above");
        state.ns_replies.clear();
        state.ns_inflight = false;
        state.ns_round = 0;
        if let Some(t) = state.ns_timer.take() {
            ctx.cancel_timer(t);
        }
        ctx.metric_observe(
            "ns.lookup_latency_s",
            ctx.local_now().since(state.ns_round_started).as_secs_f64(),
        );
        if version < state.record_version {
            // The quorum's freshest answer is older than what we hold —
            // e.g. every reachable replica is stale. Never roll the view
            // back: keep the installed record on its original TTL.
            ctx.metric_incr("ns.stale_quorum");
        } else if state.ns_pinned && state.record_version > 0 && version > state.record_version {
            // Stale-shard-map fault: deliberately keep routing on the
            // old map. The oracle must stay clean — safety can never
            // depend on hosts refreshing promptly.
            ctx.metric_incr("host.ns_pinned");
        } else {
            state.managers = managers;
            state.shards = shards;
            state.record_version = version;
            state.record_expires = Some(ctx.local_now().plus(ttl));
            if let Some(t) = state.ns_expiry_timer.take() {
                ctx.cancel_timer(t);
            }
            state.ns_expiry_timer = Some(ctx.set_timer(ttl, TAG_NSEXP | u64::from(app.0)));
            ctx.metric_incr("ns.installs");
            ctx.trace(format!(
                "audit=ns-install app={} version={} mode=quorum acks={} quorum={} mgrs={} ttl={}",
                app.0,
                version,
                acks,
                quorum,
                fmt_mgrs(&state.managers),
                ttl.as_nanos(),
            ));
        }
        // Re-query shortly before the TTL runs out, jittered so hosts
        // sharing a TTL don't re-query in lockstep.
        let state = self.apps.get_mut(&app).expect("still present");
        let refresh = jittered_refresh(ttl, ctx.rng());
        state.ns_timer = Some(ctx.set_timer(refresh, TAG_NS | u64::from(app.0)));
    }

    /// The quorum-read retry timer fired. Either this is the scheduled
    /// TTL refresh (no round in flight) or the previous round failed to
    /// reach its quorum — count the timeout, note degraded mode if a
    /// live record is carrying us, and start the next round under the
    /// capped backoff.
    fn on_ns_round_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId) {
        let Some(state) = self.apps.get_mut(&app) else { return };
        state.ns_timer = None;
        if state.ns_inflight {
            ctx.metric_incr("ns.read_timeout");
            // Replicas queried this round that never answered are
            // charged a breaker failure.
            let silent: Vec<NodeId> = state
                .ns_targets
                .iter()
                .filter(|r| !state.ns_replies.contains_key(r))
                .copied()
                .collect();
            if let Some(b) = state.breaker.as_mut() {
                let bnow = SimTime::from_nanos(ctx.local_now().as_nanos());
                for peer in silent {
                    if b.record_failure(peer, bnow) == FailureOutcome::Opened {
                        ctx.metric_incr("rt.breaker_open");
                        ctx.trace(format!("audit=breaker-open peer={}", peer.index()));
                    }
                }
            }
            let live = state
                .record_expires
                .map(|e| ctx.local_now() < e)
                .unwrap_or(false);
            if live && state.record_version > 0 {
                // Graceful degradation: the quorum is unreachable but the
                // last-known-good record has TTL left — keep serving it.
                ctx.metric_incr("ns.degraded_rounds");
                ctx.trace(format!(
                    "audit=ns-degraded app={} version={}",
                    app.0, state.record_version,
                ));
            }
        }
        self.start_ns_round(ctx, app);
    }

    /// The installed record's TTL ran out without a successful refresh:
    /// the view reverts to empty (fail-closed through the
    /// empty-manager-view path) until a quorum read lands again.
    fn on_ns_expiry_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId) {
        let Some(state) = self.apps.get_mut(&app) else { return };
        state.ns_expiry_timer = None;
        let Some(expires) = state.record_expires else { return };
        if ctx.local_now() < expires {
            return; // superseded by a fresher install; its timer is armed
        }
        ctx.metric_incr("ns.record_expired");
        ctx.trace(format!(
            "audit=ns-expire app={} version={}",
            app.0, state.record_version,
        ));
        state.record_expires = None;
        state.managers.clear();
    }

    /// Starts (or restarts) one check attempt for a pending invoke.
    fn start_attempt(&mut self, ctx: &mut Context<'_, ProtoMsg>, pending_id: u64) {
        let query_req = self.fresh_req();
        let Some(p) = self.pending.get_mut(&pending_id) else { return };
        let Some(state) = self.apps.get_mut(&p.app) else { return };
        let old_query = p.query_req;
        self.query_index.remove(&old_query);
        if let Some(t) = p.timer.take() {
            ctx.cancel_timer(t);
        }
        p.query_req = query_req;
        p.grants.clear();
        p.unavailable.clear();
        p.attempt += 1;
        p.attempt_started = ctx.local_now();
        self.query_index.insert(query_req, pending_id);

        // Circuit breaker: managers currently held Open are dropped from
        // the candidate view *before* fan-out selection, so retries
        // route around recently-silent peers instead of re-timing-out
        // on them. This never loosens safety — the quorum rules below
        // still apply to whatever subset remains.
        let bnow = SimTime::from_nanos(ctx.local_now().as_nanos());
        // Shard routing: with a shard map installed, only the covering
        // entry's managers are candidates — the check fans out (and its
        // quorum forms) over that set alone, so per-check traffic stays
        // independent of how many shards or tenants exist elsewhere.
        let mut view = match state.shards.as_deref() {
            Some(entries) => {
                let bucket = user_bucket(p.user);
                match entries.iter().find(|e| e.covers(bucket)) {
                    Some(entry) => {
                        let label = SHARD_CHECK_METRICS
                            .get(entry.shard.0 as usize)
                            .copied()
                            .unwrap_or("shard.other.checks");
                        ctx.metric_incr(label);
                        entry.managers.clone()
                    }
                    // A map that does not cover the user fails closed
                    // through the empty-view path below.
                    None => Vec::new(),
                }
            }
            None => state.managers.clone(),
        };
        let had_candidates = !view.is_empty();
        if let Some(b) = state.breaker.as_mut() {
            view.retain(|m| {
                let admitted = b.admits(*m, bnow);
                if !admitted {
                    ctx.metric_incr("rt.breaker_skipped");
                }
                admitted
            });
        }
        let all_held_open = view.is_empty() && had_candidates;
        // Choose which managers to ask this attempt.
        let targets: Vec<NodeId> = match state.policy.fanout() {
            QueryFanout::All => view.clone(),
            QueryFanout::Subset => {
                let c = state.policy.check_quorum().min(view.len());
                let mut pool = view.clone();
                ctx.rng().shuffle(&mut pool);
                pool.truncate(c);
                pool
            }
            QueryFanout::Sequential => {
                // Figure 2: one manager at a time, rotating per attempt.
                if view.is_empty() {
                    Vec::new()
                } else {
                    let idx = (p.attempt as usize - 1) % view.len();
                    vec![view[idx]]
                }
            }
        };
        let msg = ProtoMsg::Query { app: p.app, user: p.user, req: query_req };
        if p.attempt > 1 {
            ctx.metric_incr("host.attempt_retry");
        }
        let timeout = state.policy.query_timeout();
        let exhaustion = state.policy.exhaustion();
        if targets.is_empty() {
            // An empty manager view — e.g. the name service is down and
            // its TTL lapsed, or an NS reply carried no managers — can
            // never produce a quorum, and retrying in the same event
            // cannot change the view. Waiting out R query timeouts would
            // only delay the inevitable, so resolve now per the Figure 4
            // exhaustion policy. Every breaker being open degrades the
            // same way: the managers are unreachable in practice.
            ctx.metric_incr("host.empty_manager_view");
            if all_held_open {
                ctx.metric_incr("rt.breaker_all_open");
            }
            match exhaustion {
                ExhaustionBehavior::FailOpen => self.finish(ctx, pending_id, FinishKind::FailOpen),
                ExhaustionBehavior::FailClosed => {
                    self.finish(ctx, pending_id, FinishKind::Unavailable)
                }
            }
            return;
        }
        self.stats.queries_sent += targets.len() as u64;
        for t in &targets {
            ctx.metric_incr("host.queries_sent");
            ctx.send(*t, msg.clone());
        }
        let p = self.pending.get_mut(&pending_id).expect("still pending");
        p.targets = targets;
        p.timer = Some(ctx.set_timer(timeout, TAG_QUERY | pending_id));
    }

    /// Finishes a pending invoke with the given outcome.
    fn finish(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        pending_id: u64,
        outcome_kind: FinishKind,
    ) {
        let Some(p) = self.pending.remove(&pending_id) else { return };
        self.query_index.remove(&p.query_req);
        if let Some(t) = p.timer {
            ctx.cancel_timer(t);
        }
        if p.background {
            self.finish_background(ctx, &p, outcome_kind);
            return;
        }
        let elapsed = ctx.local_now().since(p.first_started);
        ctx.metric_observe("host.check_latency_s", elapsed.as_secs_f64());
        // The same latency, split by how the check resolved, so the
        // manager round-trip path and the exhaustion paths can be
        // compared directly (the paper's §5 overhead breakdown).
        let split = match outcome_kind {
            FinishKind::Grant | FinishKind::Deny => "host.latency.quorum_s",
            FinishKind::FailOpen => "host.latency.failopen_s",
            FinishKind::Unavailable => "host.latency.unavailable_s",
        };
        ctx.metric_observe(split, elapsed.as_secs_f64());
        let outcome = match outcome_kind {
            FinishKind::Grant => {
                // Cache: limit anchored at attempt start (δ adjustment).
                let min_te = p
                    .grants
                    .values()
                    .copied()
                    .min()
                    .unwrap_or(SimDuration::ZERO);
                let check_quorum = self
                    .apps
                    .get(&p.app)
                    .map(|s| s.policy.check_quorum())
                    .unwrap_or(0);
                // Streamed into the detail buffer: this runs once per
                // granted check, so no per-manager Strings or join vector.
                use std::fmt::Write as _;
                let mut detail =
                    format!("mode=quorum confirms={} c={} mgrs=", p.grants.len(), check_quorum);
                for (i, n) in p.grants.keys().enumerate() {
                    if i > 0 {
                        detail.push(';');
                    }
                    let _ = write!(detail, "{}", n.index());
                }
                let _ = write!(detail, " started={}", p.attempt_started.as_nanos());
                if min_te > SimDuration::ZERO {
                    let limit = p.attempt_started.plus(min_te);
                    detail.push_str(&format!(" limit={}", limit.as_nanos()));
                    ctx.trace(format!(
                        "audit=cache-store app={} user={} started={} limit={} te={}",
                        p.app.0,
                        p.user.0,
                        p.attempt_started.as_nanos(),
                        limit.as_nanos(),
                        min_te.as_nanos(),
                    ));
                    if let Some(state) = self.apps.get_mut(&p.app) {
                        state.cache.insert(p.user, limit);
                        // The grant that creates the entry is a use.
                        state.cache.touch(p.user, ctx.local_now());
                    }
                    self.arm_refresh(ctx, p.app, p.user, limit);
                }
                self.allow(ctx, p.app, p.user, &p.payload, &detail)
            }
            FinishKind::FailOpen => {
                // Figure 4: allow, but nothing is cached — no te is known.
                self.stats.fail_open_allows += 1;
                ctx.metric_incr("host.fail_open");
                self.allow(ctx, p.app, p.user, &p.payload, "mode=failopen")
            }
            FinishKind::Deny => {
                self.stats.denied += 1;
                ctx.metric_incr("host.denied");
                ctx.trace(format!("audit=deny app={} user={}", p.app.0, p.user.0));
                InvokeOutcome::Denied
            }
            FinishKind::Unavailable => {
                self.stats.unavailable += 1;
                ctx.metric_incr("host.unavailable");
                InvokeOutcome::Unavailable
            }
        };
        ctx.send(p.requester, ProtoMsg::InvokeReply { req: p.user_req, outcome });
    }

    /// Completes a proactive refresh: renew on grant, flush on deny.
    fn finish_background(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        p: &PendingInvoke,
        outcome_kind: FinishKind,
    ) {
        match outcome_kind {
            FinishKind::Grant => {
                let min_te =
                    p.grants.values().copied().min().unwrap_or(SimDuration::ZERO);
                if min_te > SimDuration::ZERO {
                    let limit = p.attempt_started.plus(min_te);
                    ctx.trace(format!(
                        "audit=cache-store app={} user={} started={} limit={} te={}",
                        p.app.0,
                        p.user.0,
                        p.attempt_started.as_nanos(),
                        limit.as_nanos(),
                        min_te.as_nanos(),
                    ));
                    if let Some(state) = self.apps.get_mut(&p.app) {
                        // Renew without touching last_used: only real
                        // requests count as activity, so idle leases
                        // stop being refreshed.
                        state.cache.insert(p.user, limit);
                    }
                    ctx.metric_incr("host.refresh_renewed");
                    self.arm_refresh(ctx, p.app, p.user, limit);
                }
            }
            FinishKind::Deny => {
                // The right is gone: flush immediately instead of
                // letting the lease run out.
                if let Some(state) = self.apps.get_mut(&p.app) {
                    state.cache.remove(p.user);
                }
                ctx.metric_incr("host.refresh_denied");
            }
            FinishKind::FailOpen | FinishKind::Unavailable => {
                // No quorum reachable: the lease lapses on its own
                // schedule, exactly as without refresh.
                ctx.metric_incr("host.refresh_failed");
            }
        }
    }

    /// Arms a proactive-refresh timer `margin` before `limit`, when the
    /// policy asks for one.
    fn arm_refresh(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        app: AppId,
        user: UserId,
        limit: LocalTime,
    ) {
        let Some(state) = self.apps.get(&app) else { return };
        let Some(margin) = state.policy.refresh_margin() else { return };
        let delay = limit.since(ctx.local_now()).saturating_sub(margin);
        if delay == SimDuration::ZERO {
            return; // too late to refresh this lease meaningfully
        }
        let key = self.next_refresh;
        self.next_refresh += 1;
        self.refresh_index.insert(key, (app, user));
        ctx.set_timer(delay, TAG_REFRESH | key);
    }

    /// Fires a proactive refresh if the lease is still alive and the
    /// user has actually been active during the current lease term.
    fn on_refresh_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, key: u64) {
        let Some((app, user)) = self.refresh_index.remove(&key) else { return };
        let Some(state) = self.apps.get(&app) else { return };
        let now = ctx.local_now();
        let Some(limit) = state.cache.peek(user) else { return };
        if now >= limit {
            return; // already expired; a future request will re-check
        }
        let te = state.policy.expiry_budget();
        let active = state
            .cache
            .last_used(user)
            .map(|used| now.since(used) < te)
            .unwrap_or(false);
        if !active {
            ctx.metric_incr("host.refresh_skipped_idle");
            return;
        }
        ctx.metric_incr("host.refresh_started");
        let pending_id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(
            pending_id,
            PendingInvoke {
                app,
                user,
                requester: ctx.id(),
                user_req: ReqId(0),
                payload: "".into(),
                attempt: 0,
                attempt_started: now,
                query_req: ReqId(u64::MAX),
                grants: BTreeMap::new(),
                targets: Vec::new(),
                unavailable: BTreeSet::new(),
                timer: None,
                first_started: now,
                background: true,
            },
        );
        self.start_attempt(ctx, pending_id);
    }

    /// Grants the invocation. `detail` is appended to the audit note as
    /// extra `key=value` tokens recording *why* the host said yes
    /// (cache hit, fresh quorum, fail-open) — the invariant oracle
    /// reads these; `parse_note` ignores them.
    fn allow(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        app: AppId,
        user: UserId,
        payload: &str,
        detail: &str,
    ) -> InvokeOutcome {
        self.stats.allowed += 1;
        ctx.metric_incr("host.allowed");
        ctx.trace(format!("audit=allow app={} user={} {}", app.0, user.0, detail));
        let response = match self.apps.get_mut(&app) {
            Some(state) => state.application.handle(user, payload),
            None => String::new(),
        };
        InvokeOutcome::Allowed { response: response.into() }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_invoke(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        app: AppId,
        user: UserId,
        req: ReqId,
        payload: Arc<str>,
        signature: Option<rsa::Signature>,
    ) {
        self.stats.invokes += 1;
        ctx.metric_incr("host.invokes");
        // Authentication (§2.1): the message must really come from `user`.
        if let Some(registry) = &self.registry {
            let ok = match signature {
                Some(sig) => match registry.public_key(user.into()) {
                    Some(pk) => {
                        let bytes = invoke_signing_bytes(user, app, req, &payload);
                        rsa::verify(&pk, &bytes, &sig)
                    }
                    None => false,
                },
                None => false,
            };
            if !ok {
                self.stats.auth_rejects += 1;
                ctx.metric_incr("host.auth_reject");
                ctx.send(
                    from,
                    ProtoMsg::InvokeReply { req, outcome: InvokeOutcome::BadSignature },
                );
                return;
            }
        }
        let Some(state) = self.apps.get_mut(&app) else {
            ctx.metric_incr("host.unknown_app");
            ctx.send(from, ProtoMsg::InvokeReply { req, outcome: InvokeOutcome::Denied });
            return;
        };
        // Figure 3: cache lookup with expiry.
        match state.cache.lookup(user, ctx.local_now()) {
            CacheDecision::Fresh(limit) => {
                self.stats.cache_hits += 1;
                ctx.metric_incr("host.cache_hit");
                // A cache hit resolves inside this event: no manager
                // round trip, so its check latency is zero by
                // construction. Recording it keeps the latency split
                // histograms directly comparable.
                ctx.metric_observe("host.latency.cache_s", 0.0);
                let detail = format!(
                    "mode=cache now={} limit={}",
                    ctx.local_now().as_nanos(),
                    limit.as_nanos(),
                );
                let outcome = self.allow(ctx, app, user, &payload, &detail);
                ctx.send(from, ProtoMsg::InvokeReply { req, outcome });
            }
            CacheDecision::Expired | CacheDecision::Missing => {
                self.stats.cache_misses += 1;
                ctx.metric_incr("host.cache_miss");
                let pending_id = self.next_pending;
                self.next_pending += 1;
                self.pending.insert(
                    pending_id,
                    PendingInvoke {
                        app,
                        user,
                        requester: from,
                        user_req: req,
                        payload,
                        attempt: 0,
                        attempt_started: ctx.local_now(),
                        query_req: ReqId(u64::MAX),
                        grants: BTreeMap::new(),
                        targets: Vec::new(),
                        unavailable: BTreeSet::new(),
                        timer: None,
                        first_started: ctx.local_now(),
                        background: false,
                    },
                );
                self.start_attempt(ctx, pending_id);
            }
        }
    }

    fn on_query_reply(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        req: ReqId,
        verdict: QueryVerdict,
    ) {
        // Figure 3: responses arriving after the attempt's timer are
        // ignored — the query_index only maps the *current* attempt.
        let Some(&pending_id) = self.query_index.get(&req) else {
            ctx.metric_incr("host.late_reply");
            return;
        };
        let Some(app) = self.pending.get(&pending_id).map(|p| p.app) else { return };
        // Only nodes in the current manager view may vote: a reply from
        // anywhere else (a compromised host guessing request ids, per
        // the §2.1 failure model) must not count toward the quorum.
        let from_manager =
            self.apps.get(&app).map(|s| s.managers.contains(&from)).unwrap_or(false);
        if !from_manager {
            ctx.metric_incr("host.reply_from_non_manager");
            return;
        }
        // Any reply — grant, deny, or recovering — proves the peer is
        // alive; the breaker tracks *silence*, not verdicts.
        if let Some(b) = self.apps.get_mut(&app).and_then(|s| s.breaker.as_mut()) {
            if b.record_success(from) {
                ctx.metric_incr("rt.breaker_close");
                ctx.trace(format!("audit=breaker-close peer={}", from.index()));
            }
        }
        let Some(p) = self.pending.get_mut(&pending_id) else { return };
        match verdict {
            QueryVerdict::Deny => {
                // One deny vetoes: after a revoke reaches its update
                // quorum, every check quorum contains a denier.
                self.finish(ctx, pending_id, FinishKind::Deny);
            }
            QueryVerdict::Grant { te } => {
                p.grants.insert(from, te);
                let needed = self
                    .apps
                    .get(&p.app)
                    .map(|s| s.policy.check_quorum())
                    .unwrap_or(usize::MAX);
                if p.grants.len() >= needed {
                    self.finish(ctx, pending_id, FinishKind::Grant);
                }
            }
            QueryVerdict::Unavailable { .. } => {
                // A recovering manager (§3.4) is *retryable*, not a veto:
                // it neither denies nor grants. If the managers still
                // able to answer cannot form the check quorum, give up on
                // this attempt right away instead of waiting out the
                // query timer.
                ctx.metric_incr("host.manager_unavailable");
                p.unavailable.insert(from);
                let reachable =
                    p.targets.iter().filter(|t| !p.unavailable.contains(t)).count();
                let needed = self
                    .apps
                    .get(&p.app)
                    .map(|s| s.policy.check_quorum())
                    .unwrap_or(usize::MAX);
                if reachable < needed {
                    self.attempt_failed(ctx, pending_id);
                }
            }
        }
    }

    fn on_query_timeout(&mut self, ctx: &mut Context<'_, ProtoMsg>, pending_id: u64) {
        // The attempt's timer ran out: every queried manager that never
        // answered is charged a breaker failure. (The early abort via
        // `Unavailable` replies does not charge anyone — those peers
        // were never given their full timeout.)
        if let Some(p) = self.pending.get(&pending_id) {
            let silent: Vec<NodeId> = p
                .targets
                .iter()
                .filter(|t| !p.grants.contains_key(t) && !p.unavailable.contains(t))
                .copied()
                .collect();
            let app = p.app;
            if let Some(b) = self.apps.get_mut(&app).and_then(|s| s.breaker.as_mut()) {
                let bnow = SimTime::from_nanos(ctx.local_now().as_nanos());
                for peer in silent {
                    if b.record_failure(peer, bnow) == FailureOutcome::Opened {
                        ctx.metric_incr("rt.breaker_open");
                        ctx.trace(format!("audit=breaker-open peer={}", peer.index()));
                    }
                }
            }
        }
        self.attempt_failed(ctx, pending_id);
    }

    /// This attempt cannot produce a quorum (timeout, or every remaining
    /// manager recovering): either run the next attempt or apply the
    /// Figure 4 exhaustion policy.
    fn attempt_failed(&mut self, ctx: &mut Context<'_, ProtoMsg>, pending_id: u64) {
        let Some(p) = self.pending.get(&pending_id) else { return };
        let Some(state) = self.apps.get(&p.app) else { return };
        // Deadline budget: when the wall-clock budget for the *whole*
        // check is spent, stop immediately — burning the remaining
        // attempts only delays the Figure 4 resolution the user is
        // already guaranteed to get.
        let deadline_hit = state
            .policy
            .deadline_budget()
            .map(|budget| ctx.local_now().since(p.first_started) >= budget)
            .unwrap_or(false);
        if deadline_hit {
            ctx.metric_incr("rt.deadline_exceeded");
            ctx.trace(format!(
                "audit=deadline app={} user={} attempt={}",
                p.app.0, p.user.0, p.attempt,
            ));
        }
        let exhausted = deadline_hit || p.attempt >= state.policy.max_attempts();
        if exhausted {
            match state.policy.exhaustion() {
                ExhaustionBehavior::FailOpen => self.finish(ctx, pending_id, FinishKind::FailOpen),
                ExhaustionBehavior::FailClosed => {
                    self.finish(ctx, pending_id, FinishKind::Unavailable)
                }
            }
        } else {
            self.start_attempt(ctx, pending_id);
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum FinishKind {
    Grant,
    Deny,
    FailOpen,
    Unavailable,
}

impl Node for HostNode {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.arm_periodic(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Invoke { app, user, req, payload, signature } => {
                self.on_invoke(ctx, from, app, user, req, payload, signature);
            }
            ProtoMsg::QueryReply { req, app, user, verdict, mac } => {
                if let Some(keys) = &self.channel {
                    let ok = mac
                        .map(|tag| {
                            keys.verify_query_reply(from, ctx.id(), req, app, user, &verdict, &tag)
                        })
                        .unwrap_or(false);
                    if !ok {
                        ctx.metric_incr("host.bad_channel_mac");
                        return;
                    }
                }
                self.on_query_reply(ctx, from, req, verdict);
            }
            ProtoMsg::RevokeNotice { app, user, mac } => {
                if let Some(keys) = &self.channel {
                    let ok = mac
                        .map(|tag| keys.verify_revoke_notice(from, ctx.id(), app, user, &tag))
                        .unwrap_or(false);
                    if !ok {
                        ctx.metric_incr("host.bad_channel_mac");
                        return;
                    }
                }
                if let Some(state) = self.apps.get_mut(&app) {
                    if state.cache.remove(user) {
                        self.stats.revoke_flushes += 1;
                        ctx.metric_incr("host.revoke_flush");
                    }
                }
            }
            ProtoMsg::NsReply { app, managers, ttl } => {
                if let Some(state) = self.apps.get_mut(&app) {
                    // Only the configured (trusted, §3.2) name service
                    // may change the manager view; a forged NsReply
                    // would otherwise redirect checks to an attacker.
                    let trusted = matches!(
                        state.directory,
                        ManagerDirectory::NameService { ns } if ns == from
                    );
                    if !trusted {
                        ctx.metric_incr("host.ns_reply_untrusted");
                        return;
                    }
                    if let Some(t) = state.ns_timer.take() {
                        ctx.cancel_timer(t);
                    }
                    state.ns_round = 0;
                    state.managers = managers;
                    // A flat directory answer replaces any shard map.
                    state.shards = None;
                    // Re-query shortly before the TTL runs out, jittered
                    // so hosts whose TTLs expire together don't storm the
                    // name service with synchronized re-queries.
                    let refresh = jittered_refresh(ttl, ctx.rng());
                    state.ns_timer =
                        Some(ctx.set_timer(refresh, TAG_NS | u64::from(app.0)));
                }
            }
            ProtoMsg::NsRecordReply { app, version, managers, shards, ttl, signature } => {
                self.on_ns_record_reply(ctx, from, app, version, managers, shards.map(|b| *b), ttl, signature);
            }
            _ => {
                ctx.metric_incr("host.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        let payload = tag & TAG_PAYLOAD_MASK;
        match tag & !TAG_PAYLOAD_MASK {
            TAG_QUERY => self.on_query_timeout(ctx, payload),
            TAG_REFRESH => self.on_refresh_timer(ctx, payload),
            TAG_SWEEP => {
                let app = AppId(payload as u32);
                if let Some(state) = self.apps.get_mut(&app) {
                    let swept = state.cache.sweep(ctx.local_now());
                    if swept > 0 {
                        ctx.metric_incr("host.cache_swept");
                    }
                    let interval = state.policy.cache_sweep_interval();
                    ctx.set_timer(interval, TAG_SWEEP | payload);
                }
            }
            TAG_NS => {
                let app = AppId(payload as u32);
                match self.apps.get_mut(&app).map(|s| &s.directory) {
                    Some(ManagerDirectory::NameService { ns }) => {
                        let ns = *ns;
                        let state = self.apps.get_mut(&app).expect("just matched");
                        ctx.metric_incr("host.ns_refresh_rounds");
                        ctx.send(ns, ProtoMsg::NsQuery { app });
                        // Each fruitless round widens the re-query gap
                        // (capped), so a dead name service is probed
                        // gently instead of hammered at full cadence.
                        let retry =
                            state.policy.ns_retry_backoff().delay(state.ns_round, ctx.rng());
                        state.ns_round = state.ns_round.saturating_add(1);
                        state.ns_timer = Some(ctx.set_timer(retry, TAG_NS | payload));
                    }
                    Some(ManagerDirectory::Replicated { .. }) => {
                        self.on_ns_round_timer(ctx, app);
                    }
                    _ => {}
                }
            }
            TAG_NSEXP => {
                self.on_ns_expiry_timer(ctx, AppId(payload as u32));
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // §3.4: the cache is volatile; recovery restarts from empty.
        for state in self.apps.values_mut() {
            state.cache.clear();
            state.ns_timer = None;
            state.ns_round = 0;
            state.ns_replies.clear();
            state.ns_inflight = false;
            state.record_version = 0;
            state.record_expires = None;
            state.ns_expiry_timer = None;
            match state.directory {
                ManagerDirectory::NameService { .. }
                | ManagerDirectory::Replicated { .. } => state.managers.clear(),
                ManagerDirectory::Static(_) => {}
            }
        }
        self.pending.clear();
        self.query_index.clear();
        self.refresh_index.clear();
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.arm_periodic(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::wrapper::CountingApp;
    use wanacl_sim::node::Effect;
    use wanacl_sim::rng::SimRng;

    /// A tiny single-step harness: drives one node event and returns the
    /// effects it produced.
    struct Harness {
        rng: SimRng,
        next_timer: u64,
        now: LocalTime,
        id: NodeId,
    }

    impl Harness {
        fn new(id: usize) -> Self {
            Harness {
                rng: SimRng::seed_from(1),
                next_timer: 0,
                now: LocalTime::ZERO,
                id: NodeId::from_index(id),
            }
        }

        fn at(&mut self, nanos: u64) -> &mut Self {
            self.now = LocalTime::from_nanos(nanos);
            self
        }

        fn deliver(
            &mut self,
            node: &mut HostNode,
            from: usize,
            msg: ProtoMsg,
        ) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            {
                let mut ctx = Context::new(
                    self.id,
                    self.now,
                    &mut effects,
                    &mut self.rng,
                    &mut self.next_timer,
                );
                node.on_message(&mut ctx, NodeId::from_index(from), msg);
            }
            effects
        }
    }

    fn host_with_managers(managers: &[usize]) -> HostNode {
        let ids: Vec<NodeId> = managers.iter().map(|&i| NodeId::from_index(i)).collect();
        HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: Policy::builder(1)
                    .revocation_bound(SimDuration::from_secs(10))
                    .query_timeout(SimDuration::from_millis(100))
                    .max_attempts(1)
                    .build(),
                directory: ManagerDirectory::Static(ids.into()),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )
    }

    fn invoke(user: u64) -> ProtoMsg {
        ProtoMsg::Invoke {
            app: AppId(0),
            user: UserId(user),
            req: ReqId(1),
            payload: "x".into(),
            signature: None,
        }
    }

    fn sends(effects: &[Effect<ProtoMsg>]) -> Vec<(NodeId, &ProtoMsg)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn cold_invoke_queries_every_manager_in_view() {
        let mut host = host_with_managers(&[0, 1, 2]);
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let queries: Vec<NodeId> = sends(&effects)
            .into_iter()
            .filter(|(_, m)| matches!(m, ProtoMsg::Query { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(
            queries,
            vec![NodeId::from_index(0), NodeId::from_index(1), NodeId::from_index(2)]
        );
        assert_eq!(host.stats().cache_misses, 1);
    }

    #[test]
    fn grant_reply_caches_and_answers_requester() {
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        // Extract the query id the host used.
        let req = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Query { req, .. } => Some(*req),
                _ => None,
            })
            .expect("query sent");
        let effects = h.at(1_000).deliver(
            &mut host,
            0,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(1),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(9) },
                mac: None,
            },
        );
        let replies = sends(&effects);
        assert!(replies.iter().any(|(to, m)| {
            *to == NodeId::from_index(7)
                && matches!(m, ProtoMsg::InvokeReply { outcome: InvokeOutcome::Allowed { .. }, .. })
        }));
        // Cached with the delta adjustment: limit anchored at the query
        // send time (t = 0), not the reply time.
        assert_eq!(
            host.cached_limit(AppId(0), UserId(1)),
            Some(LocalTime::from_nanos(SimDuration::from_secs(9).as_nanos()))
        );
    }

    #[test]
    fn deny_reply_rejects_without_caching() {
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(2));
        let req = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Query { req, .. } => Some(*req),
                _ => None,
            })
            .expect("query sent");
        let effects = h.deliver(
            &mut host,
            0,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(2),
                verdict: QueryVerdict::Deny,
                mac: None,
            },
        );
        assert!(sends(&effects).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::InvokeReply { outcome: InvokeOutcome::Denied, .. }
        )));
        assert_eq!(host.cached_entries(AppId(0)), 0);
        assert_eq!(host.stats().denied, 1);
    }

    #[test]
    fn reply_from_outside_manager_view_is_ignored() {
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let req = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Query { req, .. } => Some(*req),
                _ => None,
            })
            .expect("query sent");
        // Node 5 is not a manager.
        let effects = h.deliver(
            &mut host,
            5,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(1),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(9) },
                mac: None,
            },
        );
        assert!(sends(&effects).is_empty(), "forged grant must produce nothing");
        assert_eq!(host.cached_entries(AppId(0)), 0);
    }

    #[test]
    fn revoke_notice_flushes_only_named_user() {
        let mut host = host_with_managers(&[0]);
        // Seed the cache directly through the protocol: grant user 1.
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let req = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Query { req, .. } => Some(*req),
                _ => None,
            })
            .expect("query sent");
        h.deliver(
            &mut host,
            0,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(1),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(9) },
                mac: None,
            },
        );
        assert_eq!(host.cached_entries(AppId(0)), 1);
        // A notice for a different user is a no-op.
        h.deliver(&mut host, 0, ProtoMsg::RevokeNotice { app: AppId(0), user: UserId(2), mac: None });
        assert_eq!(host.cached_entries(AppId(0)), 1);
        h.deliver(&mut host, 0, ProtoMsg::RevokeNotice { app: AppId(0), user: UserId(1), mac: None });
        assert_eq!(host.cached_entries(AppId(0)), 0);
        assert_eq!(host.stats().revoke_flushes, 1);
    }

    fn host_with_two_managers_two_attempts() -> HostNode {
        HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy: Policy::builder(1)
                    .revocation_bound(SimDuration::from_secs(10))
                    .query_timeout(SimDuration::from_millis(100))
                    .max_attempts(2)
                    .build(),
                directory: ManagerDirectory::Static(
                    vec![NodeId::from_index(0), NodeId::from_index(1)].into(),
                ),
                application: Box::new(CountingApp::new()),
            }],
            None,
        )
    }

    fn query_req(effects: &[Effect<ProtoMsg>]) -> ReqId {
        sends(effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Query { req, .. } => Some(*req),
                _ => None,
            })
            .expect("query sent")
    }

    fn unavailable_reply(req: ReqId, user: u64) -> ProtoMsg {
        ProtoMsg::QueryReply {
            req,
            app: AppId(0),
            user: UserId(user),
            verdict: QueryVerdict::Unavailable {
                reason: crate::msg::RejectReason::Recovering,
            },
            mac: None,
        }
    }

    #[test]
    fn unavailable_reply_is_retryable_not_a_veto() {
        let mut host = host_with_two_managers_two_attempts();
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let req = query_req(&effects);
        // Manager 0 is recovering: no outcome yet — C = 1 is still
        // reachable through manager 1.
        let e1 = h.deliver(&mut host, 0, unavailable_reply(req, 1));
        assert!(
            !sends(&e1).iter().any(|(_, m)| matches!(m, ProtoMsg::InvokeReply { .. })),
            "an unavailable manager must not settle the invoke"
        );
        // Manager 1 grants: quorum met, allowed and cached as usual.
        let e2 = h.deliver(
            &mut host,
            1,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(1),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(9) },
                mac: None,
            },
        );
        assert!(sends(&e2).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::InvokeReply { outcome: InvokeOutcome::Allowed { .. }, .. }
        )));
        assert_eq!(host.stats().denied, 0);
    }

    #[test]
    fn quorum_impossible_after_unavailable_starts_next_attempt_immediately() {
        let mut host = host_with_two_managers_two_attempts();
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let req1 = query_req(&effects);
        h.deliver(&mut host, 0, unavailable_reply(req1, 1));
        // The second unavailable leaves 0 reachable < C = 1: the host
        // re-queries (attempt 2) without waiting for the query timer.
        let effects = h.deliver(&mut host, 1, unavailable_reply(req1, 1));
        let req2 = query_req(&effects);
        assert_ne!(req1, req2, "a fresh attempt uses a fresh query id");
        // Attempt 2 also finds every manager recovering: attempts are
        // exhausted and the default fail-closed policy answers
        // Unavailable (never Denied — recovery is not a veto).
        h.deliver(&mut host, 0, unavailable_reply(req2, 1));
        let effects = h.deliver(&mut host, 1, unavailable_reply(req2, 1));
        assert!(sends(&effects).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::InvokeReply { outcome: InvokeOutcome::Unavailable, .. }
        )));
        assert_eq!(host.stats().unavailable, 1);
        assert_eq!(host.stats().denied, 0);
    }

    fn metric_incrs(effects: &[Effect<ProtoMsg>]) -> Vec<&str> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::MetricIncr { name } => Some(*name),
                _ => None,
            })
            .collect()
    }

    fn host_with_directory(directory: ManagerDirectory, policy: Policy) -> HostNode {
        HostNode::new(
            vec![AppHost {
                app: AppId(0),
                policy,
                directory,
                application: Box::new(CountingApp::new()),
            }],
            None,
        )
    }

    fn base_policy() -> crate::policy::PolicyBuilder {
        Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(10))
            .query_timeout(SimDuration::from_millis(100))
            .max_attempts(3)
    }

    #[test]
    fn empty_manager_view_fails_closed_immediately() {
        // Regression: with a name-service directory and no NsReply yet,
        // the manager view is empty. The invoke used to sit through
        // R query timeouts with nobody to query (and the Sequential
        // fan-out arm risked a mod-by-zero on the empty view); it must
        // resolve immediately per the exhaustion policy instead.
        let ns = NodeId::from_index(5);
        let mut host = host_with_directory(
            ManagerDirectory::NameService { ns },
            base_policy().fanout(QueryFanout::Sequential).build(),
        );
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        assert!(sends(&effects).iter().any(|(to, m)| {
            *to == NodeId::from_index(7)
                && matches!(m, ProtoMsg::InvokeReply { outcome: InvokeOutcome::Unavailable, .. })
        }), "empty view must answer Unavailable in the same event");
        assert!(metric_incrs(&effects).contains(&"host.empty_manager_view"));
        assert!(
            !effects.iter().any(|e| matches!(e, Effect::SetTimer { .. })),
            "no query timer may be armed for an unqueryable attempt"
        );
        assert_eq!(host.stats().unavailable, 1);
        assert_eq!(host.stats().queries_sent, 0);
    }

    #[test]
    fn empty_manager_view_honours_fail_open_policy() {
        let ns = NodeId::from_index(5);
        let mut host = host_with_directory(
            ManagerDirectory::NameService { ns },
            base_policy().exhaustion(ExhaustionBehavior::FailOpen).build(),
        );
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        assert!(sends(&effects).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::InvokeReply { outcome: InvokeOutcome::Allowed { .. }, .. }
        )));
        assert_eq!(host.stats().fail_open_allows, 1);
        // Fail-open caches nothing: the next invoke re-checks.
        assert_eq!(host.cached_entries(AppId(0)), 0);
    }

    #[test]
    fn ns_outage_emptying_the_view_fails_attempts_not_the_host() {
        // Drive the outage through the protocol: a trusted NsReply
        // carrying an empty manager set (the NS lost its registrations)
        // replaces the view, then an invoke arrives.
        let ns = 5usize;
        let mut host = host_with_directory(
            ManagerDirectory::NameService { ns: NodeId::from_index(ns) },
            base_policy().build(),
        );
        let mut h = Harness::new(9);
        h.deliver(
            &mut host,
            ns,
            ProtoMsg::NsReply {
                app: AppId(0),
                managers: vec![NodeId::from_index(0)],
                ttl: SimDuration::from_secs(60),
            },
        );
        assert_eq!(host.manager_view(AppId(0)).len(), 1);
        h.deliver(
            &mut host,
            ns,
            ProtoMsg::NsReply { app: AppId(0), managers: Vec::new(), ttl: SimDuration::from_secs(60) },
        );
        assert!(host.manager_view(AppId(0)).is_empty());
        let effects = h.deliver(&mut host, 7, invoke(1));
        assert!(sends(&effects).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::InvokeReply { outcome: InvokeOutcome::Unavailable, .. }
        )));
        // The host survives to serve a later invoke once the view heals.
        h.deliver(
            &mut host,
            ns,
            ProtoMsg::NsReply {
                app: AppId(0),
                managers: vec![NodeId::from_index(0)],
                ttl: SimDuration::from_secs(60),
            },
        );
        let effects = h.deliver(&mut host, 7, invoke(1));
        assert!(sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::Query { .. })));
    }

    #[test]
    fn unknown_app_invoke_is_denied_not_a_crash() {
        // Regression for the deny-not-crash contract on the public entry
        // path: a malformed client naming an unserved app gets Denied.
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        let effects = h.deliver(
            &mut host,
            7,
            ProtoMsg::Invoke {
                app: AppId(42),
                user: UserId(1),
                req: ReqId(1),
                payload: "x".into(),
                signature: None,
            },
        );
        assert!(sends(&effects).iter().any(|(to, m)| {
            *to == NodeId::from_index(7)
                && matches!(m, ProtoMsg::InvokeReply { outcome: InvokeOutcome::Denied, .. })
        }));
        assert!(metric_incrs(&effects).contains(&"host.unknown_app"));
        // The inspection accessors follow the same contract.
        assert!(host.try_application_as::<CountingApp>(AppId(42)).is_none());
        assert!(host.try_application_as::<CountingApp>(AppId(0)).is_some());
    }

    #[test]
    fn latency_split_records_cache_and_quorum_paths() {
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        let effects = h.deliver(&mut host, 7, invoke(1));
        let req = query_req(&effects);
        let effects = h.at(1_000).deliver(
            &mut host,
            0,
            ProtoMsg::QueryReply {
                req,
                app: AppId(0),
                user: UserId(1),
                verdict: QueryVerdict::Grant { te: SimDuration::from_secs(9) },
                mac: None,
            },
        );
        let observes: Vec<&str> = effects
            .iter()
            .filter_map(|e| match e {
                Effect::MetricObserve { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert!(observes.contains(&"host.check_latency_s"), "{observes:?}");
        assert!(observes.contains(&"host.latency.quorum_s"), "{observes:?}");
        // A second invoke hits the cache and records the cache split.
        let effects = h.at(2_000).deliver(&mut host, 7, invoke(1));
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::MetricObserve { name: "host.latency.cache_s", .. }
        )));
    }

    #[test]
    fn crash_clears_volatile_state() {
        let mut host = host_with_managers(&[0]);
        let mut h = Harness::new(9);
        h.deliver(&mut host, 7, invoke(1));
        assert_eq!(host.stats().cache_misses, 1);
        host.on_crash();
        assert_eq!(host.cached_entries(AppId(0)), 0);
        // Stats survive (they are measurement, not protocol state).
        assert_eq!(host.stats().cache_misses, 1);
    }

    // ---- replicated-directory quorum reads ----

    use crate::msg::NsRecord;
    use rand::SeedableRng;
    use wanacl_auth::rsa::KeyPair;

    const TTL: SimDuration = SimDuration::from_secs(60);

    fn writer_setup() -> (Arc<KeyRegistry>, KeyPair, PrincipalId) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let writer = PrincipalId(2_000_000);
        let mut registry = KeyRegistry::new();
        let kp = registry.enroll(writer, &mut rng);
        (Arc::new(registry), kp, writer)
    }

    fn replicated_host(read_quorum: usize) -> (HostNode, KeyPair, PrincipalId) {
        let replicas: Vec<NodeId> = (0..3).map(NodeId::from_index).collect();
        let (registry, kp, writer) = writer_setup();
        let mut host = host_with_directory(
            ManagerDirectory::Replicated { replicas, read_quorum },
            base_policy().build(),
        );
        host.set_ns_trust(registry, writer);
        (host, kp, writer)
    }

    fn record_reply(record: &NsRecord) -> ProtoMsg {
        ProtoMsg::NsRecordReply {
            app: record.app,
            version: record.version,
            managers: record.managers.clone(),
            shards: None,
            ttl: TTL,
            signature: Some(record.signature),
        }
    }

    fn start_host(h: &mut Harness, host: &mut HostNode) -> Vec<Effect<ProtoMsg>> {
        let mut effects = Vec::new();
        {
            let mut ctx =
                Context::new(h.id, h.now, &mut effects, &mut h.rng, &mut h.next_timer);
            host.on_start(&mut ctx);
        }
        effects
    }

    fn fire_timer(h: &mut Harness, host: &mut HostNode, tag: u64) -> Vec<Effect<ProtoMsg>> {
        let mut effects = Vec::new();
        {
            let mut ctx =
                Context::new(h.id, h.now, &mut effects, &mut h.rng, &mut h.next_timer);
            host.on_timer(&mut ctx, tag);
        }
        effects
    }

    fn traces(effects: &[Effect<ProtoMsg>]) -> Vec<&str> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Trace { text } => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn quorum_read_installs_freshest_verified_record() {
        let (mut host, kp, writer) = replicated_host(2);
        let mut h = Harness::new(9);
        let effects = start_host(&mut h, &mut host);
        // The round fans a query to every replica.
        let queried: Vec<NodeId> = sends(&effects)
            .into_iter()
            .filter(|(_, m)| matches!(m, ProtoMsg::NsQuery { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(queried.len(), 3);
        let v1 = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        let v2 = NsRecord::signed(
            AppId(0),
            2,
            vec![NodeId::from_index(4), NodeId::from_index(5)],
            writer,
            &kp.secret,
        );
        // One verified reply is below quorum: nothing installs.
        let e1 = h.at(1_000).deliver(&mut host, 0, record_reply(&v1));
        assert!(host.manager_view(AppId(0)).is_empty());
        assert!(!metric_incrs(&e1).contains(&"ns.installs"));
        // The second reply carries a fresher version: it wins.
        let e2 = h.at(2_000).deliver(&mut host, 1, record_reply(&v2));
        assert_eq!(host.manager_view(AppId(0)).len(), 2);
        assert_eq!(host.directory_version(AppId(0)), 2);
        assert!(metric_incrs(&e2).contains(&"ns.installs"));
        assert!(
            e2.iter().any(|e| matches!(
                e,
                Effect::MetricObserve { name: "ns.lookup_latency_s", .. }
            )),
            "install must record the lookup latency"
        );
        let note = traces(&e2)
            .into_iter()
            .find(|t| t.starts_with("audit=ns-install"))
            .expect("install note");
        assert!(note.contains("version=2"), "{note}");
        assert!(note.contains("mgrs=4;5"), "{note}");
        // A straggler from the settled round is ignored.
        let e3 = h.at(3_000).deliver(&mut host, 2, record_reply(&v1));
        assert!(metric_incrs(&e3).contains(&"host.late_reply"));
        assert_eq!(host.directory_version(AppId(0)), 2);
    }

    #[test]
    fn forged_record_is_rejected_and_does_not_count_toward_quorum() {
        let (mut host, kp, writer) = replicated_host(2);
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let genuine = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        // A malicious replica bumps the version but cannot re-sign.
        let forged = ProtoMsg::NsRecordReply {
            app: AppId(0),
            version: 2,
            managers: vec![NodeId::from_index(6)],
            shards: None,
            ttl: TTL,
            signature: Some(genuine.signature),
        };
        let e1 = h.deliver(&mut host, 0, forged);
        assert!(metric_incrs(&e1).contains(&"host.ns_reject_bad_sig"));
        // An unsigned positive record is equally worthless.
        let unsigned = ProtoMsg::NsRecordReply {
            app: AppId(0),
            version: 2,
            managers: vec![NodeId::from_index(6)],
            shards: None,
            ttl: TTL,
            signature: None,
        };
        let e2 = h.deliver(&mut host, 1, unsigned);
        assert!(metric_incrs(&e2).contains(&"host.ns_reject_bad_sig"));
        assert!(host.manager_view(AppId(0)).is_empty());
        // Two genuine replies still reach the quorum afterwards.
        h.deliver(&mut host, 0, record_reply(&genuine));
        h.deliver(&mut host, 2, record_reply(&genuine));
        assert_eq!(host.directory_version(AppId(0)), 1);
        assert_eq!(host.manager_view(AppId(0)), &[NodeId::from_index(4)]);
        // And a reply from outside the replica set never counts.
        let e3 = h.deliver(&mut host, 8, record_reply(&genuine));
        assert!(metric_incrs(&e3).contains(&"host.ns_reply_untrusted"));
    }

    #[test]
    fn ns_trust_unsigned_bug_installs_forged_record() {
        // The planted bug for invariant I7: a host that skips signature
        // verification happily installs a forged manager set.
        let (mut host, kp, writer) = replicated_host(2);
        host.inject_ns_trust_unsigned();
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let genuine = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        let forged = ProtoMsg::NsRecordReply {
            app: AppId(0),
            version: 7,
            managers: vec![NodeId::from_index(6)],
            shards: None,
            ttl: TTL,
            signature: Some(genuine.signature),
        };
        h.deliver(&mut host, 0, record_reply(&genuine));
        h.deliver(&mut host, 1, forged);
        assert_eq!(host.directory_version(AppId(0)), 7);
        assert_eq!(host.manager_view(AppId(0)), &[NodeId::from_index(6)]);
    }

    #[test]
    fn degraded_round_keeps_last_known_good_then_ttl_expiry_fails_closed() {
        let (mut host, kp, writer) = replicated_host(2);
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let v1 = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        h.deliver(&mut host, 0, record_reply(&v1));
        h.deliver(&mut host, 1, record_reply(&v1));
        assert_eq!(host.directory_version(AppId(0)), 1);
        // The scheduled refresh fires: a new round starts (no timeout yet).
        let tag = TAG_NS; // app 0 payload
        let e1 = h.at(TTL.as_nanos() * 8 / 10).fire(&mut host, tag);
        assert!(!metric_incrs(&e1).contains(&"ns.read_timeout"));
        assert!(metric_incrs(&e1).contains(&"ns.read_rounds"));
        // That round gets no replies; the retry timer fires inside the
        // TTL: degraded mode, the stale-but-live record keeps serving.
        let e2 = h.at(TTL.as_nanos() * 9 / 10).fire(&mut host, tag);
        assert!(metric_incrs(&e2).contains(&"ns.read_timeout"));
        assert!(metric_incrs(&e2).contains(&"ns.degraded_rounds"));
        assert!(traces(&e2).iter().any(|t| t.starts_with("audit=ns-degraded")));
        assert_eq!(host.manager_view(AppId(0)), &[NodeId::from_index(4)]);
        // The TTL lapses without a refresh: the view empties (fail-closed
        // through the empty-manager-view path).
        let e3 = h.at(TTL.as_nanos() + 1).fire(&mut host, TAG_NSEXP);
        assert!(metric_incrs(&e3).contains(&"ns.record_expired"));
        assert!(traces(&e3).iter().any(|t| t.starts_with("audit=ns-expire")));
        assert!(host.manager_view(AppId(0)).is_empty());
        // A later quorum read heals the view.
        h.deliver(&mut host, 0, record_reply(&v1));
        h.deliver(&mut host, 2, record_reply(&v1));
        assert_eq!(host.manager_view(AppId(0)), &[NodeId::from_index(4)]);
    }

    #[test]
    fn stale_quorum_never_rolls_the_view_back() {
        let (mut host, kp, writer) = replicated_host(2);
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let v1 = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        let v2 = NsRecord::signed(AppId(0), 2, vec![NodeId::from_index(5)], writer, &kp.secret);
        h.deliver(&mut host, 0, record_reply(&v2));
        h.deliver(&mut host, 1, record_reply(&v2));
        assert_eq!(host.directory_version(AppId(0)), 2);
        // A later round reaches only stale replicas answering v1.
        h.at(1_000_000).fire(&mut host, TAG_NS);
        h.deliver(&mut host, 0, record_reply(&v1));
        let e = h.deliver(&mut host, 1, record_reply(&v1));
        assert!(metric_incrs(&e).contains(&"ns.stale_quorum"));
        assert_eq!(host.directory_version(AppId(0)), 2);
        assert_eq!(host.manager_view(AppId(0)), &[NodeId::from_index(5)]);
    }

    #[test]
    fn negative_quorum_installs_empty_view() {
        let (mut host, _kp, _writer) = replicated_host(2);
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let negative = ProtoMsg::NsRecordReply {
            app: AppId(0),
            version: 0,
            managers: Vec::new(),
            shards: None,
            ttl: SimDuration::from_secs(15),
            signature: None,
        };
        h.deliver(&mut host, 0, negative.clone());
        let e = h.deliver(&mut host, 1, negative);
        assert!(metric_incrs(&e).contains(&"ns.installs"));
        assert!(host.manager_view(AppId(0)).is_empty());
        assert_eq!(host.directory_version(AppId(0)), 0);
    }

    #[test]
    fn replicated_crash_clears_directory_state() {
        let (mut host, kp, writer) = replicated_host(2);
        let mut h = Harness::new(9);
        start_host(&mut h, &mut host);
        let v1 = NsRecord::signed(AppId(0), 1, vec![NodeId::from_index(4)], writer, &kp.secret);
        h.deliver(&mut host, 0, record_reply(&v1));
        h.deliver(&mut host, 1, record_reply(&v1));
        assert_eq!(host.directory_version(AppId(0)), 1);
        host.on_crash();
        assert!(host.manager_view(AppId(0)).is_empty());
        assert_eq!(host.directory_version(AppId(0)), 0);
        // Recovery restarts the quorum-read machinery from scratch.
        let effects = {
            let mut effects = Vec::new();
            let mut ctx =
                Context::new(h.id, h.now, &mut effects, &mut h.rng, &mut h.next_timer);
            host.on_recover(&mut ctx);
            effects
        };
        assert!(sends(&effects).iter().any(|(_, m)| matches!(m, ProtoMsg::NsQuery { .. })));
    }

    impl Harness {
        fn fire(&mut self, node: &mut HostNode, tag: u64) -> Vec<Effect<ProtoMsg>> {
            fire_timer(self, node, tag)
        }
    }
}
