//! The always-on safety-invariant oracle.
//!
//! An [`InvariantOracle`] is a passive [`Observer`] attached to a
//! [`World`](wanacl_sim::world::World): it watches the structured
//! `audit=` notes that hosts and managers emit (see [`crate::audit`])
//! *as the simulation runs*, and re-checks the paper's safety claims
//! independently of the protocol code under test. Unlike the offline
//! [`AuditLog`](crate::audit::AuditLog), it works even with the trace
//! buffer disabled, and every violation carries the **event index** of
//! the offending event — a stable coordinate in the deterministic
//! schedule, so `(seed, plan, index)` pinpoints the bug in any replay.
//!
//! Invariants checked:
//!
//! * **Bounded revocation (I1)** — once a revoke of `(app, user)` is
//!   stable (update quorum reached), no host may allow that user more
//!   than `Te` later. Fail-open allows are exempt: Figure 4's fail-open
//!   mode deliberately trades this guarantee for availability.
//! * **Quorum intersection (I2)** — every quorum-backed allow must cite
//!   at least `C` *distinct* managers.
//! * **Cache expiry (I3)** — a cache-hit allow must happen strictly
//!   before the entry's limit, and a stored entry's lifetime must not
//!   exceed the local expiry budget `te = b·Te`.
//! * **Freeze safety (I4)** — `Ti + te ≤ Te` must hold statically, and a
//!   frozen manager (§3.3) must not issue grants.
//! * **Durability (I5)** — every op a storage-backed manager marked
//!   durable (WAL-synced *before* the ack that lets it count toward an
//!   update quorum) must still be present — at the same or a newer
//!   last-writer stamp — after any disk recovery by that manager.
//!   Sync-mode recoveries are exempt: without storage nothing was ever
//!   promised durable.
//! * **Tenant isolation (I8)** — in a sharded deployment, every
//!   quorum-backed allow must cite only managers that own the subject's
//!   bucket in some registered version of the tenant's shard map. A
//!   manager from another tenant (or another shard) confirming a check
//!   is cross-tenant contamination.
//! * **Rebalance safety (I9)** — every shard install must replay exactly
//!   the op set its source handed off: matching digest and count per
//!   `(shard, epoch, source)`, and no install without a corresponding
//!   handoff. A lost or doubled grant/revoke during the move diverges
//!   the FNV digest.

use std::collections::{BTreeMap, BTreeSet};

use wanacl_sim::node::NodeId;
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::trace::TraceEvent;
use wanacl_sim::world::Observer;

use crate::policy::Policy;
use crate::types::{user_bucket, AppId, UserId};

/// Which safety invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantKind {
    /// I1: an allow happened more than `Te` after a stable revoke.
    BoundedRevocation,
    /// I2: an allow cited fewer than `C` distinct confirming managers.
    QuorumIntersection,
    /// I3: a cache entry outlived its limit or its `te` budget.
    CacheExpiry,
    /// I4: freeze-strategy safety (static bound or grant-while-frozen).
    FreezeSafety,
    /// I5: a disk recovery lost or rolled back an op the manager had
    /// already marked durable (and therefore acked).
    Durability,
    /// I6: a host acted on a directory record past its TTL after a
    /// fresher version was quorum-acknowledged.
    DirectoryFreshness,
    /// I7: a host installed a manager set no legitimate writer published.
    DirectoryIntegrity,
    /// I8: a quorum allow cited a manager outside the subject's shard in
    /// every registered version of the tenant's shard map.
    TenantIsolation,
    /// I9: a shard handoff lost or invented operations — the install
    /// digest diverged from the source's, or had no source at all.
    RebalanceSafety,
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InvariantKind::BoundedRevocation => "bounded-revocation",
            InvariantKind::QuorumIntersection => "quorum-intersection",
            InvariantKind::CacheExpiry => "cache-expiry",
            InvariantKind::FreezeSafety => "freeze-safety",
            InvariantKind::Durability => "durability",
            InvariantKind::DirectoryFreshness => "directory-freshness",
            InvariantKind::DirectoryIntegrity => "directory-integrity",
            InvariantKind::TenantIsolation => "tenant-isolation",
            InvariantKind::RebalanceSafety => "rebalance-safety",
        };
        f.write_str(s)
    }
}

/// One invariant violation caught by the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleViolation {
    /// Real simulation time of the offending event.
    pub at: SimTime,
    /// Index of the offending event in the deterministic schedule —
    /// combined with the seed and nemesis plan this makes the violation
    /// replayable.
    pub event_index: u64,
    /// The node whose note triggered the check.
    pub node: NodeId,
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable account of the evidence.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] event #{} {}: {} violated: {}",
            self.at, self.event_index, self.node, self.kind, self.detail
        )
    }
}

/// Counters describing how much evidence the oracle actually saw — a
/// campaign with zero violations but also zero checked allows proved
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Allow events checked.
    pub allows: u64,
    /// Quorum-backed allows whose manager sets were checked.
    pub quorum_allows: u64,
    /// Cache-hit allows whose limits were checked.
    pub cache_allows: u64,
    /// Fail-open allows (exempt from I1).
    pub fail_open_allows: u64,
    /// Revoke-stable events observed.
    pub revokes: u64,
    /// Cache-store events checked against the `te` budget.
    pub cache_stores: u64,
    /// Manager grants checked against freeze state.
    pub grants: u64,
    /// Ops observed being marked durable by storage-backed managers.
    pub durable_ops: u64,
    /// Disk-mode recoveries checked against the durable notes.
    pub disk_recoveries: u64,
    /// Directory records observed being published or anti-entropy
    /// applied on replicas.
    pub ns_publishes: u64,
    /// Host directory installs checked against I6/I7.
    pub ns_installs: u64,
    /// Directory versions that reached the write quorum (arming I6).
    pub ns_acked_versions: u64,
    /// Quorum allows checked against a registered shard map (I8).
    pub shard_allows: u64,
    /// Source-side shard handoff notes observed (I9).
    pub shard_handoffs: u64,
    /// Target-side shard install notes checked (I9).
    pub shard_installs: u64,
}

/// One manager's durably-noted slots: `(app, user, right)` → newest
/// `(seq, origin)` stamp fsynced before an ack.
type DurableSlots = BTreeMap<(AppId, UserId, String), (u64, u64)>;

/// In-flight allowance added to the I6 freshness deadline: the
/// longest a directory reply generated *before* a newer version's
/// write-quorum ack can still be travelling toward a host. Sized to
/// dominate the nemesis delay-spike ceiling (~2.5 s extra one-way
/// latency) so a reply that raced the ack never counts as a violation,
/// while a record retained unboundedly past its TTL still trips I6.
pub const NS_INFLIGHT_SLACK: SimDuration = SimDuration::from_secs(3);

/// Replicated-directory shape the oracle checks I6/I7 against.
#[derive(Debug, Clone, Copy)]
struct DirectoryConfig {
    /// Total replica count R.
    replicas: usize,
    /// The hosts' read quorum Q.
    read_quorum: usize,
    /// Worst-case real-time span of a record's TTL on a host clock
    /// honouring the policy's rate bound (TTL / ρ), plus slack.
    ttl_real: SimDuration,
}

impl DirectoryConfig {
    /// The write quorum W = R − Q + 1: once a version sits on W
    /// replicas, every read quorum intersects it, so no correct host
    /// can quorum-read a staler version from then on.
    fn write_quorum(&self) -> usize {
        self.replicas - self.read_quorum + 1
    }
}

/// One registered shard-map row: `(shard, lo, hi, owner node indexes)`.
type ShardMapRow = (u32, u8, u8, BTreeSet<usize>);

/// The online safety checker. Attach with
/// [`World::add_observer`](wanacl_sim::world::World::add_observer);
/// retrieve violations afterwards via
/// [`World::observer_as`](wanacl_sim::world::World::observer_as).
#[derive(Debug)]
pub struct InvariantOracle {
    te_real: SimDuration,
    te_budget: SimDuration,
    check_quorum: usize,
    rate_bound: f64,
    slack: SimDuration,
    /// Newest applied `Add` op per (app, user), in the managers'
    /// `(seq, origin)` last-writer-wins order.
    last_add: BTreeMap<(AppId, UserId), (u64, u64)>,
    /// Stable revoke ops per (app, user), each with its earliest
    /// stabilization time. A user counts as revoked only while some
    /// stable revoke is LWW-newer than every applied add — admin
    /// resends can legitimately re-grant *after* a revoke stabilizes,
    /// and stable-event arrival order does not reflect apply order.
    stable_revokes: BTreeMap<(AppId, UserId), BTreeMap<(u64, u64), SimTime>>,
    /// Managers currently frozen per app.
    frozen: BTreeSet<(NodeId, AppId)>,
    /// Per manager: slot → newest `(seq, origin)` stamp it marked
    /// durable. The lower bound any later disk recovery must reach.
    durable: BTreeMap<NodeId, DurableSlots>,
    /// Replicated-directory shape; `None` disables the I6/I7 checks.
    directory: Option<DirectoryConfig>,
    /// Distinct replicas seen holding each (app, version) — from
    /// `ns-publish` / `ns-apply` notes.
    ns_replica_records: BTreeMap<(AppId, u64), BTreeSet<NodeId>>,
    /// Highest write-quorum-acknowledged version per app, with the
    /// earliest time it reached the write quorum.
    ns_acked: BTreeMap<AppId, (u64, SimTime)>,
    /// Every (app, version, manager-set) a legitimate replica held —
    /// the I7 whitelist a host install must match.
    ns_published: BTreeSet<(AppId, u64, String)>,
    /// Registered shard maps (I8): per app, per published version, the
    /// entries as `(shard, lo, hi, owner node indexes)`.
    shard_maps: BTreeMap<AppId, BTreeMap<u64, Vec<ShardMapRow>>>,
    /// Source-side handoff claims (I9): `(shard, epoch, source index)`
    /// → `(digest, op count)`.
    handoff_digests: BTreeMap<(u32, u64, usize), (u64, u64)>,
    violations: Vec<OracleViolation>,
    stats: OracleStats,
    digest: u64,
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one audit note into a running FNV-1a digest. The digest is a
/// cheap, order-sensitive fingerprint of the full audit stream — two
/// runs of the same seed must produce the same digest, which is how the
/// parallel campaign executor proves bit-for-bit determinism.
fn fnv1a_note(mut hash: u64, node: NodeId, text: &str) -> u64 {
    for byte in node.index().to_le_bytes().into_iter().chain(text.bytes()).chain([0xff]) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl InvariantOracle {
    /// Builds an oracle for a deployment where every app runs `policy`.
    ///
    /// `slack` absorbs measurement fuzz at the `Te` boundary; pass
    /// [`SimDuration::ZERO`] for the exact paper bound (sound whenever
    /// every clock in the run respects the policy's rate bound).
    ///
    /// The static freeze-safety bound `Ti + te ≤ Te` is checked here; a
    /// violation is recorded at time zero.
    pub fn new(policy: &Policy, slack: SimDuration) -> Self {
        let mut o = InvariantOracle {
            te_real: policy.revocation_bound(),
            te_budget: policy.expiry_budget(),
            check_quorum: policy.check_quorum(),
            rate_bound: policy.clock_rate_bound(),
            slack,
            last_add: BTreeMap::new(),
            stable_revokes: BTreeMap::new(),
            frozen: BTreeSet::new(),
            durable: BTreeMap::new(),
            directory: None,
            ns_replica_records: BTreeMap::new(),
            ns_acked: BTreeMap::new(),
            ns_published: BTreeSet::new(),
            shard_maps: BTreeMap::new(),
            handoff_digests: BTreeMap::new(),
            violations: Vec::new(),
            stats: OracleStats::default(),
            digest: FNV_OFFSET,
        };
        if let Some(freeze) = policy.freeze() {
            if freeze.ti + policy.expiry_budget() > policy.revocation_bound() {
                o.violations.push(OracleViolation {
                    at: SimTime::ZERO,
                    event_index: 0,
                    node: NodeId::ENV,
                    kind: InvariantKind::FreezeSafety,
                    detail: format!(
                        "static bound broken: Ti {} + te {} > Te {}",
                        freeze.ti,
                        policy.expiry_budget(),
                        policy.revocation_bound()
                    ),
                });
            }
        }
        o
    }

    /// Enables the I6/I7 replicated-directory checks for a deployment
    /// of `replicas` directory replicas read with `read_quorum`, whose
    /// records carry `ttl`. The freshness bound is scaled by the
    /// policy's clock-rate bound — a slow-but-legal host clock may hold
    /// a record for up to `ttl / ρ` real time — and padded by
    /// [`NS_INFLIGHT_SLACK`]: a quorum reply carrying the old version
    /// can already be on the wire when the new version reaches its
    /// write quorum, so a host may legitimately install the old record
    /// up to one maximum message delay *after* the ack and then keep it
    /// for a full TTL.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= read_quorum <= replicas`.
    pub fn set_directory(&mut self, replicas: usize, read_quorum: usize, ttl: SimDuration) {
        assert!(
            read_quorum >= 1 && read_quorum <= replicas,
            "read quorum must satisfy 1 <= q <= replicas"
        );
        self.directory = Some(DirectoryConfig {
            replicas,
            read_quorum,
            ttl_real: ttl.div_f64(self.rate_bound) + NS_INFLIGHT_SLACK,
        });
    }

    /// Registers a published shard map version for `app`, arming the I8
    /// tenant-isolation check: from now on every quorum allow for a user
    /// of `app` must cite only managers owning the user's bucket in
    /// *some* registered version (tolerating map-install races without
    /// tolerating cross-tenant contamination). Call once for the genesis
    /// map and once per rebalance.
    pub fn expect_shard_map(&mut self, app: AppId, version: u64, entries: &[crate::msg::ShardEntry]) {
        let rows = entries
            .iter()
            .map(|e| {
                (e.shard.0, e.lo, e.hi, e.managers.iter().map(|m| m.index()).collect())
            })
            .collect();
        self.shard_maps.entry(app).or_default().insert(version, rows);
    }

    /// The violations found so far (empty means every checked event was
    /// safe).
    pub fn violations(&self) -> &[OracleViolation] {
        &self.violations
    }

    /// Whether no invariant has been broken so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Evidence counters.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Order-sensitive FNV-1a fingerprint of every audit note seen so
    /// far. Equal digests mean the two runs emitted byte-identical
    /// audit streams in the same order.
    pub fn audit_digest(&self) -> u64 {
        self.digest
    }

    fn fail(
        &mut self,
        at: SimTime,
        index: u64,
        node: NodeId,
        kind: InvariantKind,
        detail: String,
    ) {
        self.violations.push(OracleViolation { at, event_index: index, node, kind, detail });
    }

    /// When the user became definitively revoked: the earliest stable
    /// revoke not overridden by a LWW-newer applied add. `None` while
    /// the user effectively holds the right.
    fn revoked_since(&self, app: AppId, user: UserId) -> Option<SimTime> {
        let add = self.last_add.get(&(app, user)).copied();
        self.stable_revokes
            .get(&(app, user))?
            .iter()
            .filter(|(op, _)| add.is_none_or(|a| **op > a))
            .map(|(_, &t)| t)
            .min()
    }

    /// Records an applied add op: it overrides every LWW-older revoke.
    fn note_add(&mut self, app: AppId, user: UserId, op: (u64, u64)) {
        let slot = self.last_add.entry((app, user)).or_insert(op);
        if op > *slot {
            *slot = op;
        }
        let newest = *slot;
        if let Some(revokes) = self.stable_revokes.get_mut(&(app, user)) {
            revokes.retain(|rop, _| *rop > newest);
        }
    }

    fn on_allow(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>) {
        let (Some(app), Some(user)) = (kv.app(), kv.user()) else { return };
        self.stats.allows += 1;
        let mode = kv.get("mode").unwrap_or("");
        if mode == "failopen" {
            self.stats.fail_open_allows += 1;
        } else if let Some(revoked_at) = self.revoked_since(app, user) {
            // I1: the paper's headline guarantee — at most Te of
            // residual access after a revoke is stable.
            let deadline = revoked_at + self.te_real + self.slack;
            if at > deadline {
                let over =
                    SimDuration::from_nanos(at.as_nanos().saturating_sub(revoked_at.as_nanos()));
                self.fail(
                    at,
                    index,
                    node,
                    InvariantKind::BoundedRevocation,
                    format!(
                        "{user} allowed on {app} ({mode}) {over} after revoke stabilized at {revoked_at} (bound Te = {})",
                        self.te_real
                    ),
                );
            }
        }
        match mode {
            "quorum" => {
                self.stats.quorum_allows += 1;
                let confirms: usize =
                    kv.get("confirms").and_then(|v| v.parse().ok()).unwrap_or(0);
                let distinct: BTreeSet<&str> = kv
                    .get("mgrs")
                    .map(|v| v.split(';').filter(|s| !s.is_empty()).collect())
                    .unwrap_or_default();
                if confirms < self.check_quorum || distinct.len() < self.check_quorum {
                    self.fail(
                        at,
                        index,
                        node,
                        InvariantKind::QuorumIntersection,
                        format!(
                            "allow for {user} on {app} backed by {} distinct managers ({confirms} confirms), need C = {}",
                            distinct.len(),
                            self.check_quorum
                        ),
                    );
                }
                // I8: in a sharded tenant, only managers owning the
                // user's bucket (in some registered map version) may
                // confirm the check.
                let bucket = user_bucket(user);
                let allowed: Option<BTreeSet<usize>> = self.shard_maps.get(&app).map(|versions| {
                    versions
                        .values()
                        .flat_map(|rows| rows.iter())
                        .filter(|(_, lo, hi, _)| *lo <= bucket && bucket <= *hi)
                        .flat_map(|(_, _, _, owners)| owners.iter().copied())
                        .collect()
                });
                if let Some(allowed) = allowed {
                    self.stats.shard_allows += 1;
                    let foreign: Vec<&str> = distinct
                        .iter()
                        .copied()
                        .filter(|m| {
                            m.parse::<usize>().map(|i| !allowed.contains(&i)).unwrap_or(true)
                        })
                        .collect();
                    if !foreign.is_empty() {
                        self.fail(
                            at,
                            index,
                            node,
                            InvariantKind::TenantIsolation,
                            format!(
                                "allow for {user} (bucket {bucket}) on {app} confirmed by managers [{}] outside the user's shard in every registered map version",
                                foreign.join(";")
                            ),
                        );
                    }
                }
            }
            "cache" => {
                self.stats.cache_allows += 1;
                let now = kv.nanos("now");
                let limit = kv.nanos("limit");
                if let (Some(now), Some(limit)) = (now, limit) {
                    if now >= limit {
                        self.fail(
                            at,
                            index,
                            node,
                            InvariantKind::CacheExpiry,
                            format!(
                                "cache hit for {user} on {app} at local {now} ns, entry limit {limit} ns already passed"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    fn on_cache_store(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>) {
        self.stats.cache_stores += 1;
        let (Some(started), Some(limit)) = (kv.nanos("started"), kv.nanos("limit")) else {
            return;
        };
        // I3: a host must never store a lease longer than te = b·Te.
        let life = SimDuration::from_nanos(limit.saturating_sub(started));
        if life > self.te_budget {
            self.fail(
                at,
                index,
                node,
                InvariantKind::CacheExpiry,
                format!(
                    "stored lease lives {life} from its anchor, over the te budget {}",
                    self.te_budget
                ),
            );
        }
    }

    fn on_grant(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>) {
        self.stats.grants += 1;
        let Some(app) = kv.app() else { return };
        // I4: "no responses are sent to application hosts until all
        // managers are accessible again" (§3.3).
        if self.frozen.contains(&(node, app)) {
            self.fail(
                at,
                index,
                node,
                InvariantKind::FreezeSafety,
                format!("manager granted on {app} while frozen"),
            );
        }
        if let Some(te) = kv.nanos("te") {
            if SimDuration::from_nanos(te) > self.te_budget {
                self.fail(
                    at,
                    index,
                    node,
                    InvariantKind::CacheExpiry,
                    format!(
                        "manager granted te {} over the budget {}",
                        SimDuration::from_nanos(te),
                        self.te_budget
                    ),
                );
            }
        }
    }

    /// Records a durability promise: the manager fsynced this op before
    /// acking it, so it must survive every future disk recovery.
    fn on_durable(&mut self, node: NodeId, kv: &Kv<'_>) {
        let (Some(app), Some(user), Some(right)) = (kv.app(), kv.user(), kv.get("right"))
        else {
            return;
        };
        self.stats.durable_ops += 1;
        let stamp = kv.op_id();
        let slot = self
            .durable
            .entry(node)
            .or_default()
            .entry((app, user, right.to_string()))
            .or_insert(stamp);
        if stamp > *slot {
            *slot = stamp;
        }
    }

    /// I5: checks a recovery note against the node's durable promises.
    /// The `slots=` list carries `app:user:right:seq:origin` items.
    fn on_recovered(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>) {
        if kv.get("mode") != Some("disk") {
            return; // sync-mode recovery promised nothing durable
        }
        self.stats.disk_recoveries += 1;
        let Some(noted) = self.durable.get(&node) else { return };
        let mut recovered: BTreeMap<(AppId, UserId, String), (u64, u64)> = BTreeMap::new();
        for item in kv.get("slots").unwrap_or("").split(',').filter(|s| !s.is_empty()) {
            let parts: Vec<&str> = item.split(':').collect();
            if parts.len() != 5 {
                continue;
            }
            let (Ok(app), Ok(user), Ok(seq), Ok(origin)) = (
                parts[0].parse::<u32>(),
                parts[1].parse::<u64>(),
                parts[3].parse::<u64>(),
                parts[4].parse::<u64>(),
            ) else {
                continue;
            };
            recovered.insert((AppId(app), UserId(user), parts[2].to_string()), (seq, origin));
        }
        let mut lost = Vec::new();
        for ((app, user, right), &stamp) in noted {
            match recovered.get(&(*app, *user, right.clone())) {
                Some(&got) if got >= stamp => {}
                Some(&got) => lost.push(format!(
                    "{}:{}:{right} rolled back to seq {} origin {} (durable seq {} origin {})",
                    app.0, user.0, got.0, got.1, stamp.0, stamp.1
                )),
                None => lost.push(format!(
                    "{}:{}:{right} missing (durable up to seq {} origin {})",
                    app.0, user.0, stamp.0, stamp.1
                )),
            }
        }
        if !lost.is_empty() {
            self.fail(
                at,
                index,
                node,
                InvariantKind::Durability,
                format!("disk recovery lost acked state: {}", lost.join("; ")),
            );
        }
    }

    /// A replica published or anti-entropy-applied a record: whitelist
    /// the (app, version, manager-set) for I7 and track which replicas
    /// hold the version for the I6 write-quorum ack rule.
    fn on_ns_record_held(&mut self, at: SimTime, node: NodeId, kv: &Kv<'_>) {
        let Some(config) = self.directory else { return };
        let (Some(app), Some(version), Some(mgrs)) =
            (kv.app(), kv.nanos("version"), kv.get("mgrs"))
        else {
            return;
        };
        self.stats.ns_publishes += 1;
        self.ns_published.insert((app, version, mgrs.to_string()));
        let holders = self.ns_replica_records.entry((app, version)).or_default();
        let first_crossing = holders.insert(node) && holders.len() == config.write_quorum();
        if first_crossing {
            // This version just reached the write quorum: every read
            // quorum now intersects a holder, so the I6 clock starts —
            // but only if it advances the app's acked version.
            let acked = self.ns_acked.entry(app).or_insert((0, at));
            if version > acked.0 {
                *acked = (version, at);
                self.stats.ns_acked_versions += 1;
            }
        }
    }

    /// I6/I7: a host installed a directory record (`ns-install`) or is
    /// riding one through a degraded quorum round (`ns-degraded`).
    fn on_ns_acted(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>, installed: bool) {
        let Some(config) = self.directory else { return };
        let (Some(app), Some(version)) = (kv.app(), kv.nanos("version")) else { return };
        if installed {
            self.stats.ns_installs += 1;
            // I7: the installed manager set must be one a legitimate
            // writer published (version 0 = the negative answer, which
            // installs the empty view and claims nothing).
            if version > 0 {
                let mgrs = kv.get("mgrs").unwrap_or("").to_string();
                if !self.ns_published.contains(&(app, version, mgrs.clone())) {
                    self.fail(
                        at,
                        index,
                        node,
                        InvariantKind::DirectoryIntegrity,
                        format!(
                            "host installed {app} version {version} mgrs={mgrs} that no legitimate writer published"
                        ),
                    );
                }
            }
        }
        // I6: once a fresher version is write-quorum-acknowledged, a
        // host may ride an older record only until that record's TTL
        // (worst-case real time) runs out.
        if let Some(&(acked_version, acked_at)) = self.ns_acked.get(&app) {
            if version < acked_version {
                let deadline = acked_at + config.ttl_real + self.slack;
                if at > deadline {
                    let over = SimDuration::from_nanos(
                        at.as_nanos().saturating_sub(acked_at.as_nanos()),
                    );
                    self.fail(
                        at,
                        index,
                        node,
                        InvariantKind::DirectoryFreshness,
                        format!(
                            "host acted on {app} version {version} {over} after version {acked_version} was quorum-acknowledged at {acked_at} (TTL bound {})",
                            config.ttl_real
                        ),
                    );
                }
            }
        }
    }

    /// I9 source side: remember what the source claims it handed off.
    fn on_shard_handoff(&mut self, kv: &Kv<'_>) {
        let (Some(shard), Some(epoch), Some(src), Some(digest), Some(count)) = (
            kv.nanos("shard"),
            kv.nanos("epoch"),
            kv.nanos("src"),
            kv.nanos("digest"),
            kv.nanos("count"),
        ) else {
            return;
        };
        self.stats.shard_handoffs += 1;
        self.handoff_digests.insert((shard as u32, epoch, src as usize), (digest, count));
    }

    /// I9 target side: the install must byte-match its source's claim.
    fn on_shard_install(&mut self, at: SimTime, index: u64, node: NodeId, kv: &Kv<'_>) {
        let (Some(shard), Some(epoch), Some(src), Some(digest), Some(count)) = (
            kv.nanos("shard"),
            kv.nanos("epoch"),
            kv.nanos("src"),
            kv.nanos("digest"),
            kv.nanos("count"),
        ) else {
            return;
        };
        self.stats.shard_installs += 1;
        match self.handoff_digests.get(&(shard as u32, epoch, src as usize)) {
            None => self.fail(
                at,
                index,
                node,
                InvariantKind::RebalanceSafety,
                format!(
                    "shard {shard} epoch {epoch} installed from manager {src} which never noted a handoff"
                ),
            ),
            Some(&(want_digest, want_count)) if want_digest != digest || want_count != count => {
                self.fail(
                    at,
                    index,
                    node,
                    InvariantKind::RebalanceSafety,
                    format!(
                        "shard {shard} epoch {epoch} install from manager {src} diverged: got digest {digest} count {count}, source handed off digest {want_digest} count {want_count}"
                    ),
                )
            }
            Some(_) => {}
        }
    }

    fn on_note(&mut self, at: SimTime, index: u64, node: NodeId, text: &str) {
        let kv = Kv::parse(text);
        match kv.get("audit") {
            Some("allow") => self.on_allow(at, index, node, &kv),
            Some("cache-store") => self.on_cache_store(at, index, node, &kv),
            Some("grant") => self.on_grant(at, index, node, &kv),
            Some("apply") => {
                if let (Some(app), Some(user)) = (kv.app(), kv.user()) {
                    if kv.get("kind") == Some("add") {
                        self.note_add(app, user, kv.op_id());
                    }
                }
            }
            Some("revoke-stable") => {
                if let (Some(app), Some(user)) = (kv.app(), kv.user()) {
                    self.stats.revokes += 1;
                    // Keep the earliest stabilization per op: that is
                    // when the paper's Te clock starts for it.
                    self.stable_revokes
                        .entry((app, user))
                        .or_default()
                        .entry(kv.op_id())
                        .or_insert(at);
                }
            }
            Some("grant-stable") => {
                if let (Some(app), Some(user)) = (kv.app(), kv.user()) {
                    // Stability implies the add was applied at its
                    // origin; redundant with the apply note, kept for
                    // robustness against truncated traces.
                    self.note_add(app, user, kv.op_id());
                }
            }
            Some("durable") => self.on_durable(node, &kv),
            Some("recovered") => self.on_recovered(at, index, node, &kv),
            Some("shard-handoff") => self.on_shard_handoff(&kv),
            Some("shard-install") => self.on_shard_install(at, index, node, &kv),
            Some("ns-publish") | Some("ns-apply") => self.on_ns_record_held(at, node, &kv),
            Some("ns-install") => self.on_ns_acted(at, index, node, &kv, true),
            Some("ns-degraded") => self.on_ns_acted(at, index, node, &kv, false),
            Some("freeze") => {
                if let Some(app) = kv.app() {
                    self.frozen.insert((node, app));
                }
            }
            Some("thaw") => {
                if let Some(app) = kv.app() {
                    self.frozen.remove(&(node, app));
                }
            }
            _ => {}
        }
    }
}

impl Observer for InvariantOracle {
    fn on_event(&mut self, at: SimTime, index: u64, event: &TraceEvent) {
        if let TraceEvent::Note { node, text } = event {
            self.digest = fnv1a_note(self.digest, *node, text);
            self.on_note(at, index, *node, text);
        }
    }

    /// The oracle reads only `Note` events; telling the world so lets
    /// it skip `Debug`-formatting every message on oracle-only runs.
    fn wants_message_events(&self) -> bool {
        false
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Lightweight `key=value` token view over one audit note.
struct Kv<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Kv<'a> {
    fn parse(text: &'a str) -> Kv<'a> {
        let pairs = text
            .split_whitespace()
            .filter_map(|tok| tok.split_once('='))
            .collect();
        Kv { pairs }
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn nanos(&self, key: &str) -> Option<u64> {
        self.get(key)?.parse().ok()
    }

    fn app(&self) -> Option<AppId> {
        Some(AppId(self.get("app")?.parse().ok()?))
    }

    fn user(&self) -> Option<UserId> {
        Some(UserId(self.get("user")?.parse().ok()?))
    }

    /// The `(seq, origin)` LWW stamp of an op note. Notes missing the
    /// stamp sort newest, which keeps a bare `revoke-stable` armed —
    /// the conservative reading.
    fn op_id(&self) -> (u64, u64) {
        (self.nanos("seq").unwrap_or(u64::MAX), self.nanos("origin").unwrap_or(u64::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FreezePolicy;

    fn policy() -> Policy {
        Policy::builder(2)
            .revocation_bound(SimDuration::from_secs(10))
            .clock_rate_bound(0.9)
            .build()
    }

    fn note(o: &mut InvariantOracle, at_s: u64, index: u64, node: usize, text: &str) {
        o.on_event(
            SimTime::from_secs(at_s),
            index,
            &TraceEvent::Note { node: NodeId::from_index(node), text: text.into() },
        );
    }

    #[test]
    fn allow_within_te_is_clean() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 5, 1, 0, "audit=revoke-stable app=0 user=1 seq=3 origin=0");
        note(&mut o, 14, 2, 3, "audit=allow app=0 user=1 mode=cache now=1 limit=2");
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn allow_past_te_is_a_violation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 5, 1, 0, "audit=revoke-stable app=0 user=1 seq=3 origin=0");
        note(&mut o, 16, 7, 3, "audit=allow app=0 user=1 mode=cache now=1 limit=2");
        assert_eq!(o.violations().len(), 1);
        let v = &o.violations()[0];
        assert_eq!(v.kind, InvariantKind::BoundedRevocation);
        assert_eq!(v.event_index, 7);
    }

    #[test]
    fn fail_open_allows_are_exempt_from_bounded_revocation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 5, 1, 0, "audit=revoke-stable app=0 user=1 seq=3 origin=0");
        note(&mut o, 50, 2, 3, "audit=allow app=0 user=1 mode=failopen");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().fail_open_allows, 1);
    }

    #[test]
    fn regrant_clears_the_revocation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 5, 1, 0, "audit=revoke-stable app=0 user=1 seq=3 origin=0");
        note(&mut o, 20, 2, 0, "audit=apply kind=add app=0 user=1 seq=4 origin=0");
        note(&mut o, 30, 3, 3, "audit=allow app=0 user=1 mode=cache now=1 limit=2");
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn lww_order_beats_stable_arrival_order() {
        // A resent add (seq 4) applied after the revoke (seq 3) keeps
        // the user granted, even though the revoke's stability notice
        // arrives *later* than the add's apply — stable-event order is
        // not apply order.
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 5, 1, 0, "audit=apply kind=add app=0 user=1 seq=4 origin=0");
        note(&mut o, 6, 2, 0, "audit=revoke-stable app=0 user=1 seq=3 origin=0");
        note(&mut o, 40, 3, 3, "audit=allow app=0 user=1 mode=cache now=1 limit=2");
        assert!(o.is_clean(), "{:?}", o.violations());
        // A revoke that is LWW-newer than the add does arm the bound.
        note(&mut o, 41, 4, 0, "audit=revoke-stable app=0 user=1 seq=5 origin=0");
        note(&mut o, 60, 5, 3, "audit=allow app=0 user=1 mode=cache now=1 limit=2");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::BoundedRevocation);
    }

    #[test]
    fn quorum_allow_needs_c_distinct_managers() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 3, "audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs=0;1 started=0 limit=9");
        assert!(o.is_clean());
        note(&mut o, 2, 2, 3, "audit=allow app=0 user=1 mode=quorum confirms=1 c=2 mgrs=0 started=0 limit=9");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::QuorumIntersection);
    }

    #[test]
    fn cache_hit_past_limit_is_a_violation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 4, 3, "audit=allow app=0 user=1 mode=cache now=200 limit=100");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::CacheExpiry);
    }

    #[test]
    fn cache_store_over_budget_is_a_violation() {
        let p = policy(); // te = 0.9 * 10s = 9s
        let mut o = InvariantOracle::new(&p, SimDuration::ZERO);
        let nine_s = SimDuration::from_secs(9).as_nanos();
        note(
            &mut o,
            1,
            1,
            3,
            &format!("audit=cache-store app=0 user=1 started=0 limit={nine_s} te={nine_s}"),
        );
        assert!(o.is_clean(), "{:?}", o.violations());
        let ten_s = SimDuration::from_secs(10).as_nanos();
        note(
            &mut o,
            2,
            2,
            3,
            &format!("audit=cache-store app=0 user=1 started=0 limit={ten_s} te={ten_s}"),
        );
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::CacheExpiry);
    }

    #[test]
    fn grant_while_frozen_is_a_violation() {
        let p = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(10))
            .clock_rate_bound(0.9)
            .freeze(FreezePolicy {
                ti: SimDuration::from_secs(1),
                heartbeat_interval: SimDuration::from_millis(100),
            })
            .build();
        let mut o = InvariantOracle::new(&p, SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=freeze app=0");
        note(&mut o, 2, 2, 0, "audit=grant app=0 user=1 te=1000");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::FreezeSafety);
        // Another manager granting is fine.
        note(&mut o, 2, 3, 1, "audit=grant app=0 user=1 te=1000");
        assert_eq!(o.violations().len(), 1);
        // After thaw the same manager may grant again.
        note(&mut o, 3, 4, 0, "audit=thaw app=0");
        note(&mut o, 4, 5, 0, "audit=grant app=0 user=1 te=1000");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn disk_recovery_must_preserve_durable_ops() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=durable app=0 user=1 right=use kind=add seq=3 origin=0");
        note(&mut o, 2, 2, 0, "audit=recovered mode=disk replayed=1 torn=0 slots=0:1:use:3:0");
        assert!(o.is_clean(), "{:?}", o.violations());
        // A newer recovered winner for the slot also satisfies the bound.
        note(&mut o, 3, 3, 0, "audit=recovered mode=disk replayed=2 torn=0 slots=0:1:use:5:1");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().durable_ops, 1);
        assert_eq!(o.stats().disk_recoveries, 2);
        // An empty recovery (the planted drop-the-WAL bug) is caught.
        note(&mut o, 4, 9, 0, "audit=recovered mode=disk replayed=0 torn=1 slots=");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::Durability);
        assert_eq!(o.violations()[0].event_index, 9);
    }

    #[test]
    fn stale_recovered_slot_is_a_durability_violation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=durable app=0 user=1 right=use kind=revoke seq=6 origin=2");
        note(&mut o, 2, 2, 0, "audit=recovered mode=disk replayed=1 torn=0 slots=0:1:use:4:1");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::Durability);
    }

    #[test]
    fn sync_mode_recovery_is_exempt_from_durability() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=durable app=0 user=1 right=use kind=add seq=3 origin=0");
        note(&mut o, 2, 2, 0, "audit=recovered mode=sync merged=0");
        assert!(o.is_clean(), "{:?}", o.violations());
        // Another manager's disk recovery is not constrained by node 0's
        // durable notes.
        note(&mut o, 3, 3, 1, "audit=recovered mode=disk replayed=0 torn=0 slots=");
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn audit_digest_is_order_and_content_sensitive() {
        let mk = |notes: &[(usize, &str)]| {
            let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
            for (i, (node, text)) in notes.iter().enumerate() {
                note(&mut o, i as u64, i as u64, *node, text);
            }
            o.audit_digest()
        };
        let a = [(0, "audit=grant app=0 user=1 te=1"), (1, "audit=freeze app=0")];
        let b = [(1, "audit=freeze app=0"), (0, "audit=grant app=0 user=1 te=1")];
        assert_eq!(mk(&a), mk(&a), "same stream, same digest");
        assert_ne!(mk(&a), mk(&b), "order matters");
        assert_ne!(mk(&a[..1]), mk(&a), "content matters");
    }

    fn directory_oracle() -> InvariantOracle {
        // ρ = 0.9, TTL = 9 s → ttl_real = 10 s + 3 s in-flight slack.
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        o.set_directory(3, 2, SimDuration::from_secs(9));
        o
    }

    #[test]
    fn directory_checks_are_off_until_configured() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 6, "audit=ns-install app=0 version=5 mode=quorum acks=2 quorum=2 mgrs=0;1 ttl=9000000000");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().ns_installs, 0);
    }

    #[test]
    fn install_of_published_record_is_clean() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 3, "audit=ns-publish app=0 version=1 mgrs=0;1");
        note(&mut o, 1, 2, 4, "audit=ns-apply app=0 version=1 mgrs=0;1");
        note(&mut o, 2, 3, 6, "audit=ns-install app=0 version=1 mode=quorum acks=2 quorum=2 mgrs=0;1 ttl=9000000000");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().ns_publishes, 2);
        assert_eq!(o.stats().ns_installs, 1);
        assert_eq!(o.stats().ns_acked_versions, 1, "W = 3-2+1 = 2 holders ack v1");
    }

    #[test]
    fn forged_install_violates_directory_integrity() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 3, "audit=ns-publish app=0 version=1 mgrs=0;1");
        // The version was never published with this manager set.
        note(&mut o, 2, 5, 6, "audit=ns-install app=0 version=2 mode=quorum acks=2 quorum=2 mgrs=9 ttl=9000000000");
        assert_eq!(o.violations().len(), 1);
        let v = &o.violations()[0];
        assert_eq!(v.kind, InvariantKind::DirectoryIntegrity);
        assert_eq!(v.event_index, 5);
        // A tampered manager set under a *published* version is equally
        // a violation: the whitelist binds version AND set.
        note(&mut o, 3, 6, 6, "audit=ns-install app=0 version=1 mode=quorum acks=2 quorum=2 mgrs=9 ttl=9000000000");
        assert_eq!(o.violations().len(), 2);
    }

    #[test]
    fn negative_install_claims_nothing() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 6, "audit=ns-install app=0 version=0 mode=quorum acks=2 quorum=2 mgrs=- ttl=2000000000");
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn stale_record_within_ttl_is_graceful_degradation_not_a_violation() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 3, "audit=ns-publish app=0 version=1 mgrs=0");
        note(&mut o, 1, 2, 4, "audit=ns-apply app=0 version=1 mgrs=0");
        // v2 reaches the write quorum at t = 10 s.
        note(&mut o, 10, 3, 3, "audit=ns-publish app=0 version=2 mgrs=0;1");
        note(&mut o, 10, 4, 4, "audit=ns-apply app=0 version=2 mgrs=0;1");
        // A host still riding v1 at t = 19 s is inside the 13 s bound.
        note(&mut o, 19, 5, 6, "audit=ns-degraded app=0 version=1");
        assert!(o.is_clean(), "{:?}", o.violations());
    }

    #[test]
    fn stale_record_past_ttl_after_ack_violates_freshness() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 3, "audit=ns-publish app=0 version=1 mgrs=0");
        note(&mut o, 10, 2, 3, "audit=ns-publish app=0 version=2 mgrs=0;1");
        note(&mut o, 10, 3, 4, "audit=ns-apply app=0 version=2 mgrs=0;1");
        // 14 s after the v2 ack > 13 s (ttl/ρ + in-flight slack): the
        // host must have expired v1 by now.
        note(&mut o, 24, 7, 6, "audit=ns-degraded app=0 version=1");
        assert_eq!(o.violations().len(), 1);
        let v = &o.violations()[0];
        assert_eq!(v.kind, InvariantKind::DirectoryFreshness);
        assert_eq!(v.event_index, 7);
    }

    #[test]
    fn one_replica_holding_a_version_does_not_arm_the_ack_clock() {
        let mut o = directory_oracle();
        note(&mut o, 1, 1, 3, "audit=ns-publish app=0 version=1 mgrs=0");
        note(&mut o, 1, 2, 4, "audit=ns-apply app=0 version=1 mgrs=0");
        // v2 sits on a single replica: below W = 2, no ack — a host
        // serving v1 forever is legal (the write never committed).
        note(&mut o, 5, 3, 3, "audit=ns-publish app=0 version=2 mgrs=0;1");
        note(&mut o, 500, 4, 6, "audit=ns-install app=0 version=1 mode=quorum acks=2 quorum=2 mgrs=0 ttl=9000000000");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().ns_acked_versions, 1, "only v1 ever acked");
    }

    fn shard_entry(shard: u32, lo: u8, hi: u8, owners: &[usize]) -> crate::msg::ShardEntry {
        crate::msg::ShardEntry {
            shard: crate::types::ShardId(shard),
            lo,
            hi,
            managers: owners.iter().map(|&i| NodeId::from_index(i)).collect(),
        }
    }

    #[test]
    fn shard_allow_by_owners_is_clean_and_by_foreigners_is_not() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        o.expect_shard_map(
            AppId(0),
            1,
            &[shard_entry(0, 0, 127, &[0, 1]), shard_entry(1, 128, 255, &[2, 3])],
        );
        // user 1's bucket decides which owner pair is legal.
        let b = user_bucket(UserId(1));
        let (own, foreign) = if b <= 127 { ("0;1", "2;3") } else { ("2;3", "0;1") };
        note(
            &mut o,
            1,
            1,
            9,
            &format!("audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs={own}"),
        );
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().shard_allows, 1);
        // An unsharded app stays unchecked.
        note(&mut o, 2, 2, 9, "audit=allow app=7 user=1 mode=quorum confirms=2 c=2 mgrs=5;6");
        assert_eq!(o.stats().shard_allows, 1);
        assert!(o.is_clean());
        // The other shard's owners confirming this user is contamination.
        note(
            &mut o,
            3,
            3,
            9,
            &format!("audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs={foreign}"),
        );
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::TenantIsolation);
    }

    #[test]
    fn shard_allow_accepts_any_registered_map_version() {
        // After a rebalance both the old and new owners may briefly
        // answer (the drain window); registering both versions keeps the
        // oracle race-free without admitting third parties.
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        let b = user_bucket(UserId(1));
        o.expect_shard_map(AppId(0), 1, &[shard_entry(0, 0, 255, &[0, 1])]);
        o.expect_shard_map(AppId(0), 2, &[shard_entry(0, 0, 255, &[2, 3])]);
        let _ = b;
        note(&mut o, 1, 1, 9, "audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs=0;1");
        note(&mut o, 2, 2, 9, "audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs=2;3");
        assert!(o.is_clean(), "{:?}", o.violations());
        note(&mut o, 3, 3, 9, "audit=allow app=0 user=1 mode=quorum confirms=2 c=2 mgrs=4;5");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::TenantIsolation);
    }

    #[test]
    fn matching_handoff_and_install_digests_are_clean() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=shard-handoff shard=0 epoch=2 src=0 digest=777 count=3");
        note(&mut o, 2, 2, 4, "audit=shard-install shard=0 epoch=2 src=0 digest=777 count=3");
        assert!(o.is_clean(), "{:?}", o.violations());
        assert_eq!(o.stats().shard_handoffs, 1);
        assert_eq!(o.stats().shard_installs, 1);
    }

    #[test]
    fn diverged_install_digest_is_a_rebalance_violation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 0, "audit=shard-handoff shard=0 epoch=2 src=0 digest=777 count=3");
        // The lost-tail bug: one op short, different digest.
        note(&mut o, 2, 5, 4, "audit=shard-install shard=0 epoch=2 src=0 digest=123 count=2");
        assert_eq!(o.violations().len(), 1);
        let v = &o.violations()[0];
        assert_eq!(v.kind, InvariantKind::RebalanceSafety);
        assert_eq!(v.event_index, 5);
    }

    #[test]
    fn install_without_a_handoff_is_a_rebalance_violation() {
        let mut o = InvariantOracle::new(&policy(), SimDuration::ZERO);
        note(&mut o, 1, 1, 4, "audit=shard-install shard=0 epoch=2 src=0 digest=777 count=3");
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::RebalanceSafety);
        // Same epoch from a *different* source is tracked independently.
        note(&mut o, 2, 2, 0, "audit=shard-handoff shard=0 epoch=2 src=1 digest=9 count=1");
        note(&mut o, 3, 3, 4, "audit=shard-install shard=0 epoch=2 src=1 digest=9 count=1");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn static_freeze_bound_checked_at_construction() {
        // Ti + te > Te: 5 + 9 > 10.
        let p = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(10))
            .clock_rate_bound(0.9)
            .freeze(FreezePolicy {
                ti: SimDuration::from_secs(5),
                heartbeat_interval: SimDuration::from_millis(100),
            })
            .build_unchecked();
        let o = InvariantOracle::new(&p, SimDuration::ZERO);
        assert_eq!(o.violations().len(), 1);
        assert_eq!(o.violations()[0].kind, InvariantKind::FreezeSafety);
    }
}
