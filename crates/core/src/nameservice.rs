//! The trusted name service of §3.2.
//!
//! "This assumption [a fixed, known manager set] can easily be eliminated
//! by using a trusted name service that provides each host with the set
//! of managers when requested. If the set of managers changes, a scheme
//! similar to the time-based expiration of cached information can be used
//! to trigger a new query to the name service."

use std::any::Any;
use std::collections::BTreeMap;

use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::time::SimDuration;

use crate::msg::ProtoMsg;
use crate::types::AppId;

/// A trusted directory mapping applications to their manager sets.
#[derive(Debug, Default)]
pub struct NameServiceNode {
    entries: BTreeMap<AppId, Vec<NodeId>>,
    ttl: SimDuration,
    lookups: u64,
}

impl NameServiceNode {
    /// Creates a name service whose answers carry the given TTL.
    pub fn new(ttl: SimDuration) -> Self {
        NameServiceNode { entries: BTreeMap::new(), ttl, lookups: 0 }
    }

    /// Registers (or replaces) the manager set for an application.
    pub fn register(&mut self, app: AppId, managers: Vec<NodeId>) {
        self.entries.insert(app, managers);
    }

    /// The current manager set for an application.
    pub fn managers(&self, app: AppId) -> &[NodeId] {
        self.entries.get(&app).map(Vec::as_slice).unwrap_or(&[])
    }

    /// How many lookups have been served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

impl Node for NameServiceNode {
    type Msg = ProtoMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::NsQuery { app } => {
                self.lookups += 1;
                ctx.metric_incr("ns.lookups");
                let managers = self.entries.get(&app).cloned().unwrap_or_default();
                ctx.send(from, ProtoMsg::NsReply { app, managers, ttl: self.ttl });
            }
            // Environment injection: replace a manager set at runtime by
            // sending the service an NsReply (harness-only path).
            ProtoMsg::NsReply { app, managers, .. } if from == NodeId::ENV => {
                self.register(app, managers);
            }
            _ => {
                ctx.metric_incr("ns.unexpected_msg");
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ns = NameServiceNode::new(SimDuration::from_secs(60));
        let managers = vec![NodeId::from_index(1), NodeId::from_index(2)];
        ns.register(AppId(1), managers.clone());
        assert_eq!(ns.managers(AppId(1)), managers.as_slice());
        assert_eq!(ns.managers(AppId(2)), &[]);
    }

    #[test]
    fn replace_manager_set() {
        let mut ns = NameServiceNode::new(SimDuration::from_secs(60));
        ns.register(AppId(1), vec![NodeId::from_index(1)]);
        ns.register(AppId(1), vec![NodeId::from_index(9)]);
        assert_eq!(ns.managers(AppId(1)), &[NodeId::from_index(9)]);
    }
}
