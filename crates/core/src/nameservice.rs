//! The trusted name service of §3.2 — stub and replicated forms.
//!
//! "This assumption [a fixed, known manager set] can easily be eliminated
//! by using a trusted name service that provides each host with the set
//! of managers when requested. If the set of managers changes, a scheme
//! similar to the time-based expiration of cached information can be used
//! to trigger a new query to the name service."
//!
//! [`NameServiceNode`] is the original single trusted directory.
//! [`DirectoryReplica`] removes that single trusted point: N replicas
//! hold versioned, writer-signed manager-set records, converge through
//! anti-entropy sync backed by the WAL/snapshot [`Storage`] machinery,
//! and serve [`ProtoMsg::NsRecordReply`] answers that hosts cross-check
//! against a read quorum (freshest verified version wins). A replica is
//! *not* trusted: hosts verify every record signature, and replica state
//! accepted from peers is re-verified before it is stored, so one
//! compromised replica can neither forge a manager set nor poison its
//! peers.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use wanacl_auth::signed::{KeyRegistry, PrincipalId};
use wanacl_sim::nemesis::Window;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::storage::{Storage, StorageStats};
use wanacl_sim::time::{SimDuration, SimTime};

use crate::msg::{NsRecord, ProtoMsg};
use crate::types::AppId;

/// Canonical audit rendering of a manager set: `;`-joined node indexes,
/// `-` when empty. Replica publish notes and host install notes must
/// agree on this byte-for-byte — the integrity invariant (I7) compares
/// them as strings.
pub(crate) fn fmt_mgrs(managers: &[NodeId]) -> String {
    use std::fmt::Write as _;
    if managers.is_empty() {
        return "-".to_string();
    }
    // Streamed into one buffer: this renders on audit paths, so no
    // intermediate per-manager Strings or join vector.
    let mut out = String::with_capacity(managers.len() * 4);
    for (i, m) in managers.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let _ = write!(out, "{}", m.index());
    }
    out
}

/// Upper bound on the TTL carried by a "no such app" answer: even a
/// misconfigured negative TTL must not pin "no managers" in host caches
/// for long — an unknown app is usually one about to be registered.
pub const UNKNOWN_APP_TTL_CAP: SimDuration = SimDuration::from_secs(30);

fn capped_negative_ttl(negative_ttl: SimDuration) -> SimDuration {
    if negative_ttl > UNKNOWN_APP_TTL_CAP { UNKNOWN_APP_TTL_CAP } else { negative_ttl }
}

/// A trusted directory mapping applications to their manager sets.
#[derive(Debug, Default)]
pub struct NameServiceNode {
    entries: BTreeMap<AppId, Vec<NodeId>>,
    ttl: SimDuration,
    negative_ttl: SimDuration,
    lookups: u64,
}

impl NameServiceNode {
    /// Creates a name service whose answers carry the given TTL.
    /// Negative answers (no record for the app) carry a quarter of it,
    /// so a host that queries before registration does not cache "no
    /// managers" for the full TTL.
    pub fn new(ttl: SimDuration) -> Self {
        NameServiceNode {
            entries: BTreeMap::new(),
            ttl,
            negative_ttl: ttl.mul_f64(0.25),
            lookups: 0,
        }
    }

    /// Overrides the TTL attached to negative (empty) answers.
    pub fn set_negative_ttl(&mut self, ttl: SimDuration) {
        self.negative_ttl = ttl;
    }

    /// Registers (or replaces) the manager set for an application.
    pub fn register(&mut self, app: AppId, managers: Vec<NodeId>) {
        self.entries.insert(app, managers);
    }

    /// The current manager set for an application.
    pub fn managers(&self, app: AppId) -> &[NodeId] {
        self.entries.get(&app).map(Vec::as_slice).unwrap_or(&[])
    }

    /// How many lookups have been served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

impl Node for NameServiceNode {
    type Msg = ProtoMsg;

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::NsQuery { app } => {
                self.lookups += 1;
                ctx.metric_incr("ns.lookups");
                let entry = self.entries.get(&app).cloned();
                if entry.is_none() {
                    // Unknown app (never registered) is distinct from a
                    // registered-but-empty set, and its TTL is capped so
                    // the answer cannot pin "no managers" for long.
                    ctx.metric_incr("ns.unknown_app");
                }
                let managers = entry.unwrap_or_default();
                let ttl = if managers.is_empty() {
                    ctx.metric_incr("ns.negative_reply");
                    capped_negative_ttl(self.negative_ttl)
                } else {
                    self.ttl
                };
                ctx.send(from, ProtoMsg::NsReply { app, managers, ttl });
            }
            // Environment injection: replace a manager set at runtime by
            // sending the service an NsReply (harness-only path).
            ProtoMsg::NsReply { app, managers, .. } if from == NodeId::ENV => {
                self.register(app, managers);
            }
            _ => {
                ctx.metric_incr("ns.unexpected_msg");
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Timer tag of the periodic anti-entropy round.
const TAG_SYNC: u64 = 1;

/// How many accepted records trigger a snapshot that truncates the WAL.
const SNAPSHOT_EVERY: u64 = 8;

/// One replica of the replicated directory.
///
/// Holds versioned [`NsRecord`]s, serves signed [`ProtoMsg::NsRecordReply`]
/// answers, and converges with its peers via periodic anti-entropy
/// (advertise held versions, receive strictly-newer records) plus an
/// eager push of freshly accepted publishes. Every record accepted from
/// any source — writer publish, peer sync, or its own WAL at recovery —
/// is verified against the namespace writer's key first.
///
/// Fault hooks for the nemesis harness:
/// * [`set_suppress_sync`](DirectoryReplica::set_suppress_sync) freezes
///   anti-entropy in both directions (the *stale replica* fault);
/// * [`set_malicious`](DirectoryReplica::set_malicious) makes the
///   replica serve forged, mis-signed records during a window (the
///   *malicious partial master* fault).
#[derive(Debug)]
pub struct DirectoryReplica {
    records: BTreeMap<AppId, NsRecord>,
    ttl: SimDuration,
    negative_ttl: SimDuration,
    peers: Vec<NodeId>,
    registry: Arc<KeyRegistry>,
    writer: PrincipalId,
    storage: Option<Box<dyn Storage>>,
    sync_interval: SimDuration,
    sync_cursor: usize,
    since_snapshot: u64,
    lookups: u64,
    suppress_sync: bool,
    malicious: Option<Window>,
}

impl DirectoryReplica {
    /// Creates a replica serving records with the given TTL. `peers` are
    /// the other replicas (anti-entropy partners); `writer` is the only
    /// principal whose records are accepted, checked against `registry`.
    pub fn new(
        ttl: SimDuration,
        peers: Vec<NodeId>,
        registry: Arc<KeyRegistry>,
        writer: PrincipalId,
    ) -> Self {
        DirectoryReplica {
            records: BTreeMap::new(),
            ttl,
            negative_ttl: ttl.mul_f64(0.25),
            peers,
            registry,
            writer,
            storage: None,
            sync_interval: ttl.mul_f64(0.25),
            sync_cursor: 0,
            since_snapshot: 0,
            lookups: 0,
            suppress_sync: false,
            malicious: None,
        }
    }

    /// Overrides the TTL attached to negative (no-record) answers.
    pub fn set_negative_ttl(&mut self, ttl: SimDuration) {
        self.negative_ttl = ttl;
    }

    /// Overrides the anti-entropy period (default: TTL / 4).
    pub fn set_sync_interval(&mut self, interval: SimDuration) {
        assert!(interval > SimDuration::ZERO, "sync interval must be positive");
        self.sync_interval = interval;
    }

    /// Attaches stable storage: accepted records are WAL-appended and
    /// fsynced before they are served, snapshots truncate the log, and
    /// crash recovery replays both.
    pub fn set_storage(&mut self, storage: Box<dyn Storage>) {
        self.storage = Some(storage);
    }

    /// Mutable access to the attached storage (harness fault knobs).
    pub fn storage_mut(&mut self) -> Option<&mut (dyn Storage + 'static)> {
        self.storage.as_deref_mut()
    }

    /// Storage counters, if storage is attached.
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(|s| s.stats())
    }

    /// Nemesis hook: the *stale replica* fault. While set, the replica
    /// neither initiates anti-entropy, answers peers' sync requests, nor
    /// forwards accepted publishes — it keeps serving whatever versions
    /// it already holds.
    pub fn set_suppress_sync(&mut self, suppress: bool) {
        self.suppress_sync = suppress;
    }

    /// Nemesis hook: the *malicious partial master* fault. During the
    /// window the replica answers queries with a forged record — version
    /// bumped past the genuine one, manager set altered, signature not
    /// matching the forged content — which verifying hosts must reject.
    pub fn set_malicious(&mut self, window: Window) {
        self.malicious = Some(window);
    }

    /// Installs a record at build time, before the world runs (genesis
    /// state; the record is persisted and announced in `on_start`).
    pub fn preload(&mut self, record: NsRecord) {
        self.records.insert(record.app, record);
    }

    /// The version currently held for an app (0 = none).
    pub fn version_of(&self, app: AppId) -> u64 {
        self.records.get(&app).map(|r| r.version).unwrap_or(0)
    }

    /// The manager set currently held for an app.
    pub fn managers(&self, app: AppId) -> &[NodeId] {
        self.records.get(&app).map(|r| r.managers.as_slice()).unwrap_or(&[])
    }

    /// How many lookups have been served.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    fn malicious_now(&self, ctx: &Context<'_, ProtoMsg>) -> bool {
        // Replicas run perfect clocks, so local time reads as sim time.
        match &self.malicious {
            Some(w) => w.contains(SimTime::from_nanos(ctx.local_now().as_nanos())),
            None => false,
        }
    }

    fn note_record(ctx: &mut Context<'_, ProtoMsg>, kind: &str, record: &NsRecord) {
        ctx.trace(format!(
            "audit={kind} app={} version={} mgrs={}",
            record.app.0,
            record.version,
            fmt_mgrs(&record.managers)
        ));
    }

    /// Verifies and stores a record if it is strictly newer than what is
    /// held; persists it and emits the audit note `kind` on acceptance.
    ///
    /// Takes the record by reference: verification and the
    /// newer-than-held check run on the borrowed payload, so rejected,
    /// stale, and duplicate publishes (the common case under eager push
    /// plus anti-entropy) never copy the manager/shard vectors. The one
    /// clone happens only on actual acceptance — once per config change.
    fn accept(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        record: &NsRecord,
        kind: &'static str,
    ) -> bool {
        if !record.verify(&self.registry, self.writer) {
            ctx.metric_incr("ns.publish_rejected");
            return false;
        }
        if record.version <= self.version_of(record.app) {
            ctx.metric_incr("ns.publish_stale");
            return false;
        }
        self.persist(record);
        Self::note_record(ctx, kind, record);
        ctx.metric_incr("ns.records_accepted");
        self.records.insert(record.app, record.clone());
        true
    }

    fn persist(&mut self, record: &NsRecord) {
        let Some(storage) = self.storage.as_mut() else { return };
        let _ = storage.append(&encode_record(record));
        // A failed barrier keeps the buffer; the next accept retries it.
        let _ = storage.sync();
        self.since_snapshot += 1;
        if self.since_snapshot >= SNAPSHOT_EVERY {
            let snapshot = encode_snapshot(self.records.values());
            if storage.write_snapshot(&snapshot).is_ok() {
                self.since_snapshot = 0;
            }
        }
    }

    /// Replays stable storage into the in-memory record map (freshest
    /// version wins; signatures re-verified — a WAL is not a trust root).
    fn recover_from_disk(&mut self) {
        let Some(storage) = self.storage.as_mut() else { return };
        let recovered = storage.recover();
        let mut decoded: Vec<NsRecord> = Vec::new();
        if let Some(snapshot) = &recovered.snapshot {
            decoded.extend(decode_snapshot(snapshot));
        }
        decoded.extend(recovered.records.iter().filter_map(|r| decode_record(r)));
        for record in decoded {
            if !record.verify(&self.registry, self.writer) {
                continue;
            }
            if record.version > self.records.get(&record.app).map(|r| r.version).unwrap_or(0) {
                self.records.insert(record.app, record);
            }
        }
    }

    /// Announces every held record (idempotent for the oracle) and arms
    /// the anti-entropy timer.
    fn announce_and_arm(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let records: Vec<NsRecord> = self.records.values().cloned().collect();
        for record in &records {
            Self::note_record(ctx, "ns-publish", record);
        }
        self.arm_sync(ctx);
    }

    fn arm_sync(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if self.peers.is_empty() {
            return;
        }
        // Jittered so replica rounds interleave instead of phase-locking.
        let delay = self.sync_interval.mul_f64(0.8 + 0.4 * ctx.rng().unit());
        ctx.set_timer(delay, TAG_SYNC);
    }

    fn held_versions(&self) -> Vec<(AppId, u64)> {
        self.records.values().map(|r| (r.app, r.version)).collect()
    }
}

impl Node for DirectoryReplica {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.recover_from_disk();
        // Genesis records arrive via preload() before storage sees them;
        // snapshot everything so they survive the first crash too.
        if let Some(storage) = self.storage.as_mut() {
            if !self.records.is_empty() {
                let _ = storage.write_snapshot(&encode_snapshot(self.records.values()));
                self.since_snapshot = 0;
            }
        }
        self.announce_and_arm(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::NsQuery { app } => {
                self.lookups += 1;
                ctx.metric_incr("ns.lookups");
                match self.records.get(&app) {
                    Some(record) if self.malicious_now(ctx) => {
                        // Forged answer: bumped version, altered manager
                        // set, and a signature that does not cover the
                        // forged content. A verifying host rejects this.
                        ctx.metric_incr("ns.forged_reply");
                        let forged: Vec<NodeId> = if record.managers.len() > 1 {
                            record.managers[1..].to_vec()
                        } else {
                            record.managers.clone()
                        };
                        ctx.send(
                            from,
                            ProtoMsg::NsRecordReply {
                                app,
                                version: record.version + 1,
                                managers: forged,
                                shards: record.shards.clone().map(Box::new),
                                ttl: self.ttl,
                                signature: Some(record.signature),
                            },
                        );
                    }
                    Some(record) => {
                        ctx.send(
                            from,
                            ProtoMsg::NsRecordReply {
                                app,
                                version: record.version,
                                managers: record.managers.clone(),
                                shards: record.shards.clone().map(Box::new),
                                ttl: self.ttl,
                                signature: Some(record.signature),
                            },
                        );
                    }
                    None => {
                        ctx.metric_incr("ns.unknown_app");
                        ctx.metric_incr("ns.negative_reply");
                        ctx.send(
                            from,
                            ProtoMsg::NsRecordReply {
                                app,
                                version: 0,
                                managers: Vec::new(),
                                shards: None,
                                ttl: capped_negative_ttl(self.negative_ttl),
                                signature: None,
                            },
                        );
                    }
                }
            }
            ProtoMsg::NsPublish { record } => {
                let accepted = self.accept(ctx, &record, "ns-publish");
                if accepted && !self.suppress_sync {
                    // Eager push: peers converge ahead of the next
                    // anti-entropy round (they re-verify on receipt).
                    let peers = self.peers.clone();
                    ctx.multicast(peers, ProtoMsg::NsPublish { record });
                }
            }
            ProtoMsg::NsSyncRequest { versions } => {
                if self.suppress_sync {
                    ctx.metric_incr("ns.sync_suppressed");
                    return;
                }
                let newer: Vec<NsRecord> = self
                    .records
                    .values()
                    .filter(|r| {
                        let theirs = versions
                            .iter()
                            .find(|(app, _)| *app == r.app)
                            .map(|(_, v)| *v)
                            .unwrap_or(0);
                        r.version > theirs
                    })
                    .cloned()
                    .collect();
                if !newer.is_empty() {
                    ctx.send(from, ProtoMsg::NsSyncResponse { records: newer });
                }
            }
            ProtoMsg::NsSyncResponse { records } => {
                if self.suppress_sync {
                    ctx.metric_incr("ns.sync_suppressed");
                    return;
                }
                for record in &records {
                    self.accept(ctx, record, "ns-apply");
                }
            }
            _ => {
                ctx.metric_incr("ns.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        if tag != TAG_SYNC {
            return;
        }
        if !self.suppress_sync && !self.peers.is_empty() {
            let peer = self.peers[self.sync_cursor % self.peers.len()];
            self.sync_cursor = self.sync_cursor.wrapping_add(1);
            ctx.metric_incr("ns.sync_rounds");
            ctx.send(peer, ProtoMsg::NsSyncRequest { versions: self.held_versions() });
        }
        self.arm_sync(ctx);
    }

    fn on_crash(&mut self) {
        if let Some(storage) = self.storage.as_mut() {
            storage.crash();
        }
        self.records.clear();
        self.since_snapshot = 0;
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.recover_from_disk();
        if self.storage.is_some() && !self.records.is_empty() {
            ctx.metric_incr("ns.recovered_from_disk");
        }
        self.announce_and_arm(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

// ---- WAL / snapshot byte format ----
//
// record   := app:u32 | version:u64 | count:u32 | manager:u64 * count
//             | signature:u64 [| shard-section]       (all big-endian)
// shard-section := scount:u32
//                  | (shard:u32 | lo:u8 | hi:u8
//                     | mcount:u32 | manager:u64 * mcount) * scount
// snapshot := (len:u32 | record) *
//
// Flat records (`shards == None` or empty) encode exactly the legacy
// bytes, so directories written before sharding replay unchanged; the
// shard section is appended only when entries exist, and a record with
// no trailing bytes decodes as a flat record.

fn encode_record(record: &NsRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + 8 * record.managers.len());
    out.extend_from_slice(&record.app.0.to_be_bytes());
    out.extend_from_slice(&record.version.to_be_bytes());
    out.extend_from_slice(&(record.managers.len() as u32).to_be_bytes());
    for m in &record.managers {
        out.extend_from_slice(&(m.index() as u64).to_be_bytes());
    }
    out.extend_from_slice(&record.signature.0.to_be_bytes());
    if let Some(entries) = record.shards.as_deref() {
        if !entries.is_empty() {
            out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
            for e in entries {
                out.extend_from_slice(&e.shard.0.to_be_bytes());
                out.push(e.lo);
                out.push(e.hi);
                out.extend_from_slice(&(e.managers.len() as u32).to_be_bytes());
                for m in &e.managers {
                    out.extend_from_slice(&(m.index() as u64).to_be_bytes());
                }
            }
        }
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn decode_record(bytes: &[u8]) -> Option<NsRecord> {
    let mut cur = Cursor { bytes, at: 0 };
    let app = AppId(u32::from_be_bytes(cur.take(4)?.try_into().ok()?));
    let version = u64::from_be_bytes(cur.take(8)?.try_into().ok()?);
    let count = u32::from_be_bytes(cur.take(4)?.try_into().ok()?) as usize;
    let mut managers = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = u64::from_be_bytes(cur.take(8)?.try_into().ok()?);
        managers.push(NodeId::from_index(raw as usize));
    }
    let signature = wanacl_auth::rsa::Signature(u64::from_be_bytes(cur.take(8)?.try_into().ok()?));
    let shards = if cur.done() {
        None
    } else {
        let scount = u32::from_be_bytes(cur.take(4)?.try_into().ok()?) as usize;
        if scount == 0 {
            return None; // the section is omitted when empty
        }
        let mut entries = Vec::with_capacity(scount);
        for _ in 0..scount {
            let shard = crate::types::ShardId(u32::from_be_bytes(cur.take(4)?.try_into().ok()?));
            let lo = cur.take(1)?[0];
            let hi = cur.take(1)?[0];
            let mcount = u32::from_be_bytes(cur.take(4)?.try_into().ok()?) as usize;
            let mut mgrs = Vec::with_capacity(mcount);
            for _ in 0..mcount {
                let raw = u64::from_be_bytes(cur.take(8)?.try_into().ok()?);
                mgrs.push(NodeId::from_index(raw as usize));
            }
            entries.push(crate::msg::ShardEntry { shard, lo, hi, managers: mgrs });
        }
        Some(entries)
    };
    if !cur.done() {
        return None;
    }
    Some(NsRecord { app, version, managers, shards, signature })
}

fn encode_snapshot<'a>(records: impl Iterator<Item = &'a NsRecord>) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        let bytes = encode_record(record);
        out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

fn decode_snapshot(bytes: &[u8]) -> Vec<NsRecord> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at + 4 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        at += 4;
        let Some(body) = bytes.get(at..at + len) else { break };
        at += len;
        if let Some(record) = decode_record(body) {
            out.push(record);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use wanacl_auth::rsa::KeyPair;
    use wanacl_sim::clock::LocalTime;
    use wanacl_sim::node::Effect;
    use wanacl_sim::rng::SimRng;
    use wanacl_sim::storage::SimStorage;

    const TTL: SimDuration = SimDuration::from_secs(60);

    struct Harness {
        rng: SimRng,
        next_timer: u64,
        now: LocalTime,
        id: NodeId,
    }

    impl Harness {
        fn new() -> Harness {
            Harness {
                rng: SimRng::seed_from(1),
                next_timer: 0,
                now: LocalTime::ZERO,
                id: NodeId::from_index(0),
            }
        }

        fn deliver<N: Node<Msg = ProtoMsg>>(
            &mut self,
            node: &mut N,
            from: NodeId,
            msg: ProtoMsg,
        ) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            let mut ctx =
                Context::new(self.id, self.now, &mut effects, &mut self.rng, &mut self.next_timer);
            node.on_message(&mut ctx, from, msg);
            effects
        }

        fn start<N: Node<Msg = ProtoMsg>>(&mut self, node: &mut N) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            let mut ctx =
                Context::new(self.id, self.now, &mut effects, &mut self.rng, &mut self.next_timer);
            node.on_start(&mut ctx);
            effects
        }

        fn timer<N: Node<Msg = ProtoMsg>>(&mut self, node: &mut N, tag: u64) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            let mut ctx =
                Context::new(self.id, self.now, &mut effects, &mut self.rng, &mut self.next_timer);
            node.on_timer(&mut ctx, tag);
            effects
        }

        fn recover<N: Node<Msg = ProtoMsg>>(&mut self, node: &mut N) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            let mut ctx =
                Context::new(self.id, self.now, &mut effects, &mut self.rng, &mut self.next_timer);
            node.on_recover(&mut ctx);
            effects
        }
    }

    fn sends(effects: &[Effect<ProtoMsg>]) -> Vec<(NodeId, ProtoMsg)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    fn metric_incrs(effects: &[Effect<ProtoMsg>]) -> Vec<&'static str> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::MetricIncr { name } => Some(*name),
                _ => None,
            })
            .collect()
    }

    fn writer_setup() -> (Arc<KeyRegistry>, KeyPair, PrincipalId) {
        let mut rng = StdRng::seed_from_u64(77);
        let writer = PrincipalId(2_000_000);
        let mut registry = KeyRegistry::new();
        let kp = registry.enroll(writer, &mut rng);
        (Arc::new(registry), kp, writer)
    }

    fn record(kp: &KeyPair, writer: PrincipalId, version: u64, managers: Vec<NodeId>) -> NsRecord {
        NsRecord::signed(AppId(0), version, managers, writer, &kp.secret)
    }

    fn replica(registry: &Arc<KeyRegistry>, writer: PrincipalId, peers: Vec<NodeId>) -> DirectoryReplica {
        DirectoryReplica::new(TTL, peers, Arc::clone(registry), writer)
    }

    #[test]
    fn register_and_lookup() {
        let mut ns = NameServiceNode::new(SimDuration::from_secs(60));
        let managers = vec![NodeId::from_index(1), NodeId::from_index(2)];
        ns.register(AppId(1), managers.clone());
        assert_eq!(ns.managers(AppId(1)), managers.as_slice());
        assert_eq!(ns.managers(AppId(2)), &[]);
    }

    #[test]
    fn replace_manager_set() {
        let mut ns = NameServiceNode::new(SimDuration::from_secs(60));
        ns.register(AppId(1), vec![NodeId::from_index(1)]);
        ns.register(AppId(1), vec![NodeId::from_index(9)]);
        assert_eq!(ns.managers(AppId(1)), &[NodeId::from_index(9)]);
    }

    #[test]
    fn negative_reply_gets_capped_ttl_and_metric() {
        let mut ns = NameServiceNode::new(SimDuration::from_secs(60));
        ns.register(AppId(1), vec![NodeId::from_index(1)]);
        let mut h = Harness::new();
        let host = NodeId::from_index(7);

        // Unknown app: empty set, quarter TTL, negative-reply metric.
        let effects = h.deliver(&mut ns, host, ProtoMsg::NsQuery { app: AppId(9) });
        assert!(metric_incrs(&effects).contains(&"ns.negative_reply"));
        match &sends(&effects)[..] {
            [(to, ProtoMsg::NsReply { managers, ttl, .. })] => {
                assert_eq!(*to, host);
                assert!(managers.is_empty());
                assert_eq!(*ttl, SimDuration::from_secs(15));
            }
            other => panic!("unexpected effects: {other:?}"),
        }

        // Known app: full TTL, no negative metric.
        let effects = h.deliver(&mut ns, host, ProtoMsg::NsQuery { app: AppId(1) });
        assert!(!metric_incrs(&effects).contains(&"ns.negative_reply"));
        match &sends(&effects)[..] {
            [(_, ProtoMsg::NsReply { ttl, .. })] => assert_eq!(*ttl, SimDuration::from_secs(60)),
            other => panic!("unexpected effects: {other:?}"),
        }
    }

    #[test]
    fn replica_serves_signed_record_and_negative_answer() {
        let (registry, kp, writer) = writer_setup();
        let mut rep = replica(&registry, writer, vec![]);
        let mgrs = vec![NodeId::from_index(1), NodeId::from_index(2)];
        rep.preload(record(&kp, writer, 1, mgrs.clone()));
        let mut h = Harness::new();
        let host = NodeId::from_index(9);

        let effects = h.deliver(&mut rep, host, ProtoMsg::NsQuery { app: AppId(0) });
        match &sends(&effects)[..] {
            [(to, ProtoMsg::NsRecordReply { version, managers, signature, ttl, .. })] => {
                assert_eq!(*to, host);
                assert_eq!(*version, 1);
                assert_eq!(managers, &mgrs);
                assert_eq!(*ttl, TTL);
                let sig = signature.expect("positive answers are signed");
                let r = NsRecord { app: AppId(0), version: 1, managers: mgrs.clone(), shards: None, signature: sig };
                assert!(r.verify(&registry, writer));
            }
            other => panic!("unexpected effects: {other:?}"),
        }

        let effects = h.deliver(&mut rep, host, ProtoMsg::NsQuery { app: AppId(5) });
        assert!(metric_incrs(&effects).contains(&"ns.negative_reply"));
        match &sends(&effects)[..] {
            [(_, ProtoMsg::NsRecordReply { version, managers, signature, ttl, .. })] => {
                assert_eq!(*version, 0);
                assert!(managers.is_empty());
                assert!(signature.is_none());
                assert_eq!(*ttl, TTL.mul_f64(0.25), "negative answers get the capped TTL");
            }
            other => panic!("unexpected effects: {other:?}"),
        }
        assert_eq!(rep.lookups(), 2);
    }

    #[test]
    fn publish_rejects_forgery_and_rollback_accepts_newer() {
        let (registry, kp, writer) = writer_setup();
        let mut rep = replica(&registry, writer, vec![]);
        let mut h = Harness::new();
        let m = |i| NodeId::from_index(i);

        // v2 accepted.
        let v2 = record(&kp, writer, 2, vec![m(1)]);
        let effects = h.deliver(&mut rep, NodeId::ENV, ProtoMsg::NsPublish { record: Box::new(v2) });
        assert!(metric_incrs(&effects).contains(&"ns.records_accepted"));
        assert_eq!(rep.version_of(AppId(0)), 2);

        // Rollback to v1 rejected even though the signature is valid.
        let v1 = record(&kp, writer, 1, vec![m(9)]);
        let effects = h.deliver(&mut rep, NodeId::ENV, ProtoMsg::NsPublish { record: Box::new(v1) });
        assert!(metric_incrs(&effects).contains(&"ns.publish_stale"));
        assert_eq!(rep.version_of(AppId(0)), 2);

        // Tampered v3 (signature does not cover the altered set) rejected.
        let mut v3 = record(&kp, writer, 3, vec![m(1)]);
        v3.managers = vec![m(4)];
        let effects = h.deliver(&mut rep, NodeId::ENV, ProtoMsg::NsPublish { record: Box::new(v3) });
        assert!(metric_incrs(&effects).contains(&"ns.publish_rejected"));
        assert_eq!(rep.managers(AppId(0)), &[m(1)]);

        // Wrong-key v3 rejected too.
        let mut rng = StdRng::seed_from_u64(78);
        let mallory = KeyPair::generate(&mut rng);
        let forged = NsRecord::signed(AppId(0), 3, vec![m(4)], writer, &mallory.secret);
        let effects = h.deliver(&mut rep, NodeId::ENV, ProtoMsg::NsPublish { record: Box::new(forged) });
        assert!(metric_incrs(&effects).contains(&"ns.publish_rejected"));
        assert_eq!(rep.version_of(AppId(0)), 2);
    }

    #[test]
    fn anti_entropy_converges_two_replicas() {
        let (registry, kp, writer) = writer_setup();
        let a_id = NodeId::from_index(0);
        let b_id = NodeId::from_index(1);
        let mut a = replica(&registry, writer, vec![b_id]);
        let mut b = replica(&registry, writer, vec![a_id]);
        let mut h = Harness::new();

        // A holds v2; B holds nothing.
        a.preload(record(&kp, writer, 2, vec![NodeId::from_index(3)]));

        // B's sync round probes A ...
        let effects = h.timer(&mut b, TAG_SYNC);
        let (to, probe) = sends(&effects).remove(0);
        assert_eq!(to, a_id);
        // ... A answers with its newer record ...
        let effects = h.deliver(&mut a, b_id, probe);
        let (to, delta) = sends(&effects).remove(0);
        assert_eq!(to, b_id);
        // ... and B verifies + installs it.
        let effects = h.deliver(&mut b, a_id, delta);
        assert!(metric_incrs(&effects).contains(&"ns.records_accepted"));
        assert_eq!(b.version_of(AppId(0)), 2);

        // Converged: another probe draws no response.
        let effects = h.timer(&mut b, TAG_SYNC);
        let (_, probe) = sends(&effects).remove(0);
        let effects = h.deliver(&mut a, b_id, probe);
        assert!(sends(&effects).is_empty(), "no delta when in sync");
    }

    #[test]
    fn stale_replica_suppresses_sync_both_ways() {
        let (registry, kp, writer) = writer_setup();
        let peer = NodeId::from_index(1);
        let mut rep = replica(&registry, writer, vec![peer]);
        rep.preload(record(&kp, writer, 2, vec![NodeId::from_index(3)]));
        rep.set_suppress_sync(true);
        let mut h = Harness::new();

        // No outgoing probe (the timer still re-arms).
        let effects = h.timer(&mut rep, TAG_SYNC);
        assert!(sends(&effects).is_empty());
        assert!(effects.iter().any(|e| matches!(e, Effect::SetTimer { .. })));

        // Incoming probes and deltas are dropped.
        let effects = h.deliver(&mut rep, peer, ProtoMsg::NsSyncRequest { versions: vec![] });
        assert!(sends(&effects).is_empty());
        assert!(metric_incrs(&effects).contains(&"ns.sync_suppressed"));
        let newer = record(&kp, writer, 5, vec![NodeId::from_index(8)]);
        let _ = h.deliver(&mut rep, peer, ProtoMsg::NsSyncResponse { records: vec![newer] });
        assert_eq!(rep.version_of(AppId(0)), 2, "stale replica must stay stale");
    }

    #[test]
    fn malicious_window_serves_forged_record_that_fails_verification() {
        let (registry, kp, writer) = writer_setup();
        let mut rep = replica(&registry, writer, vec![]);
        let mgrs = vec![NodeId::from_index(1), NodeId::from_index(2)];
        rep.preload(record(&kp, writer, 3, mgrs.clone()));
        rep.set_malicious(Window::new(SimTime::ZERO, SimTime::from_secs(10)));
        let mut h = Harness::new();

        let effects = h.deliver(&mut rep, NodeId::from_index(9), ProtoMsg::NsQuery { app: AppId(0) });
        assert!(metric_incrs(&effects).contains(&"ns.forged_reply"));
        match &sends(&effects)[..] {
            [(_, ProtoMsg::NsRecordReply { version, managers, signature, .. })] => {
                assert_eq!(*version, 4, "forgery rolls the version forward");
                assert_eq!(managers, &mgrs[1..], "forgery alters the manager set");
                let r = NsRecord {
                    app: AppId(0),
                    version: *version,
                    managers: managers.clone(),
                    shards: None,
                    signature: signature.unwrap(),
                };
                assert!(!r.verify(&registry, writer), "forged record must not verify");
            }
            other => panic!("unexpected effects: {other:?}"),
        }

        // Outside the window the genuine record is served again.
        h.now = LocalTime::from_nanos(SimDuration::from_secs(20).as_nanos());
        let effects = h.deliver(&mut rep, NodeId::from_index(9), ProtoMsg::NsQuery { app: AppId(0) });
        match &sends(&effects)[..] {
            [(_, ProtoMsg::NsRecordReply { version, .. })] => assert_eq!(*version, 3),
            other => panic!("unexpected effects: {other:?}"),
        }
    }

    #[test]
    fn crash_recovery_replays_records_from_stable_storage() {
        let (registry, kp, writer) = writer_setup();
        let mut rep = replica(&registry, writer, vec![]);
        rep.set_storage(Box::new(SimStorage::new(42)));
        rep.preload(record(&kp, writer, 1, vec![NodeId::from_index(1)]));
        let mut h = Harness::new();

        // Start persists genesis; a publish lands in the WAL.
        let effects = h.start(&mut rep);
        assert!(effects.iter().any(|e| matches!(
            e,
            Effect::Trace { text } if text.starts_with("audit=ns-publish")
        )));
        let v2 = record(&kp, writer, 2, vec![NodeId::from_index(4)]);
        let _ = h.deliver(&mut rep, NodeId::ENV, ProtoMsg::NsPublish { record: Box::new(v2) });
        assert_eq!(rep.version_of(AppId(0)), 2);

        // Crash wipes volatile state; recovery replays snapshot + WAL.
        rep.on_crash();
        assert_eq!(rep.version_of(AppId(0)), 0);
        let effects = h.recover(&mut rep);
        assert_eq!(rep.version_of(AppId(0)), 2);
        assert_eq!(rep.managers(AppId(0)), &[NodeId::from_index(4)]);
        assert!(metric_incrs(&effects).contains(&"ns.recovered_from_disk"));
    }

    #[test]
    fn record_codec_round_trips_and_rejects_torn_bytes() {
        let (_, kp, writer) = writer_setup();
        let r = record(&kp, writer, 7, vec![NodeId::from_index(3), NodeId::from_index(0)]);
        let bytes = encode_record(&r);
        assert_eq!(decode_record(&bytes), Some(r.clone()));
        assert_eq!(decode_record(&bytes[..bytes.len() - 1]), None, "torn tail");
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_record(&padded), None, "trailing garbage");

        let empty = record(&kp, writer, 8, vec![]);
        let snapshot = encode_snapshot([r.clone(), empty.clone()].iter());
        assert_eq!(decode_snapshot(&snapshot), vec![r, empty]);
    }
}
