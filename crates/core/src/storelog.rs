//! Binary codec for the manager's stable-storage records.
//!
//! The WAL holds one record per applied ACL operation — `(OpId, AclOp)` —
//! and the snapshot holds everything needed to rebuild the manager's
//! durable state: the Lamport counter, the applied-op-id set, and the
//! per-slot last-writer table *with* the winning operations, from which
//! the ACL itself is reconstructed (bootstrap ACL + winning op per slot
//! is exactly the ACL, since every ACL change flows through an op).
//!
//! The encodings are versioned and length-prefixed so a torn or
//! truncated read decodes to `None` instead of garbage; the storage layer
//! (CRC framing in `wanacl-rt`, torn-tail simulation in `wanacl-sim`)
//! handles physical corruption below this layer.

use wanacl_sim::node::NodeId;

use crate::msg::{AclOp, OpId};
use crate::types::{AppId, Right, ShardId, UserId};

/// Snapshot format version for flat (no released shards) state.
const SNAPSHOT_VERSION: u8 = 1;
/// Snapshot format version carrying a released-shard set. Only emitted
/// when the set is nonempty, so legacy snapshots stay byte-identical.
const SNAPSHOT_VERSION_SHARDED: u8 = 2;
/// Magic prefix distinguishing a snapshot from arbitrary bytes.
const SNAPSHOT_MAGIC: &[u8; 4] = b"WSNP";

/// Bytes of one encoded WAL record.
pub const RECORD_LEN: usize = 26;

fn right_byte(right: Right) -> u8 {
    match right {
        Right::Use => 0,
        Right::Manage => 1,
    }
}

fn right_from(byte: u8) -> Option<Right> {
    match byte {
        0 => Some(Right::Use),
        1 => Some(Right::Manage),
        _ => None,
    }
}

/// Encodes one applied operation as a fixed-size WAL record.
pub fn encode_record(id: OpId, op: &AclOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_LEN);
    out.push(if op.is_revoke() { 1 } else { 0 });
    out.extend_from_slice(&op.app().0.to_be_bytes());
    out.extend_from_slice(&op.user().0.to_be_bytes());
    out.push(right_byte(op.right()));
    out.extend_from_slice(&(id.origin.index() as u32).to_be_bytes());
    out.extend_from_slice(&id.seq.to_be_bytes());
    out
}

/// One decoded WAL record: either an applied ACL operation or a
/// shard-release marker (the manager durably renounced ownership of a
/// shard during a handoff, so it must stay silent for it after a crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecord {
    /// An applied `(OpId, AclOp)` pair — the legacy record kinds 0/1.
    Op(OpId, AclOp),
    /// A shard-release marker — record kind 2.
    ShardRelease {
        /// The shard this manager released.
        shard: ShardId,
        /// The handoff epoch the release belongs to.
        epoch: u64,
    },
}

/// Encodes a shard-release marker as a fixed-size WAL record, reusing
/// the op-record layout: the shard id rides in the app-field slot and
/// the epoch in the user-field slot; the remaining fields are zero.
pub fn encode_release(shard: ShardId, epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_LEN);
    out.push(2);
    out.extend_from_slice(&shard.0.to_be_bytes());
    out.extend_from_slice(&epoch.to_be_bytes());
    out.push(0);
    out.extend_from_slice(&0u32.to_be_bytes());
    out.extend_from_slice(&0u64.to_be_bytes());
    out
}

/// Decodes any WAL record kind; `None` on wrong length or invalid
/// fields. [`decode_record`] remains the op-only entry point for
/// callers that never see release markers.
pub fn decode_wal_record(bytes: &[u8]) -> Option<WalRecord> {
    if bytes.len() != RECORD_LEN {
        return None;
    }
    if bytes[0] == 2 {
        let shard = ShardId(u32::from_be_bytes(bytes[1..5].try_into().ok()?));
        let epoch = u64::from_be_bytes(bytes[5..13].try_into().ok()?);
        return Some(WalRecord::ShardRelease { shard, epoch });
    }
    decode_record(bytes).map(|(id, op)| WalRecord::Op(id, op))
}

/// Decodes a WAL record; `None` on wrong length or invalid fields.
pub fn decode_record(bytes: &[u8]) -> Option<(OpId, AclOp)> {
    if bytes.len() != RECORD_LEN {
        return None;
    }
    let kind = bytes[0];
    let app = AppId(u32::from_be_bytes(bytes[1..5].try_into().ok()?));
    let user = UserId(u64::from_be_bytes(bytes[5..13].try_into().ok()?));
    let right = right_from(bytes[13])?;
    let origin = u32::from_be_bytes(bytes[14..18].try_into().ok()?);
    let seq = u64::from_be_bytes(bytes[18..26].try_into().ok()?);
    let id = OpId { origin: NodeId::from_index(origin as usize), seq };
    let op = match kind {
        0 => AclOp::Add { app, user, right },
        1 => AclOp::Revoke { app, user, right },
        _ => return None,
    };
    Some((id, op))
}

/// Everything a manager persists in a snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotState {
    /// The Lamport counter at snapshot time.
    pub lamport: u64,
    /// Every operation id the manager has applied (and acked).
    pub applied: Vec<OpId>,
    /// Per-slot last writer with the winning op, in slot order.
    pub lww: Vec<(AppId, UserId, Right, OpId, AclOp)>,
    /// Shards this manager has durably released (with the handoff
    /// epoch). Empty in every flat deployment; when empty the snapshot
    /// is emitted in the legacy version-1 format, byte-identical to
    /// pre-shard builds.
    pub released: Vec<(ShardId, u64)>,
}

/// Encodes a snapshot.
pub fn encode_snapshot(state: &SnapshotState) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        16 + state.applied.len() * 12
            + state.lww.len() * (14 + RECORD_LEN)
            + state.released.len() * 12,
    );
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.push(if state.released.is_empty() { SNAPSHOT_VERSION } else { SNAPSHOT_VERSION_SHARDED });
    out.extend_from_slice(&state.lamport.to_be_bytes());
    out.extend_from_slice(&(state.applied.len() as u32).to_be_bytes());
    for id in &state.applied {
        out.extend_from_slice(&(id.origin.index() as u32).to_be_bytes());
        out.extend_from_slice(&id.seq.to_be_bytes());
    }
    out.extend_from_slice(&(state.lww.len() as u32).to_be_bytes());
    for (_, _, _, id, op) in &state.lww {
        // The record's own (app, user, right) fields are the slot key, so
        // the WAL record encoding doubles as the slot entry encoding.
        out.extend_from_slice(&encode_record(*id, op));
    }
    if !state.released.is_empty() {
        out.extend_from_slice(&(state.released.len() as u32).to_be_bytes());
        for (shard, epoch) in &state.released {
            out.extend_from_slice(&shard.0.to_be_bytes());
            out.extend_from_slice(&epoch.to_be_bytes());
        }
    }
    out
}

/// Decodes a snapshot; `None` on any structural mismatch.
pub fn decode_snapshot(bytes: &[u8]) -> Option<SnapshotState> {
    let rest = bytes.strip_prefix(&SNAPSHOT_MAGIC[..])?;
    let (&version, rest) = rest.split_first()?;
    if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_SHARDED {
        return None;
    }
    if rest.len() < 12 {
        return None;
    }
    let lamport = u64::from_be_bytes(rest[..8].try_into().ok()?);
    let applied_len = u32::from_be_bytes(rest[8..12].try_into().ok()?) as usize;
    let mut rest = &rest[12..];
    let mut applied = Vec::with_capacity(applied_len.min(1 << 20));
    for _ in 0..applied_len {
        if rest.len() < 12 {
            return None;
        }
        let origin = u32::from_be_bytes(rest[..4].try_into().ok()?);
        let seq = u64::from_be_bytes(rest[4..12].try_into().ok()?);
        applied.push(OpId { origin: NodeId::from_index(origin as usize), seq });
        rest = &rest[12..];
    }
    if rest.len() < 4 {
        return None;
    }
    let lww_len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
    rest = &rest[4..];
    let mut lww = Vec::with_capacity(lww_len.min(1 << 20));
    for _ in 0..lww_len {
        if rest.len() < RECORD_LEN {
            return None;
        }
        let (id, op) = decode_record(&rest[..RECORD_LEN])?;
        lww.push((op.app(), op.user(), op.right(), id, op));
        rest = &rest[RECORD_LEN..];
    }
    let mut released = Vec::new();
    if version == SNAPSHOT_VERSION_SHARDED {
        if rest.len() < 4 {
            return None;
        }
        let released_len = u32::from_be_bytes(rest[..4].try_into().ok()?) as usize;
        if released_len == 0 {
            // Version 2 exists only to carry a nonempty set; an empty
            // one belongs in version 1.
            return None;
        }
        rest = &rest[4..];
        released.reserve(released_len.min(1 << 20));
        for _ in 0..released_len {
            if rest.len() < 12 {
                return None;
            }
            let shard = ShardId(u32::from_be_bytes(rest[..4].try_into().ok()?));
            let epoch = u64::from_be_bytes(rest[4..12].try_into().ok()?);
            released.push((shard, epoch));
            rest = &rest[12..];
        }
    }
    if !rest.is_empty() {
        return None;
    }
    Some(SnapshotState { lamport, applied, lww, released })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(origin: usize, seq: u64) -> OpId {
        OpId { origin: NodeId::from_index(origin), seq }
    }

    #[test]
    fn record_round_trips() {
        let ops = [
            AclOp::Add { app: AppId(3), user: UserId(77), right: Right::Use },
            AclOp::Revoke { app: AppId(0), user: UserId(u64::MAX), right: Right::Manage },
        ];
        for (i, op) in ops.iter().enumerate() {
            let rid = id(i, 900 + i as u64);
            let bytes = encode_record(rid, op);
            assert_eq!(bytes.len(), RECORD_LEN);
            assert_eq!(decode_record(&bytes), Some((rid, *op)));
        }
    }

    #[test]
    fn truncated_or_corrupt_record_is_rejected() {
        let op = AclOp::Add { app: AppId(1), user: UserId(2), right: Right::Use };
        let bytes = encode_record(id(0, 1), &op);
        assert_eq!(decode_record(&bytes[..RECORD_LEN - 1]), None);
        let mut bad_kind = bytes.clone();
        bad_kind[0] = 9;
        assert_eq!(decode_record(&bad_kind), None);
        let mut bad_right = bytes;
        bad_right[13] = 7;
        assert_eq!(decode_record(&bad_right), None);
    }

    #[test]
    fn snapshot_round_trips() {
        let op_a = AclOp::Add { app: AppId(0), user: UserId(1), right: Right::Use };
        let op_b = AclOp::Revoke { app: AppId(0), user: UserId(2), right: Right::Manage };
        let state = SnapshotState {
            lamport: 42,
            applied: vec![id(0, 1), id(2, 41)],
            lww: vec![
                (op_a.app(), op_a.user(), op_a.right(), id(0, 1), op_a),
                (op_b.app(), op_b.user(), op_b.right(), id(2, 41), op_b),
            ],
            released: vec![],
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(bytes[4], 1, "no released shards stays version 1");
        assert_eq!(decode_snapshot(&bytes), Some(state));
    }

    #[test]
    fn release_record_round_trips() {
        let bytes = encode_release(ShardId(3), 17);
        assert_eq!(bytes.len(), RECORD_LEN);
        assert_eq!(
            decode_wal_record(&bytes),
            Some(WalRecord::ShardRelease { shard: ShardId(3), epoch: 17 })
        );
        // The op-only decoder must not misread a release as an op.
        assert_eq!(decode_record(&bytes), None);
        // And the generic decoder still reads op records.
        let op = AclOp::Add { app: AppId(1), user: UserId(2), right: Right::Use };
        let op_bytes = encode_record(id(0, 5), &op);
        assert_eq!(decode_wal_record(&op_bytes), Some(WalRecord::Op(id(0, 5), op)));
        assert_eq!(decode_wal_record(&bytes[..RECORD_LEN - 1]), None);
    }

    #[test]
    fn sharded_snapshot_round_trips() {
        let op = AclOp::Add { app: AppId(0), user: UserId(1), right: Right::Use };
        let state = SnapshotState {
            lamport: 9,
            applied: vec![id(0, 1)],
            lww: vec![(op.app(), op.user(), op.right(), id(0, 1), op)],
            released: vec![(ShardId(0), 2), (ShardId(4), 7)],
        };
        let bytes = encode_snapshot(&state);
        assert_eq!(bytes[4], 2, "released shards bump to version 2");
        assert_eq!(decode_snapshot(&bytes), Some(state.clone()));
        assert_eq!(decode_snapshot(&bytes[..bytes.len() - 1]), None, "truncated");
        // A flat-era decoder would reject version 2 outright; our
        // decoder rejects the degenerate empty-set version 2 too.
        let mut empty_v2 = encode_snapshot(&SnapshotState::default());
        empty_v2[4] = 2;
        empty_v2.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(decode_snapshot(&empty_v2), None);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let state = SnapshotState::default();
        assert_eq!(decode_snapshot(&encode_snapshot(&state)), Some(state));
    }

    #[test]
    fn snapshot_rejects_tampering() {
        let bytes = encode_snapshot(&SnapshotState { lamport: 7, ..Default::default() });
        assert_eq!(decode_snapshot(&bytes[..bytes.len() - 1]), None, "truncated");
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(decode_snapshot(&wrong_version), None, "unknown version");
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(decode_snapshot(&wrong_magic), None, "bad magic");
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode_snapshot(&trailing), None, "trailing bytes");
    }
}
