//! Workload agents: users invoking applications and admins issuing
//! access-right changes.
//!
//! These are the traffic generators of every experiment. A [`UserAgent`]
//! issues `Invoke`s (Poisson arrivals) against a set of hosts and records
//! outcomes; an [`AdminAgent`] plays the manager-principal of §2.3,
//! issuing `Add`/`Revoke` operations and persistently retrying until the
//! receiving manager confirms them.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use wanacl_auth::rsa::{self, SecretKey};
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId, TimerId};
use wanacl_sim::time::SimDuration;

use crate::msg::{
    admin_signing_bytes, invoke_signing_bytes, AclOp, AdminStatus, InvokeOutcome, ProtoMsg,
    RejectReason, ReqId,
};
use crate::types::{user_bucket, AppId, UserId};

const TAG_KIND_SHIFT: u64 = 56;
const TAG_ARRIVAL: u64 = 1 << TAG_KIND_SHIFT;
const TAG_TIMEOUT: u64 = 2 << TAG_KIND_SHIFT;
const TAG_ACTION: u64 = 3 << TAG_KIND_SHIFT;
const TAG_RESEND: u64 = 4 << TAG_KIND_SHIFT;
const TAG_PAYLOAD_MASK: u64 = (1 << TAG_KIND_SHIFT) - 1;

/// Shape of a user's automatic request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadShape {
    /// Memoryless arrivals with the given mean inter-arrival time.
    Poisson {
        /// Mean inter-arrival time.
        mean: SimDuration,
    },
    /// Fixed-period arrivals (useful for deterministic experiments).
    Periodic {
        /// The period.
        period: SimDuration,
    },
    /// On/off bursts: idle for ~`off_mean`, then a burst lasting
    /// ~`on_mean` with requests every ~`rate_mean` (all exponential).
    /// Models the flash-crowd traffic the paper's "massively
    /// replicated" services see.
    Bursty {
        /// Mean burst duration.
        on_mean: SimDuration,
        /// Mean idle gap between bursts.
        off_mean: SimDuration,
        /// Mean inter-arrival time inside a burst.
        rate_mean: SimDuration,
    },
}

/// Configuration of a [`UserAgent`].
#[derive(Debug, Clone)]
pub struct UserAgentConfig {
    /// The user this agent acts as.
    pub user: UserId,
    /// The application it invokes.
    pub app: AppId,
    /// Hosts it may contact (chosen uniformly per request). Shared
    /// (`Arc<[NodeId]>`): every user in a deployment points at the same
    /// host list instead of carrying its own copy.
    pub hosts: Arc<[NodeId]>,
    /// Automatic request stream; `None` disables it (requests are then
    /// only triggered by the harness injecting an `Invoke` from the
    /// environment).
    pub workload: Option<WorkloadShape>,
    /// Request body (shared, cheap to clone per request).
    pub payload: Arc<str>,
    /// Secret key for signing requests (`None` sends unsigned).
    pub secret: Option<SecretKey>,
    /// How long to wait for a host reply before counting a timeout.
    pub request_timeout: SimDuration,
    /// Stop after this many automatic requests (`None` = unbounded).
    pub max_requests: Option<u64>,
}

/// Outcome counters kept by a [`UserAgent`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UserStats {
    /// Requests sent.
    pub sent: u64,
    /// Requests allowed (the application ran).
    pub allowed: u64,
    /// Requests denied by access control.
    pub denied: u64,
    /// Requests rejected as unavailable (quorum unreachable).
    pub unavailable: u64,
    /// Requests rejected for bad signatures.
    pub bad_signature: u64,
    /// Requests that got no reply within the timeout.
    pub timeouts: u64,
}

impl UserStats {
    /// Requests with any definitive reply.
    pub fn replied(&self) -> u64 {
        self.allowed + self.denied + self.unavailable + self.bad_signature
    }
}

#[derive(Debug)]
struct OutstandingRequest {
    timer: TimerId,
}

/// A user issuing `Invoke`s against application hosts.
#[derive(Debug)]
pub struct UserAgent {
    config: UserAgentConfig,
    next_req: u64,
    outstanding: BTreeMap<ReqId, OutstandingRequest>,
    stats: UserStats,
    last_outcome: Option<InvokeOutcome>,
    auto_sent: u64,
    /// For bursty workloads: local time the current burst ends.
    burst_until: Option<LocalTime>,
}

impl UserAgent {
    /// Creates the agent.
    pub fn new(config: UserAgentConfig) -> Self {
        UserAgent {
            config,
            next_req: 0,
            outstanding: BTreeMap::new(),
            stats: UserStats::default(),
            last_outcome: None,
            auto_sent: 0,
            burst_until: None,
        }
    }

    /// The agent's outcome counters.
    pub fn stats(&self) -> UserStats {
        self.stats
    }

    /// The most recent reply outcome (for scripted tests).
    pub fn last_outcome(&self) -> Option<&InvokeOutcome> {
        self.last_outcome.as_ref()
    }

    /// Requests still awaiting a reply.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    fn send_request(&mut self, ctx: &mut Context<'_, ProtoMsg>, payload: Option<Arc<str>>) {
        if self.config.hosts.is_empty() {
            return;
        }
        self.next_req += 1;
        let req = ReqId(self.next_req);
        let host = *ctx.rng().choose(&self.config.hosts);
        let payload = payload.unwrap_or_else(|| self.config.payload.clone());
        let signature = self.config.secret.as_ref().map(|key| {
            let bytes = invoke_signing_bytes(self.config.user, self.config.app, req, &payload);
            rsa::sign(key, &bytes)
        });
        self.stats.sent += 1;
        ctx.metric_incr("user.sent");
        ctx.send(
            host,
            ProtoMsg::Invoke {
                app: self.config.app,
                user: self.config.user,
                req,
                payload,
                signature,
            },
        );
        let timer = ctx.set_timer(self.config.request_timeout, TAG_TIMEOUT | req.0);
        self.outstanding.insert(req, OutstandingRequest { timer });
    }

    fn schedule_arrival(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let Some(shape) = self.config.workload else { return };
        if let Some(max) = self.config.max_requests {
            if self.auto_sent >= max {
                return;
            }
        }
        let wait = match shape {
            WorkloadShape::Poisson { mean } => {
                SimDuration::from_secs_f64(ctx.rng().exponential(mean.as_secs_f64()))
            }
            WorkloadShape::Periodic { period } => period,
            WorkloadShape::Bursty { on_mean, off_mean, rate_mean } => {
                let now = ctx.local_now();
                let in_burst = self.burst_until.map(|until| now < until).unwrap_or(false);
                if in_burst {
                    SimDuration::from_secs_f64(ctx.rng().exponential(rate_mean.as_secs_f64()))
                } else {
                    // Rest, then open a new burst; its first request
                    // arrives when the gap ends.
                    let gap =
                        SimDuration::from_secs_f64(ctx.rng().exponential(off_mean.as_secs_f64()));
                    let burst_len =
                        SimDuration::from_secs_f64(ctx.rng().exponential(on_mean.as_secs_f64()));
                    self.burst_until = Some(now.plus(gap + burst_len));
                    gap
                }
            }
        };
        ctx.set_timer(wait, TAG_ARRIVAL);
    }
}

impl Node for UserAgent {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.schedule_arrival(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            // Harness path: an Invoke sent *to* a user agent from the
            // environment means "issue one request now".
            ProtoMsg::Invoke { payload, .. } if from == NodeId::ENV => {
                self.send_request(ctx, Some(payload));
            }
            ProtoMsg::InvokeReply { req, outcome } => {
                let Some(out) = self.outstanding.remove(&req) else { return };
                ctx.cancel_timer(out.timer);
                match &outcome {
                    InvokeOutcome::Allowed { .. } => {
                        self.stats.allowed += 1;
                        ctx.metric_incr("user.allowed");
                    }
                    InvokeOutcome::Denied => {
                        self.stats.denied += 1;
                        ctx.metric_incr("user.denied");
                    }
                    InvokeOutcome::Unavailable => {
                        self.stats.unavailable += 1;
                        ctx.metric_incr("user.unavailable");
                    }
                    InvokeOutcome::BadSignature => {
                        self.stats.bad_signature += 1;
                        ctx.metric_incr("user.bad_signature");
                    }
                }
                self.last_outcome = Some(outcome);
            }
            _ => {
                ctx.metric_incr("user.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        match tag & !TAG_PAYLOAD_MASK {
            TAG_ARRIVAL => {
                self.auto_sent += 1;
                self.send_request(ctx, None);
                self.schedule_arrival(ctx);
            }
            TAG_TIMEOUT => {
                let req = ReqId(tag & TAG_PAYLOAD_MASK);
                if self.outstanding.remove(&req).is_some() {
                    self.stats.timeouts += 1;
                    ctx.metric_incr("user.timeout");
                }
            }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        self.outstanding.clear();
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.schedule_arrival(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// One scripted admin action.
#[derive(Debug, Clone)]
pub struct AdminAction {
    /// Delay (local clock) from agent start to issuing the operation.
    pub delay: SimDuration,
    /// The operation.
    pub op: AclOp,
}

/// Progress of one admin operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpProgress {
    /// Not yet sent.
    Scheduled,
    /// Sent, awaiting the manager's `Applied`.
    Sent,
    /// Applied at the receiving manager.
    Applied,
    /// Reached its update quorum; the `Te` revocation clock is running.
    Stable,
    /// Refused by the manager.
    Rejected(RejectReason),
}

#[derive(Debug)]
struct OpRecord {
    op: AclOp,
    req: ReqId,
    progress: OpProgress,
    sent_at: Option<LocalTime>,
    stable_after: Option<SimDuration>,
}

/// One row of an admin shard-routing table: operations on `app` whose
/// subject hashes into `lo..=hi` go to `manager`.
#[derive(Debug, Clone, Copy)]
pub struct AdminRoute {
    /// Application the row covers.
    pub app: AppId,
    /// Inclusive low end of the bucket range.
    pub lo: u8,
    /// Inclusive high end of the bucket range.
    pub hi: u8,
    /// Manager serving that shard.
    pub manager: NodeId,
}

/// Configuration of an [`AdminAgent`].
#[derive(Debug, Clone)]
pub struct AdminAgentConfig {
    /// The manager-principal issuing operations.
    pub issuer: UserId,
    /// Secret key for signing operations (`None` sends unsigned).
    pub secret: Option<SecretKey>,
    /// The manager node the agent talks to.
    pub manager: NodeId,
    /// Sharded deployments: route each operation to the manager owning
    /// the subject's bucket. Empty = always talk to `manager`.
    pub routes: Vec<AdminRoute>,
    /// Scripted operations.
    pub script: Vec<AdminAction>,
    /// Retransmission period until the manager confirms `Applied`.
    pub resend_interval: SimDuration,
    /// §2.3 blocking semantics: issue operations strictly one at a
    /// time, starting the next only once the previous one is `Stable`
    /// (or rejected). `false` pipelines them.
    pub serial: bool,
}

/// An administrator issuing `Add`/`Revoke` operations against a manager.
///
/// Beyond the script, the harness can inject `ProtoMsg::Admin` messages
/// from the environment to trigger operations dynamically.
#[derive(Debug)]
pub struct AdminAgent {
    config: AdminAgentConfig,
    ops: Vec<OpRecord>,
    by_req: BTreeMap<ReqId, usize>,
    next_req: u64,
    /// Operations waiting behind an in-flight one in serial mode.
    backlog: std::collections::VecDeque<AclOp>,
}

impl AdminAgent {
    /// Creates the agent.
    pub fn new(config: AdminAgentConfig) -> Self {
        AdminAgent {
            config,
            ops: Vec::new(),
            by_req: BTreeMap::new(),
            next_req: 0,
            backlog: std::collections::VecDeque::new(),
        }
    }

    /// Progress of the `i`-th operation (script order, then dynamic
    /// injections in arrival order).
    pub fn progress(&self, i: usize) -> Option<OpProgress> {
        self.ops.get(i).map(|r| r.progress)
    }

    /// Local-clock latency from send to `Stable` for the `i`-th
    /// operation, if it has stabilized.
    pub fn stable_latency(&self, i: usize) -> Option<SimDuration> {
        self.ops.get(i).and_then(|r| r.stable_after)
    }

    /// Local-clock instant the `i`-th operation was first sent.
    pub fn sent_at(&self, i: usize) -> Option<LocalTime> {
        self.ops.get(i).and_then(|r| r.sent_at)
    }

    /// Number of tracked operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// How many operations have reached `Stable`.
    pub fn stable_count(&self) -> usize {
        self.ops.iter().filter(|r| r.progress == OpProgress::Stable).count()
    }

    /// Whether an operation is still awaiting its `Stable` confirmation.
    pub fn has_in_flight(&self) -> bool {
        self.ops
            .iter()
            .any(|r| matches!(r.progress, OpProgress::Sent | OpProgress::Applied))
    }

    /// Operations queued behind the in-flight one (serial mode only).
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Issues now, or queues behind the in-flight op in serial mode.
    fn submit(&mut self, ctx: &mut Context<'_, ProtoMsg>, op: AclOp) {
        if self.config.serial && self.has_in_flight() {
            self.backlog.push_back(op);
            ctx.metric_incr("admin.op_queued");
        } else {
            self.issue(ctx, op);
        }
    }

    /// In serial mode, launches the next queued op once the previous one
    /// settled.
    fn drain_backlog(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if self.config.serial && !self.has_in_flight() {
            if let Some(op) = self.backlog.pop_front() {
                self.issue(ctx, op);
            }
        }
    }

    fn issue(&mut self, ctx: &mut Context<'_, ProtoMsg>, op: AclOp) -> usize {
        self.next_req += 1;
        let req = ReqId(self.next_req);
        let idx = self.ops.len();
        self.ops.push(OpRecord {
            op,
            req,
            progress: OpProgress::Sent,
            sent_at: Some(ctx.local_now()),
            stable_after: None,
        });
        self.by_req.insert(req, idx);
        self.send_op(ctx, idx);
        idx
    }

    /// Target manager for an operation: the covering route row in a
    /// sharded deployment, the fixed manager otherwise.
    fn route(&self, op: &AclOp) -> NodeId {
        let bucket = user_bucket(op.user());
        self.config
            .routes
            .iter()
            .find(|r| r.app == op.app() && r.lo <= bucket && bucket <= r.hi)
            .map(|r| r.manager)
            .unwrap_or(self.config.manager)
    }

    fn send_op(&mut self, ctx: &mut Context<'_, ProtoMsg>, idx: usize) {
        let rec = &self.ops[idx];
        let target = self.route(&rec.op);
        let signature = self.config.secret.as_ref().map(|key| {
            rsa::sign(key, &admin_signing_bytes(self.config.issuer, &rec.op))
        });
        ctx.metric_incr("admin.op_sent");
        ctx.send(
            target,
            ProtoMsg::Admin {
                op: rec.op,
                req: rec.req,
                issuer: self.config.issuer,
                signature,
            },
        );
    }
}

impl Node for AdminAgent {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        for (i, action) in self.config.script.clone().into_iter().enumerate() {
            ctx.set_timer(action.delay, TAG_ACTION | i as u64);
        }
        ctx.set_timer(self.config.resend_interval, TAG_RESEND);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            // Harness path: an Admin message from the environment means
            // "issue this operation now".
            ProtoMsg::Admin { op, .. } if from == NodeId::ENV => {
                self.submit(ctx, op);
            }
            ProtoMsg::AdminReply { req, status } => {
                let Some(&idx) = self.by_req.get(&req) else { return };
                let rec = &mut self.ops[idx];
                match status {
                    AdminStatus::Applied => {
                        if rec.progress == OpProgress::Sent {
                            rec.progress = OpProgress::Applied;
                        }
                    }
                    AdminStatus::Stable => {
                        if rec.progress != OpProgress::Stable {
                            rec.progress = OpProgress::Stable;
                            let elapsed = rec
                                .sent_at
                                .map(|s| ctx.local_now().since(s))
                                .unwrap_or(SimDuration::ZERO);
                            rec.stable_after = Some(elapsed);
                            ctx.metric_observe("admin.time_to_stable_s", elapsed.as_secs_f64());
                        }
                        self.drain_backlog(ctx);
                    }
                    AdminStatus::Rejected { reason } => {
                        rec.progress = OpProgress::Rejected(reason);
                        ctx.metric_incr("admin.rejected");
                        self.drain_backlog(ctx);
                    }
                }
            }
            _ => {
                ctx.metric_incr("admin.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        match tag & !TAG_PAYLOAD_MASK {
            TAG_ACTION => {
                let idx = (tag & TAG_PAYLOAD_MASK) as usize;
                if let Some(action) = self.config.script.get(idx).cloned() {
                    self.submit(ctx, action.op);
                }
            }
            TAG_RESEND => {
                // Persist toward the manager until it confirms receipt.
                let unconfirmed: Vec<usize> = self
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.progress == OpProgress::Sent)
                    .map(|(i, _)| i)
                    .collect();
                for idx in unconfirmed {
                    ctx.metric_incr("admin.op_resent");
                    self.send_op(ctx, idx);
                }
                ctx.set_timer(self.config.resend_interval, TAG_RESEND);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
