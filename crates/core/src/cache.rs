//! The host-side ACL cache (`ACL_cache(A)` of Figures 2–3).
//!
//! Each entry is a `(user, limit)` tuple: the user's `use` right is
//! trusted until `limit` on the *host's local clock*. The limit is set to
//! `query_start + te` where `te = b·Te` came from a manager — the `δ`
//! adjustment of §3.2 (charging the whole round trip against the budget)
//! falls out of anchoring at query start rather than response receipt.

use std::collections::BTreeMap;

use wanacl_sim::clock::LocalTime;

use crate::types::UserId;

/// Result of a cache lookup at a given local time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDecision {
    /// A live entry exists; valid until the contained limit.
    Fresh(LocalTime),
    /// An entry existed but its limit has passed; the lookup removed it
    /// (Figure 3: "the access control tuple is removed and the access is
    /// rechecked with a manager").
    Expired,
    /// No entry for this user.
    Missing,
}

/// One cached grant: the expiry limit plus when the entry last served a
/// request (drives the proactive-refresh policy: only leases that are
/// actually being used get renewed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    limit: LocalTime,
    last_used: LocalTime,
}

/// The per-application cache of granted rights held by a host.
///
/// # Examples
///
/// ```
/// use wanacl_core::cache::{AclCache, CacheDecision};
/// use wanacl_core::types::UserId;
/// use wanacl_sim::clock::LocalTime;
///
/// let mut cache = AclCache::new();
/// cache.insert(UserId(1), LocalTime::from_nanos(1_000));
/// assert!(matches!(
///     cache.lookup(UserId(1), LocalTime::from_nanos(500)),
///     CacheDecision::Fresh(_)
/// ));
/// assert_eq!(cache.lookup(UserId(1), LocalTime::from_nanos(1_000)), CacheDecision::Expired);
/// assert_eq!(cache.lookup(UserId(1), LocalTime::from_nanos(2_000)), CacheDecision::Missing);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AclCache {
    entries: BTreeMap<UserId, Entry>,
    /// Expiry-ordered index: `limit → users indexed under that limit`.
    /// `sweep` walks only the buckets whose limit has passed instead of
    /// scanning every live entry. Buckets are invalidated lazily — an
    /// entry that was extended, removed, or re-created since its bucket
    /// was written is re-validated against `entries` before removal —
    /// so the index never has to be updated on those paths.
    expiry: BTreeMap<LocalTime, Vec<UserId>>,
    /// Fault-injection knob: when set, `lookup` treats expired entries as
    /// fresh and `sweep` drops nothing. This deliberately breaks the
    /// protocol's time-bound revocation guarantee so nemesis campaigns
    /// can prove the invariant oracle catches a real safety bug. Never
    /// set outside fault-injection harnesses.
    ignore_expiry: bool,
}

impl AclCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up `user` at local time `now`, removing the entry if it has
    /// expired. A fresh hit also records `now` as the entry's last use.
    ///
    /// An entry whose limit equals `now` counts as expired: Figure 3
    /// grants only while `Time() < Rec.limit`.
    pub fn lookup(&mut self, user: UserId, now: LocalTime) -> CacheDecision {
        match self.entries.get_mut(&user) {
            Some(entry) if now < entry.limit || self.ignore_expiry => {
                entry.last_used = now;
                CacheDecision::Fresh(entry.limit)
            }
            Some(_) => {
                self.entries.remove(&user);
                CacheDecision::Expired
            }
            None => CacheDecision::Missing,
        }
    }

    /// Inserts (or refreshes) the entry for `user` valid until `limit`.
    ///
    /// A refresh never shortens an existing entry's life — a concurrent
    /// slower grant must not truncate a newer one.
    pub fn insert(&mut self, user: UserId, limit: LocalTime) {
        use std::collections::btree_map::Entry as Slot;
        match self.entries.entry(user) {
            Slot::Vacant(slot) => {
                slot.insert(Entry { limit, last_used: LocalTime::ZERO });
                self.expiry.entry(limit).or_default().push(user);
            }
            Slot::Occupied(mut slot) => {
                let entry = slot.get_mut();
                if limit > entry.limit {
                    // The old bucket goes stale; sweep skips it because
                    // the entry's limit no longer matches.
                    entry.limit = limit;
                    self.expiry.entry(limit).or_default().push(user);
                }
            }
        }
    }

    /// Flushes the entry for `user` (the `Revoke` handler of Figures 2–3;
    /// removing a non-existent entry is a no-op).
    pub fn remove(&mut self, user: UserId) -> bool {
        self.entries.remove(&user).is_some()
    }

    /// Drops every entry (host recovery: §3.4 "ACL cache(A) can simply be
    /// initialized to null").
    pub fn clear(&mut self) {
        self.entries.clear();
        self.expiry.clear();
    }

    /// Removes all entries expired at `now`; returns how many were
    /// dropped. This is the §3.2 periodic check that "can save memory and
    /// processing overhead".
    ///
    /// Cost is proportional to the number of *due* expiry buckets, not
    /// the number of live entries: the expiry index orders entries by
    /// limit, so a sweep with nothing expired is one `BTreeMap` peek.
    pub fn sweep(&mut self, now: LocalTime) -> usize {
        if self.ignore_expiry {
            // Leave the index intact: if the injected bug is later
            // turned off, the overdue buckets are still there to sweep.
            return 0;
        }
        let mut dropped = 0;
        while let Some((&bucket, _)) = self.expiry.first_key_value() {
            if now < bucket {
                break;
            }
            let (_, users) = self.expiry.pop_first().expect("peeked non-empty");
            for user in users {
                // Re-validate: the entry may have been extended past
                // this bucket, removed, or re-created since.
                if self.entries.get(&user).is_some_and(|e| now >= e.limit) {
                    self.entries.remove(&user);
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Number of live entries (including any that have expired but not
    /// yet been swept or looked up).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored limit for `user` without expiry side effects (for
    /// inspection in tests and experiments).
    pub fn peek(&self, user: UserId) -> Option<LocalTime> {
        self.entries.get(&user).map(|e| e.limit)
    }

    /// When the entry for `user` last served a request, if cached.
    pub fn last_used(&self, user: UserId) -> Option<LocalTime> {
        self.entries.get(&user).map(|e| e.last_used)
    }

    /// Enables (or disables) the deliberate ignore-expiry bug — a
    /// fault-injection hook for validating the invariant oracle. With it
    /// on, entries never expire from `lookup` or `sweep`, so a revoked
    /// right keeps being honoured far past the `Te` bound.
    pub fn set_ignore_expiry(&mut self, on: bool) {
        self.ignore_expiry = on;
    }

    /// Marks the entry as used at `now` without a lookup (the grant that
    /// creates an entry counts as a use; background refreshes do not).
    pub fn touch(&mut self, user: UserId, now: LocalTime) {
        if let Some(entry) = self.entries.get_mut(&user) {
            if now > entry.last_used {
                entry.last_used = now;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> LocalTime {
        LocalTime::from_nanos(n)
    }

    #[test]
    fn lookup_fresh_then_expired() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(100));
        assert_eq!(c.lookup(UserId(1), t(99)), CacheDecision::Fresh(t(100)));
        assert_eq!(c.lookup(UserId(1), t(100)), CacheDecision::Expired);
        // The expired lookup removed the entry.
        assert_eq!(c.lookup(UserId(1), t(100)), CacheDecision::Missing);
    }

    #[test]
    fn missing_user_is_missing() {
        let mut c = AclCache::new();
        assert_eq!(c.lookup(UserId(5), t(0)), CacheDecision::Missing);
    }

    #[test]
    fn insert_refresh_extends_but_never_shortens() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(100));
        c.insert(UserId(1), t(50));
        assert_eq!(c.peek(UserId(1)), Some(t(100)));
        c.insert(UserId(1), t(200));
        assert_eq!(c.peek(UserId(1)), Some(t(200)));
    }

    #[test]
    fn remove_is_noop_when_absent() {
        let mut c = AclCache::new();
        assert!(!c.remove(UserId(1)));
        c.insert(UserId(1), t(10));
        assert!(c.remove(UserId(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn sweep_drops_only_expired() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.insert(UserId(2), t(20));
        c.insert(UserId(3), t(30));
        assert_eq!(c.sweep(t(20)), 2); // limits 10 and 20 are both dead at 20
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(UserId(3)), Some(t(30)));
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.insert(UserId(2), t(10));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn last_used_tracks_fresh_hits_only() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(100));
        assert_eq!(c.last_used(UserId(1)), Some(LocalTime::ZERO));
        c.lookup(UserId(1), t(40));
        assert_eq!(c.last_used(UserId(1)), Some(t(40)));
        // A refresh keeps the usage mark.
        c.insert(UserId(1), t(200));
        assert_eq!(c.last_used(UserId(1)), Some(t(40)));
        // Expired lookup removes the entry.
        c.lookup(UserId(1), t(300));
        assert_eq!(c.last_used(UserId(1)), None);
    }

    #[test]
    fn ignore_expiry_keeps_dead_entries_alive() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(100));
        c.set_ignore_expiry(true);
        assert_eq!(c.lookup(UserId(1), t(500)), CacheDecision::Fresh(t(100)));
        assert_eq!(c.sweep(t(500)), 0);
        c.set_ignore_expiry(false);
        assert_eq!(c.lookup(UserId(1), t(500)), CacheDecision::Expired);
    }

    #[test]
    fn sweep_skips_stale_buckets_from_extended_entries() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.insert(UserId(1), t(100)); // extension leaves a stale bucket at 10
        assert_eq!(c.sweep(t(50)), 0, "extended entry must survive its old bucket");
        assert_eq!(c.peek(UserId(1)), Some(t(100)));
        assert_eq!(c.sweep(t(100)), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn sweep_skips_buckets_of_removed_and_recreated_entries() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.remove(UserId(1));
        assert_eq!(c.sweep(t(50)), 0, "removed entry leaves only a stale bucket");
        // Re-created with a later limit: the old bucket must not kill it.
        c.insert(UserId(2), t(20));
        c.lookup(UserId(2), t(30)); // expired lookup removes the entry
        c.insert(UserId(2), t(100));
        assert_eq!(c.sweep(t(40)), 0);
        assert_eq!(c.peek(UserId(2)), Some(t(100)));
    }

    #[test]
    fn sweep_after_ignore_expiry_disabled_still_drops_overdue_entries() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.set_ignore_expiry(true);
        assert_eq!(c.sweep(t(50)), 0);
        c.set_ignore_expiry(false);
        assert_eq!(c.sweep(t(50)), 1, "the overdue bucket must still be indexed");
    }

    #[test]
    fn entries_are_per_user() {
        let mut c = AclCache::new();
        c.insert(UserId(1), t(10));
        c.insert(UserId(2), t(100));
        assert_eq!(c.lookup(UserId(1), t(50)), CacheDecision::Expired);
        assert_eq!(c.lookup(UserId(2), t(50)), CacheDecision::Fresh(t(100)));
    }
}
