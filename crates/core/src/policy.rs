//! Per-application protocol policy: the knobs of §4's tradeoff.
//!
//! The paper's central claim is that no single security/availability
//! policy fits all applications, so the protocol exposes four parameters
//! per application (§4.1):
//!
//! * `M` — the number of managers (implied by the deployment),
//! * `C` — the **check quorum**: a host must hear from `C` managers before
//!   granting; the corresponding **update quorum** is `M − C + 1`,
//! * `Te` — the **revocation bound**: once a revoke reaches an update
//!   quorum, no host grants the revoked right more than `Te` later,
//! * `R` — the **attempt bound**: how many times a host retries the check
//!   before giving up, and whether giving up fails open (Figure 4) or
//!   closed.
//!
//! Plus the alternative **freeze strategy** of §3.3 (inaccessibility
//! period `Ti`).

use crate::breaker::BreakerConfig;
use wanacl_sim::time::SimDuration;

/// What a host does when `R` check attempts have all failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustionBehavior {
    /// Reject the access (security over availability; the default).
    FailClosed,
    /// Allow the access (availability over security — Figure 4, for
    /// "on-line magazines and newspapers").
    FailOpen,
}

/// How a host fans out check queries within one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryFanout {
    /// Query every manager in the current view and grant as soon as `C`
    /// grants arrive. Availability per attempt matches the paper's
    /// `PA(C)` exactly (any `C` accessible managers suffice); message
    /// cost is `O(M)` per check.
    All,
    /// Query a random `C`-subset per attempt, rotating subsets across
    /// retries. Message cost is the paper's `O(C)` per check; a single
    /// attempt succeeds only if the whole chosen subset is accessible.
    Subset,
    /// Figure 2's basic loop: "send query to **a** manager … while
    /// pending" — one manager per attempt, rotating deterministically
    /// across retries. Only meaningful with `C = 1` (enforced at build).
    Sequential,
}

/// The §3.3 freeze strategy: if any peer manager has been silent for
/// longer than `ti`, stop answering checks until the whole manager set is
/// mutually reachable again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreezePolicy {
    /// Inaccessibility period `Ti`. Must satisfy `Ti + te ≤ Te`.
    pub ti: SimDuration,
    /// How often managers exchange heartbeats (must be well under `ti`).
    pub heartbeat_interval: SimDuration,
}

/// Per-application policy. Build with [`Policy::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    check_quorum: usize,
    revocation_bound: SimDuration,
    clock_rate_bound: f64,
    query_timeout: SimDuration,
    max_attempts: u32,
    exhaustion: ExhaustionBehavior,
    freeze: Option<FreezePolicy>,
    cache_sweep_interval: SimDuration,
    fanout: QueryFanout,
    refresh_margin: Option<SimDuration>,
    ns_retry_cap: SimDuration,
    ns_retry_jitter: f64,
    deadline_budget: Option<SimDuration>,
    breaker: Option<BreakerConfig>,
}

impl Policy {
    /// Starts building a policy with the given check quorum `C`.
    pub fn builder(check_quorum: usize) -> PolicyBuilder {
        PolicyBuilder::new(check_quorum)
    }

    /// The check quorum `C`.
    pub fn check_quorum(&self) -> usize {
        self.check_quorum
    }

    /// The update quorum `M − C + 1` for a deployment of `m` managers.
    ///
    /// Every completed update intersects every check quorum: a `C`-subset
    /// and an `(M−C+1)`-subset of an `M`-set always share an element.
    ///
    /// # Panics
    ///
    /// Panics if `m < C` (the policy cannot be satisfied at all).
    pub fn update_quorum(&self, m: usize) -> usize {
        assert!(
            m >= self.check_quorum,
            "deployment has {m} managers but policy requires check quorum {}",
            self.check_quorum
        );
        m - self.check_quorum + 1
    }

    /// The revocation bound `Te` (real time).
    pub fn revocation_bound(&self) -> SimDuration {
        self.revocation_bound
    }

    /// The clock-rate bound `b ∈ (0, 1]`.
    pub fn clock_rate_bound(&self) -> f64 {
        self.clock_rate_bound
    }

    /// The expiration budget `te = b · Te` that managers hand to hosts,
    /// measured on the *receiving host's* local clock (§3.2).
    pub fn expiry_budget(&self) -> SimDuration {
        self.revocation_bound.mul_f64(self.clock_rate_bound)
    }

    /// Per-attempt query timeout (host local clock).
    pub fn query_timeout(&self) -> SimDuration {
        self.query_timeout
    }

    /// The attempt bound `R`.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// What happens after `R` failed attempts.
    pub fn exhaustion(&self) -> ExhaustionBehavior {
        self.exhaustion
    }

    /// The freeze strategy, if enabled.
    pub fn freeze(&self) -> Option<FreezePolicy> {
        self.freeze
    }

    /// How often hosts sweep expired entries out of their caches.
    pub fn cache_sweep_interval(&self) -> SimDuration {
        self.cache_sweep_interval
    }

    /// The query fan-out strategy.
    pub fn fanout(&self) -> QueryFanout {
        self.fanout
    }

    /// Proactive lease refresh: if set, a host re-checks an *actively
    /// used* cached right this long (local clock) before the lease
    /// expires, so steady users never hit a cold check after the first.
    ///
    /// This is the "refreshed by a manager" mechanism §2.3 alludes to;
    /// it changes latency, not safety — a refresh is an ordinary check
    /// and a denial flushes the entry immediately.
    pub fn refresh_margin(&self) -> Option<SimDuration> {
        self.refresh_margin
    }

    /// Cap on the name-service re-query delay (see
    /// [`Policy::ns_retry_backoff`]).
    pub fn ns_retry_cap(&self) -> SimDuration {
        self.ns_retry_cap
    }

    /// Jitter fraction applied to name-service retries.
    pub fn ns_retry_jitter(&self) -> f64 {
        self.ns_retry_jitter
    }

    /// End-to-end deadline budget for a single access check, measured
    /// on the host's local clock from the moment the user request
    /// arrives. When the budget runs out mid-retry the host stops
    /// immediately and resolves per [`Policy::exhaustion`] instead of
    /// burning the remaining attempts. `None` (the default) disables
    /// the deadline and keeps the classic `R × timeout` behaviour.
    pub fn deadline_budget(&self) -> Option<SimDuration> {
        self.deadline_budget
    }

    /// Per-peer circuit-breaker knobs for the live check path, or
    /// `None` (the default) to query every manager in the view
    /// regardless of its recent behaviour.
    pub fn breaker(&self) -> Option<BreakerConfig> {
        self.breaker
    }

    /// The backoff schedule a host uses when its name-service lookup
    /// goes unanswered: starts at `2 · query_timeout` (the historical
    /// fixed retry period) and doubles per fruitless round up to
    /// [`Policy::ns_retry_cap`], with deterministic ±jitter so hosts
    /// that lost the name service together do not re-query in lockstep.
    pub fn ns_retry_backoff(&self) -> wanacl_sim::backoff::Backoff {
        let base = self.query_timeout + self.query_timeout;
        wanacl_sim::backoff::Backoff::new(base, self.ns_retry_cap.max(base))
            .jitter(self.ns_retry_jitter)
    }
}

impl Default for Policy {
    /// A balanced default: `C = 1`, `Te` = 60 s, perfect clocks assumed
    /// bounded at `b = 0.99`, 3 attempts, fail closed.
    fn default() -> Self {
        Policy::builder(1).build()
    }
}

/// Builder for [`Policy`] (C-BUILDER).
///
/// # Examples
///
/// ```
/// use wanacl_core::policy::{ExhaustionBehavior, Policy};
/// use wanacl_sim::time::SimDuration;
///
/// let policy = Policy::builder(3)
///     .revocation_bound(SimDuration::from_secs(30))
///     .clock_rate_bound(0.95)
///     .max_attempts(5)
///     .exhaustion(ExhaustionBehavior::FailOpen)
///     .build();
/// assert_eq!(policy.check_quorum(), 3);
/// assert_eq!(policy.update_quorum(10), 8);
/// // te = b * Te
/// assert_eq!(policy.expiry_budget(), SimDuration::from_millis(28_500));
/// ```
#[derive(Debug, Clone)]
pub struct PolicyBuilder {
    policy: Policy,
}

impl PolicyBuilder {
    fn new(check_quorum: usize) -> Self {
        assert!(check_quorum >= 1, "check quorum must be at least 1");
        PolicyBuilder {
            policy: Policy {
                check_quorum,
                revocation_bound: SimDuration::from_secs(60),
                clock_rate_bound: 0.99,
                query_timeout: SimDuration::from_millis(500),
                max_attempts: 3,
                exhaustion: ExhaustionBehavior::FailClosed,
                freeze: None,
                cache_sweep_interval: SimDuration::from_secs(30),
                fanout: QueryFanout::All,
                refresh_margin: None,
                ns_retry_cap: SimDuration::from_secs(15),
                ns_retry_jitter: 0.1,
                deadline_budget: None,
                breaker: None,
            },
        }
    }

    /// Sets the revocation bound `Te`.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn revocation_bound(mut self, te: SimDuration) -> Self {
        assert!(te > SimDuration::ZERO, "revocation bound must be positive");
        self.policy.revocation_bound = te;
        self
    }

    /// Sets the clock-rate bound `b`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < b <= 1`.
    pub fn clock_rate_bound(mut self, b: f64) -> Self {
        assert!(b > 0.0 && b <= 1.0, "clock rate bound must be in (0,1], got {b}");
        self.policy.clock_rate_bound = b;
        self
    }

    /// Sets the per-attempt query timeout.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn query_timeout(mut self, t: SimDuration) -> Self {
        assert!(t > SimDuration::ZERO, "query timeout must be positive");
        self.policy.query_timeout = t;
        self
    }

    /// Sets the attempt bound `R`.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn max_attempts(mut self, r: u32) -> Self {
        assert!(r >= 1, "at least one attempt is required");
        self.policy.max_attempts = r;
        self
    }

    /// Sets the behaviour after `R` failed attempts.
    pub fn exhaustion(mut self, e: ExhaustionBehavior) -> Self {
        self.policy.exhaustion = e;
        self
    }

    /// Enables the §3.3 freeze strategy.
    pub fn freeze(mut self, f: FreezePolicy) -> Self {
        self.policy.freeze = Some(f);
        self
    }

    /// Sets the query fan-out strategy (default [`QueryFanout::All`]).
    pub fn fanout(mut self, f: QueryFanout) -> Self {
        self.policy.fanout = f;
        self
    }

    /// Enables proactive lease refresh with the given margin before
    /// expiry.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is zero (the margin must also leave room
    /// inside `te`, validated at [`PolicyBuilder::build`]).
    pub fn refresh_margin(mut self, margin: SimDuration) -> Self {
        assert!(margin > SimDuration::ZERO, "refresh margin must be positive");
        self.policy.refresh_margin = Some(margin);
        self
    }

    /// Sets the cap on the name-service retry backoff.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn ns_retry_cap(mut self, cap: SimDuration) -> Self {
        assert!(cap > SimDuration::ZERO, "ns retry cap must be positive");
        self.policy.ns_retry_cap = cap;
        self
    }

    /// Sets the jitter fraction for name-service retries.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= j < 1`.
    pub fn ns_retry_jitter(mut self, j: f64) -> Self {
        assert!((0.0..1.0).contains(&j), "ns retry jitter must be in [0, 1), got {j}");
        self.policy.ns_retry_jitter = j;
        self
    }

    /// Sets an end-to-end deadline budget for each access check
    /// (default: none). Validated against the per-attempt timeout at
    /// [`PolicyBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn deadline_budget(mut self, budget: SimDuration) -> Self {
        assert!(budget > SimDuration::ZERO, "deadline budget must be positive");
        self.policy.deadline_budget = Some(budget);
        self
    }

    /// Enables the per-peer circuit breaker on the check path
    /// (default: off).
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (see
    /// [`BreakerConfig::validate`]).
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        config.validate();
        self.policy.breaker = Some(config);
        self
    }

    /// Sets the host cache sweep interval.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn cache_sweep_interval(mut self, t: SimDuration) -> Self {
        assert!(t > SimDuration::ZERO, "sweep interval must be positive");
        self.policy.cache_sweep_interval = t;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if a freeze policy is set whose `Ti + te` exceeds `Te`
    /// (§3.3: "Ti and te must be chosen so that their sum is at most
    /// Te"), or if [`QueryFanout::Sequential`] is combined with a check
    /// quorum above 1.
    pub fn build(self) -> Policy {
        if let Some(budget) = self.policy.deadline_budget {
            assert!(
                budget >= self.policy.query_timeout,
                "deadline budget must cover at least one query timeout"
            );
        }
        if self.policy.fanout == QueryFanout::Sequential {
            assert_eq!(
                self.policy.check_quorum, 1,
                "sequential fan-out queries one manager per attempt and needs C = 1"
            );
        }
        if let Some(margin) = self.policy.refresh_margin {
            assert!(
                margin < self.policy.expiry_budget(),
                "refresh margin must be smaller than the expiry budget te"
            );
        }
        if let Some(freeze) = self.policy.freeze {
            let te = self.policy.expiry_budget();
            let sum = freeze.ti + te;
            assert!(
                sum <= self.policy.revocation_bound,
                "freeze policy violates Ti + te <= Te: {} + {} > {}",
                freeze.ti,
                te,
                self.policy.revocation_bound
            );
            assert!(
                freeze.heartbeat_interval < freeze.ti,
                "heartbeat interval must be below Ti"
            );
        }
        self.policy
    }

    /// Finishes the build **without** the validity checks of
    /// [`build`](Self::build). Only for fault-injection and oracle
    /// tests that deliberately construct unsound configurations.
    pub fn build_unchecked(self) -> Policy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        let p = Policy::default();
        assert_eq!(p.check_quorum(), 1);
        assert_eq!(p.update_quorum(10), 10);
        assert_eq!(p.exhaustion(), ExhaustionBehavior::FailClosed);
        assert!(p.freeze().is_none());
    }

    #[test]
    fn quorum_intersection_identity() {
        // For every M and C: C + (M - C + 1) = M + 1 > M, so the two
        // quorums always intersect.
        for m in 1..=20usize {
            for c in 1..=m {
                let p = Policy::builder(c).build();
                let uq = p.update_quorum(m);
                assert!(c + uq > m, "M={m} C={c}: quorums must intersect");
                assert_eq!(c + uq, m + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "check quorum")]
    fn update_quorum_rejects_small_deployment() {
        Policy::builder(5).build().update_quorum(3);
    }

    #[test]
    fn expiry_budget_scales_with_rate_bound() {
        let p = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(100))
            .clock_rate_bound(0.9)
            .build();
        assert_eq!(p.expiry_budget(), SimDuration::from_secs(90));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_check_quorum_rejected() {
        let _ = Policy::builder(0);
    }

    #[test]
    #[should_panic(expected = "Ti + te <= Te")]
    fn freeze_sum_constraint_enforced() {
        let _ = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(60))
            .clock_rate_bound(1.0)
            .freeze(FreezePolicy {
                ti: SimDuration::from_secs(10),
                heartbeat_interval: SimDuration::from_secs(1),
            })
            .build();
    }

    #[test]
    fn freeze_accepts_valid_configuration() {
        let p = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(60))
            .clock_rate_bound(0.5) // te = 30 s
            .freeze(FreezePolicy {
                ti: SimDuration::from_secs(20),
                heartbeat_interval: SimDuration::from_secs(2),
            })
            .build();
        assert!(p.freeze().is_some());
    }

    #[test]
    #[should_panic(expected = "heartbeat interval")]
    fn freeze_heartbeat_must_beat_ti() {
        let _ = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(100))
            .clock_rate_bound(0.5)
            .freeze(FreezePolicy {
                ti: SimDuration::from_secs(10),
                heartbeat_interval: SimDuration::from_secs(10),
            })
            .build();
    }

    #[test]
    fn builder_setters_apply() {
        let p = Policy::builder(2)
            .query_timeout(SimDuration::from_millis(250))
            .max_attempts(7)
            .cache_sweep_interval(SimDuration::from_secs(5))
            .exhaustion(ExhaustionBehavior::FailOpen)
            .build();
        assert_eq!(p.query_timeout(), SimDuration::from_millis(250));
        assert_eq!(p.max_attempts(), 7);
        assert_eq!(p.cache_sweep_interval(), SimDuration::from_secs(5));
        assert_eq!(p.exhaustion(), ExhaustionBehavior::FailOpen);
    }

    #[test]
    #[should_panic(expected = "clock rate bound")]
    fn rate_bound_validated() {
        let _ = Policy::builder(1).clock_rate_bound(1.2);
    }

    #[test]
    fn fanout_defaults_to_all() {
        assert_eq!(Policy::default().fanout(), QueryFanout::All);
        let p = Policy::builder(2).fanout(QueryFanout::Subset).build();
        assert_eq!(p.fanout(), QueryFanout::Subset);
    }

    #[test]
    fn sequential_fanout_allowed_at_c1() {
        let p = Policy::builder(1).fanout(QueryFanout::Sequential).build();
        assert_eq!(p.fanout(), QueryFanout::Sequential);
    }

    #[test]
    #[should_panic(expected = "needs C = 1")]
    fn sequential_fanout_rejects_larger_quorum() {
        let _ = Policy::builder(2).fanout(QueryFanout::Sequential).build();
    }

    #[test]
    fn refresh_margin_accepted_when_inside_te() {
        let p = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(60))
            .refresh_margin(SimDuration::from_secs(5))
            .build();
        assert_eq!(p.refresh_margin(), Some(SimDuration::from_secs(5)));
        assert_eq!(Policy::default().refresh_margin(), None);
    }

    #[test]
    fn deadline_and_breaker_default_off() {
        let p = Policy::default();
        assert_eq!(p.deadline_budget(), None);
        assert_eq!(p.breaker(), None);
    }

    #[test]
    fn deadline_and_breaker_knobs_apply() {
        let p = Policy::builder(2)
            .query_timeout(SimDuration::from_millis(100))
            .deadline_budget(SimDuration::from_secs(1))
            .breaker(BreakerConfig::default())
            .build();
        assert_eq!(p.deadline_budget(), Some(SimDuration::from_secs(1)));
        assert_eq!(p.breaker(), Some(BreakerConfig::default()));
    }

    #[test]
    #[should_panic(expected = "cover at least one query timeout")]
    fn deadline_below_one_timeout_rejected() {
        let _ = Policy::builder(1)
            .query_timeout(SimDuration::from_millis(500))
            .deadline_budget(SimDuration::from_millis(100))
            .build();
    }

    #[test]
    #[should_panic(expected = "smaller than the expiry budget")]
    fn refresh_margin_must_fit_in_te() {
        let _ = Policy::builder(1)
            .revocation_bound(SimDuration::from_secs(10))
            .refresh_margin(SimDuration::from_secs(10))
            .build();
    }
}
