//! The protocol wire format: every message exchanged between users,
//! hosts, managers, admins, and the name service.
//!
//! Request and response bodies are `Arc<str>` rather than `String`:
//! the hot paths clone messages per recipient (quorum fan-out, network
//! duplication, retransmission), and a shared buffer makes each of
//! those clones a reference-count bump instead of a heap copy.

use std::sync::Arc;

use wanacl_auth::rsa::Signature;
use wanacl_auth::signed::AuthEncode;
use wanacl_sim::node::NodeId;
use wanacl_sim::time::SimDuration;

use crate::types::{AppId, Right, ShardId, UserId};

/// A request identifier, unique per issuing node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

impl std::fmt::Display for ReqId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Globally unique id of an ACL update operation: a Lamport timestamp
/// plus the originating manager as tie-breaker.
///
/// Managers apply operations to each `(app, user, right)` slot in
/// `(seq, origin)` order (last-writer-wins), so concurrent conflicting
/// operations issued at different managers resolve identically
/// everywhere — a detail the paper leaves implicit in its "method exists
/// for instantaneously updating the access control information"
/// assumption (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpId {
    /// The manager the operation was issued at.
    pub origin: NodeId,
    /// The originating manager's Lamport timestamp.
    pub seq: u64,
}

impl Ord for OpId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lamport order: timestamp first, origin breaks ties.
        (self.seq, self.origin).cmp(&(other.seq, other.origin))
    }
}

impl PartialOrd for OpId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op({},{})", self.origin, self.seq)
    }
}

/// An access-control update (§2.3's `Add` and `Revoke`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclOp {
    /// `Add(A, U, R)`: grant right `R` on application `A` to user `U`.
    Add {
        /// The application.
        app: AppId,
        /// The user gaining the right.
        user: UserId,
        /// The right granted.
        right: Right,
    },
    /// `Revoke(A, U, R)`: remove right `R` on `A` from `U`.
    Revoke {
        /// The application.
        app: AppId,
        /// The user losing the right.
        user: UserId,
        /// The right revoked.
        right: Right,
    },
}

impl AclOp {
    /// The application the operation targets.
    pub fn app(&self) -> AppId {
        match *self {
            AclOp::Add { app, .. } | AclOp::Revoke { app, .. } => app,
        }
    }

    /// The user the operation targets.
    pub fn user(&self) -> UserId {
        match *self {
            AclOp::Add { user, .. } | AclOp::Revoke { user, .. } => user,
        }
    }

    /// The right the operation targets.
    pub fn right(&self) -> Right {
        match *self {
            AclOp::Add { right, .. } | AclOp::Revoke { right, .. } => right,
        }
    }

    /// Whether this is a revocation.
    pub fn is_revoke(&self) -> bool {
        matches!(self, AclOp::Revoke { .. })
    }
}

impl std::fmt::Display for AclOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AclOp::Add { app, user, right } => write!(f, "Add({app},{user},{right})"),
            AclOp::Revoke { app, user, right } => write!(f, "Revoke({app},{user},{right})"),
        }
    }
}

impl AuthEncode for AclOp {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        match self {
            AclOp::Add { app, user, right } => {
                out.push(0);
                app.auth_encode(out);
                user.auth_encode(out);
                right.auth_encode(out);
            }
            AclOp::Revoke { app, user, right } => {
                out.push(1);
                app.auth_encode(out);
                user.auth_encode(out);
                right.auth_encode(out);
            }
        }
    }
}

/// A manager's answer to an access-check query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryVerdict {
    /// The user holds the right; the cached entry may live for `te` units
    /// of the *host's* local clock (already scaled by the rate bound `b`).
    Grant {
        /// The expiration budget `te`.
        te: SimDuration,
    },
    /// The user does not hold the right.
    Deny,
    /// The manager cannot answer right now (e.g. it is recovering and
    /// its state is stale). Unlike `Deny`, this is **not** a veto: the
    /// host should treat it as retryable and query another manager.
    Unavailable {
        /// Why the manager refused to answer.
        reason: RejectReason,
    },
}

/// The outcome a host reports to the invoking user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvokeOutcome {
    /// Access allowed; carries the wrapped application's response.
    Allowed {
        /// The application-level response body (shared, cheap to clone).
        response: Arc<str>,
    },
    /// A manager definitively denied the right.
    Denied,
    /// No check quorum could be reached within `R` attempts and the
    /// policy fails closed.
    Unavailable,
    /// The request's signature did not verify.
    BadSignature,
}

/// Outcome of an admin operation, reported by the receiving manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminStatus {
    /// Applied at the receiving manager; dissemination in progress.
    Applied,
    /// An update quorum (`M − C + 1` managers) has applied the operation:
    /// the `Te` revocation clock is now guaranteed (§3.3).
    Stable,
    /// The manager refused the operation.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

/// Why a manager refused an admin operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The issuer does not hold the `manage` right for the application.
    NotAuthorized,
    /// The operation's signature did not verify.
    BadSignature,
    /// The manager is recovering and has not yet synchronized state.
    Recovering,
    /// The manager does not serve this application.
    UnknownApp,
    /// The manager serves the application but not the shard covering
    /// this user's bucket (a misrouted request, e.g. from a stale shard
    /// map). Retryable: another manager set owns the shard.
    UnknownShard,
    /// The shard was handed off to another manager set; the sender
    /// should refresh its shard map and retry there.
    ShardMoved,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NotAuthorized => write!(f, "issuer lacks manage right"),
            RejectReason::BadSignature => write!(f, "bad signature"),
            RejectReason::Recovering => write!(f, "manager recovering"),
            RejectReason::UnknownApp => write!(f, "unknown application"),
            RejectReason::UnknownShard => write!(f, "unknown shard"),
            RejectReason::ShardMoved => write!(f, "shard handed off"),
        }
    }
}

/// Every message of the protocol.
///
/// One enum (rather than per-channel types) because the simulated network
/// carries a single message type per world; the variants document which
/// role sends them.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoMsg {
    // ---- user -> host ----
    /// `Invoke(A)` (§2.3): a user asks a host to run the application.
    Invoke {
        /// Target application.
        app: AppId,
        /// The invoking user.
        user: UserId,
        /// The user's request id (echoed in the reply).
        req: ReqId,
        /// Application-level request body (shared, cheap to clone).
        payload: Arc<str>,
        /// RSA signature over the invoke (absent when the deployment
        /// runs without message authentication).
        signature: Option<Signature>,
    },
    // ---- host -> user ----
    /// The host's answer to an `Invoke`.
    InvokeReply {
        /// Echo of the request id.
        req: ReqId,
        /// What happened.
        outcome: InvokeOutcome,
    },
    // ---- host -> manager ----
    /// An access-check query (Figure 2/3's "send query to a manager").
    Query {
        /// Target application.
        app: AppId,
        /// The user whose right is checked.
        user: UserId,
        /// The host's query id (scoped to one attempt).
        req: ReqId,
    },
    // ---- manager -> host ----
    /// The manager's answer to a `Query`.
    QueryReply {
        /// Echo of the query id.
        req: ReqId,
        /// Target application.
        app: AppId,
        /// The user checked.
        user: UserId,
        /// Grant (with `te`) or deny.
        verdict: QueryVerdict,
        /// HMAC channel tag (present when the deployment authenticates
        /// the host↔manager channel; see [`crate::channel`]).
        mac: Option<wanacl_auth::hmac::Tag>,
    },
    /// Explicit revocation forwarded to a caching host (§3.1: "the
    /// manager forwards it to all hosts to which it has granted access").
    RevokeNotice {
        /// Target application.
        app: AppId,
        /// The user whose cached right must be flushed.
        user: UserId,
        /// HMAC channel tag, as for `QueryReply`.
        mac: Option<wanacl_auth::hmac::Tag>,
    },
    // ---- admin -> manager ----
    /// An `Add`/`Revoke` issued by a manager-principal (§2.3).
    Admin {
        /// The operation.
        op: AclOp,
        /// The issuer's request id (echoed in replies).
        req: ReqId,
        /// Who issues it (must hold `manage` on the app).
        issuer: UserId,
        /// RSA signature over `(issuer, op)`, if authentication is on.
        signature: Option<Signature>,
    },
    // ---- manager -> admin ----
    /// Progress reports for an admin operation (`Applied`, then `Stable`
    /// once the update quorum is reached).
    AdminReply {
        /// Echo of the request id.
        req: ReqId,
        /// Progress.
        status: AdminStatus,
    },
    // ---- manager <-> manager ----
    /// Dissemination of an operation to peer managers (persistent: the
    /// origin retransmits until every peer acknowledges).
    Update {
        /// Operation id.
        id: OpId,
        /// The operation.
        op: AclOp,
    },
    /// Acknowledgement of an `Update`.
    UpdateAck {
        /// The acknowledged operation.
        id: OpId,
    },
    /// Liveness beacon between managers (drives the §3.3 freeze strategy
    /// and recovery detection).
    Heartbeat,
    /// A recovering (or freshly disk-restored) manager asks a peer for
    /// the operations it is missing (§3.4, delta form). The requester
    /// advertises what it already has; the peer answers with only the
    /// newer per-slot winners instead of a full state transfer.
    SyncRequest {
        /// Highest applied `(seq)` per origin manager — the requester's
        /// high-water marks. A peer whose own stamps are all covered can
        /// tell at a glance that the requester is current.
        stamps: Vec<(NodeId, u64)>,
        /// Per-slot last-writer marks the requester currently holds.
        /// These refine the stamps: an origin's sequence range can have
        /// gaps after crashes, so slot marks — not stamps — decide which
        /// winners the peer must resend.
        slots: Vec<(AppId, UserId, Right, OpId)>,
    },
    /// Delta answering a `SyncRequest`: just the slot-winning operations
    /// the requester is behind on.
    SyncResponse {
        /// Winning `(id, op)` per slot where the sender is strictly newer
        /// than the requester's advertised mark (or the requester had no
        /// mark at all).
        ops: Vec<(OpId, AclOp)>,
        /// The sender's own per-origin high-water marks, merged by the
        /// requester for its next delta round.
        stamps: Vec<(NodeId, u64)>,
    },
    // ---- host <-> name service ----
    /// Who manages `app`? (§3.2's trusted name service.)
    NsQuery {
        /// The application looked up.
        app: AppId,
    },
    /// Name-service answer with a time-to-live after which the host must
    /// re-query (the paper's "scheme similar to the time-based expiration
    /// of cached information").
    NsReply {
        /// The application looked up.
        app: AppId,
        /// Current manager set.
        managers: Vec<NodeId>,
        /// How long the host may rely on it (host local clock).
        ttl: SimDuration,
    },
    // ---- host <-> directory replica ----
    /// A directory replica's answer to an `NsQuery`: a versioned,
    /// writer-signed manager-set record. Hosts collect these from a read
    /// quorum and install the freshest version whose signature verifies.
    NsRecordReply {
        /// The application looked up.
        app: AppId,
        /// Record version (monotone per app; 0 = no record held — a
        /// negative answer, served with a capped TTL and no signature).
        version: u64,
        /// The manager set the record names.
        managers: Vec<NodeId>,
        /// How long the host may rely on the record (host local clock).
        ttl: SimDuration,
        /// The record's shard map, when the application's keyspace is
        /// partitioned (`None` reproduces the flat single-manager-set
        /// record byte for byte, so legacy signatures keep verifying).
        /// Boxed so the sharded reply does not widen `ProtoMsg` for
        /// every hot-path message.
        shards: Option<Box<Vec<ShardEntry>>>,
        /// Writer signature over [`ns_record_signing_bytes`]; `None` only
        /// on negative (version-0) answers.
        signature: Option<Signature>,
    },
    // ---- writer/env -> directory replica, replica -> replica ----
    /// A signed directory-record publish: the namespace writer installs
    /// a new manager-set version at a replica (replicas also push
    /// accepted records to peers with this message). The replica
    /// verifies the signature and the version before accepting.
    NsPublish {
        /// The record (boxed to keep `size_of::<ProtoMsg>()` small).
        record: Box<NsRecord>,
    },
    // ---- replica <-> replica ----
    /// Anti-entropy probe: the sender advertises the versions it holds;
    /// the peer answers with every record it has that is strictly newer.
    NsSyncRequest {
        /// `(app, version)` pairs the sender currently holds.
        versions: Vec<(AppId, u64)>,
    },
    /// Delta answering an `NsSyncRequest` with strictly-newer records.
    /// Receivers re-verify every signature before storing, so a
    /// compromised peer cannot poison the directory through sync.
    NsSyncResponse {
        /// The newer records.
        records: Vec<NsRecord>,
    },
    // ---- env -> manager (rebalance kickoff) ----
    /// Starts an online shard handoff. The deployment injects this to
    /// every current owner (source) and every incoming owner (target) of
    /// the shard; the pre-signed next-version record doubles as the
    /// transfer capability — a manager acts on the handoff only if the
    /// record verifies against the namespace-writer trust anchor.
    /// Frozen sources also retransmit it to the other participants, so a
    /// partition that swallowed the kickoff does not strand the handoff.
    ShardHandoff {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch (the new shard-map record's version).
        epoch: u64,
        /// The pre-signed next-version shard-map record, published to
        /// the directory once the handoff completes. Boxed so the rare
        /// rebalance kickoff does not inflate `size_of::<ProtoMsg>()`
        /// for every queued message on the hot path.
        record: Box<NsRecord>,
        /// The incoming owner set.
        targets: Vec<NodeId>,
        /// Directory replicas the completed handoff publishes to.
        publish_to: Vec<NodeId>,
    },
    // ---- source manager -> target manager ----
    /// Snapshot-plus-WAL-tail state transfer for one shard: every
    /// per-slot winning operation in the shard's bucket range, as held
    /// by the (frozen) source. Retransmitted until acknowledged.
    ShardTransfer {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
        /// The application the shard belongs to.
        app: AppId,
        /// The winning `(id, op)` per slot in the shard's range.
        ops: Vec<(OpId, AclOp)>,
        /// Order-sensitive FNV-1a digest over the ops — the receiver
        /// recomputes it over what it actually applied, and the oracle's
        /// rebalance-safety invariant compares the two sides.
        digest: u64,
    },
    // ---- target manager -> source manager ----
    /// Acknowledges a `ShardTransfer` (idempotent; dupes re-ack).
    ShardTransferAck {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
    },
    // ---- source manager -> handoff primary ----
    /// A source reports that every target acked its transfer and that it
    /// has durably released the shard (it no longer answers checks or
    /// accepts updates for it). Retransmitted until acknowledged.
    ShardReleased {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
    },
    /// Acknowledges a `ShardReleased`.
    ShardReleasedAck {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
    },
    // ---- handoff primary -> target manager ----
    /// Every source has released: targets may start serving checks and
    /// accepting updates for the shard. Retransmitted until acknowledged.
    ShardActivate {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
    },
    /// Acknowledges a `ShardActivate`.
    ShardActivateAck {
        /// The shard being moved.
        shard: ShardId,
        /// Handoff epoch.
        epoch: u64,
    },
    // ---- released manager -> current owner ----
    /// An admin operation relayed by a manager that has released the
    /// shard it targets. Carries the original issuer's node so the new
    /// owner replies straight to the admin agent (which matches replies
    /// by request id, not sender). The admin signature still travels
    /// with the op, so the relay adds no authority.
    AdminForward {
        /// The node that issued the original `Admin`.
        origin: NodeId,
        /// The operation.
        op: AclOp,
        /// The issuer's request id.
        req: ReqId,
        /// Who issued it.
        issuer: UserId,
        /// RSA signature over `(issuer, op)`, if authentication is on.
        signature: Option<Signature>,
    },
}

/// One shard of a partitioned application keyspace: a contiguous range
/// of [`crate::types::user_bucket`] values served by its own manager
/// set with independent check/update quorums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The shard's global id.
    pub shard: ShardId,
    /// First bucket the shard covers (inclusive).
    pub lo: u8,
    /// Last bucket the shard covers (inclusive).
    pub hi: u8,
    /// The managers serving the shard.
    pub managers: Vec<NodeId>,
}

impl ShardEntry {
    /// Whether the entry's bucket range covers `bucket`.
    pub fn covers(&self, bucket: u8) -> bool {
        bucket >= self.lo && bucket <= self.hi
    }
}

impl std::fmt::Display for ShardEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Rendered straight into the formatter: no per-manager Strings
        // or join vector on audit paths that print shard maps.
        write!(f, "{}[{}..={}]->{{", self.shard, self.lo, self.hi)?;
        for (i, m) in self.managers.iter().enumerate() {
            if i > 0 {
                f.write_str(";")?;
            }
            write!(f, "{}", m.index())?;
        }
        f.write_str("}")
    }
}

/// A replicated directory record: which managers serve an application,
/// stamped with a monotone version and signed by the namespace writer.
/// TTLs are replica-side serving policy, not part of the record, so a
/// record stays verifiable as it propagates between replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NsRecord {
    /// The application the record describes.
    pub app: AppId,
    /// Monotone version stamp (higher wins everywhere).
    pub version: u64,
    /// The manager set (for sharded records: the union of all shard
    /// manager sets, so flat consumers keep a meaningful view).
    pub managers: Vec<NodeId>,
    /// The shard map, when the application's keyspace is partitioned.
    /// `None` keeps the record — and its signing bytes — identical to
    /// the flat records earlier deployments signed.
    pub shards: Option<Vec<ShardEntry>>,
    /// Writer signature over [`ns_record_signing_bytes`].
    pub signature: Signature,
}

impl NsRecord {
    /// Builds a flat (unsharded) record signed by `writer` over its
    /// canonical bytes.
    pub fn signed(
        app: AppId,
        version: u64,
        managers: Vec<NodeId>,
        writer: wanacl_auth::signed::PrincipalId,
        key: &wanacl_auth::rsa::SecretKey,
    ) -> NsRecord {
        let signature =
            wanacl_auth::signed::sign_bytes(writer, &ns_record_signing_bytes(app, version, &managers), key);
        NsRecord { app, version, managers, shards: None, signature }
    }

    /// Builds a sharded record: the flat manager set is derived as the
    /// ordered union of the shard manager sets, and the signature binds
    /// the full shard map.
    pub fn signed_sharded(
        app: AppId,
        version: u64,
        shards: Vec<ShardEntry>,
        writer: wanacl_auth::signed::PrincipalId,
        key: &wanacl_auth::rsa::SecretKey,
    ) -> NsRecord {
        let mut managers: Vec<NodeId> = Vec::new();
        for entry in &shards {
            for &m in &entry.managers {
                if !managers.contains(&m) {
                    managers.push(m);
                }
            }
        }
        let bytes = ns_record_signing_bytes_sharded(app, version, &managers, Some(&shards));
        let signature = wanacl_auth::signed::sign_bytes(writer, &bytes, key);
        NsRecord { app, version, managers, shards: Some(shards), signature }
    }

    /// Verifies the record against the writer's registered key.
    pub fn verify(
        &self,
        registry: &wanacl_auth::signed::KeyRegistry,
        writer: wanacl_auth::signed::PrincipalId,
    ) -> bool {
        wanacl_auth::signed::verify_bytes(
            registry,
            writer,
            &ns_record_signing_bytes_sharded(
                self.app,
                self.version,
                &self.managers,
                self.shards.as_deref(),
            ),
            &self.signature,
        )
    }
}

/// Canonical bytes signed for a flat directory record. The writer
/// principal is bound by the detached-signature discipline
/// ([`wanacl_auth::signed::sign_bytes`] prepends the signer id), so the
/// record body only needs to bind `(app, version, managers)`.
pub fn ns_record_signing_bytes(app: AppId, version: u64, managers: &[NodeId]) -> Vec<u8> {
    ns_record_signing_bytes_sharded(app, version, managers, None)
}

/// Canonical bytes signed for a directory record, shard map included.
/// A `None`/empty map appends nothing, so flat records produced before
/// sharding existed keep their exact signing bytes (and signatures).
pub fn ns_record_signing_bytes_sharded(
    app: AppId,
    version: u64,
    managers: &[NodeId],
    shards: Option<&[ShardEntry]>,
) -> Vec<u8> {
    let mut out = Vec::new();
    app.auth_encode(&mut out);
    version.auth_encode(&mut out);
    (managers.len() as u64).auth_encode(&mut out);
    for m in managers {
        (m.index() as u64).auth_encode(&mut out);
    }
    if let Some(entries) = shards {
        if !entries.is_empty() {
            // Domain-separation tag: a sharded record can never collide
            // with a flat record followed by attacker-chosen bytes.
            out.extend_from_slice(b"SHRD");
            (entries.len() as u64).auth_encode(&mut out);
            for entry in entries {
                u64::from(entry.shard.0).auth_encode(&mut out);
                out.push(entry.lo);
                out.push(entry.hi);
                (entry.managers.len() as u64).auth_encode(&mut out);
                for m in &entry.managers {
                    (m.index() as u64).auth_encode(&mut out);
                }
            }
        }
    }
    out
}

/// Canonical bytes signed for an admin operation.
pub fn admin_signing_bytes(issuer: UserId, op: &AclOp) -> Vec<u8> {
    let mut out = Vec::new();
    issuer.auth_encode(&mut out);
    op.auth_encode(&mut out);
    out
}

/// Canonical bytes signed for an invoke request.
pub fn invoke_signing_bytes(user: UserId, app: AppId, req: ReqId, payload: &str) -> Vec<u8> {
    let mut out = Vec::new();
    user.auth_encode(&mut out);
    app.auth_encode(&mut out);
    req.0.auth_encode(&mut out);
    payload.auth_encode(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add() -> AclOp {
        AclOp::Add { app: AppId(1), user: UserId(2), right: Right::Use }
    }

    fn revoke() -> AclOp {
        AclOp::Revoke { app: AppId(1), user: UserId(2), right: Right::Use }
    }

    #[test]
    fn op_accessors() {
        assert_eq!(add().app(), AppId(1));
        assert_eq!(add().user(), UserId(2));
        assert_eq!(add().right(), Right::Use);
        assert!(!add().is_revoke());
        assert!(revoke().is_revoke());
    }

    #[test]
    fn op_display() {
        assert_eq!(add().to_string(), "Add(app1,u2,use)");
        assert_eq!(revoke().to_string(), "Revoke(app1,u2,use)");
    }

    #[test]
    fn add_and_revoke_encode_differently() {
        assert_ne!(add().auth_bytes(), revoke().auth_bytes());
    }

    #[test]
    fn signing_bytes_bind_all_fields() {
        let base = admin_signing_bytes(UserId(1), &add());
        assert_ne!(base, admin_signing_bytes(UserId(2), &add()));
        assert_ne!(base, admin_signing_bytes(UserId(1), &revoke()));

        let inv = invoke_signing_bytes(UserId(1), AppId(1), ReqId(1), "x");
        assert_ne!(inv, invoke_signing_bytes(UserId(2), AppId(1), ReqId(1), "x"));
        assert_ne!(inv, invoke_signing_bytes(UserId(1), AppId(2), ReqId(1), "x"));
        assert_ne!(inv, invoke_signing_bytes(UserId(1), AppId(1), ReqId(2), "x"));
        assert_ne!(inv, invoke_signing_bytes(UserId(1), AppId(1), ReqId(1), "y"));
    }

    #[test]
    fn ns_record_signing_bytes_bind_all_fields() {
        let mgrs = vec![NodeId::from_index(0), NodeId::from_index(1)];
        let base = ns_record_signing_bytes(AppId(1), 3, &mgrs);
        assert_ne!(base, ns_record_signing_bytes(AppId(2), 3, &mgrs));
        assert_ne!(base, ns_record_signing_bytes(AppId(1), 4, &mgrs));
        assert_ne!(base, ns_record_signing_bytes(AppId(1), 3, &[NodeId::from_index(0)]));
        assert_ne!(
            base,
            ns_record_signing_bytes(AppId(1), 3, &[NodeId::from_index(1), NodeId::from_index(0)]),
            "manager order is part of the record identity"
        );
    }

    #[test]
    fn ids_display() {
        assert_eq!(ReqId(5).to_string(), "r5");
        let op = OpId { origin: NodeId::from_index(2), seq: 9 };
        assert_eq!(op.to_string(), "op(n2,9)");
    }

    #[test]
    fn op_ids_order_by_lamport_then_origin() {
        let a = OpId { origin: NodeId::from_index(5), seq: 1 };
        let b = OpId { origin: NodeId::from_index(0), seq: 2 };
        let c = OpId { origin: NodeId::from_index(1), seq: 2 };
        assert!(a < b, "lower timestamp loses");
        assert!(b < c, "origin breaks timestamp ties");
    }

    #[test]
    fn verdicts_and_outcomes_compare() {
        assert_eq!(
            QueryVerdict::Grant { te: SimDuration::from_secs(1) },
            QueryVerdict::Grant { te: SimDuration::from_secs(1) }
        );
        assert_ne!(QueryVerdict::Deny, QueryVerdict::Grant { te: SimDuration::ZERO });
        assert_ne!(
            QueryVerdict::Deny,
            QueryVerdict::Unavailable { reason: RejectReason::Recovering },
            "an unavailable manager must not read as a veto"
        );
        assert_ne!(
            InvokeOutcome::Denied,
            InvokeOutcome::Allowed { response: "".into() }
        );
    }

    #[test]
    fn reject_reasons_display() {
        for r in [
            RejectReason::NotAuthorized,
            RejectReason::BadSignature,
            RejectReason::Recovering,
            RejectReason::UnknownApp,
            RejectReason::UnknownShard,
            RejectReason::ShardMoved,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    fn entry(shard: u32, lo: u8, hi: u8, mgrs: &[usize]) -> ShardEntry {
        ShardEntry {
            shard: crate::types::ShardId(shard),
            lo,
            hi,
            managers: mgrs.iter().map(|&i| NodeId::from_index(i)).collect(),
        }
    }

    #[test]
    fn sharded_signing_bytes_extend_flat_bytes() {
        let mgrs = vec![NodeId::from_index(0), NodeId::from_index(1)];
        let flat = ns_record_signing_bytes(AppId(1), 3, &mgrs);
        // None and an empty map both reproduce the flat bytes exactly,
        // so legacy signatures keep verifying.
        assert_eq!(flat, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, None));
        assert_eq!(flat, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[])));
        let sharded = ns_record_signing_bytes_sharded(
            AppId(1),
            3,
            &mgrs,
            Some(&[entry(0, 0, 127, &[0]), entry(1, 128, 255, &[1])]),
        );
        assert_ne!(flat, sharded);
        assert!(sharded.starts_with(&flat), "shard bytes are appended, not interleaved");
        // Every shard field is bound.
        let base = ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[entry(0, 0, 255, &[0])]));
        assert_ne!(base, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[entry(1, 0, 255, &[0])])));
        assert_ne!(base, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[entry(0, 1, 255, &[0])])));
        assert_ne!(base, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[entry(0, 0, 254, &[0])])));
        assert_ne!(base, ns_record_signing_bytes_sharded(AppId(1), 3, &mgrs, Some(&[entry(0, 0, 255, &[1])])));
    }

    #[test]
    fn sharded_record_unions_managers_in_order() {
        use rand::SeedableRng;
        let mut registry = wanacl_auth::signed::KeyRegistry::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let writer = wanacl_auth::signed::PrincipalId(42);
        let kp = registry.enroll(writer, &mut rng);
        let rec = NsRecord::signed_sharded(
            AppId(0),
            1,
            vec![entry(0, 0, 127, &[2, 3]), entry(1, 128, 255, &[3, 4])],
            writer,
            &kp.secret,
        );
        let union: Vec<NodeId> = [2, 3, 4].iter().map(|&i| NodeId::from_index(i)).collect();
        assert_eq!(rec.managers, union);
        assert!(rec.verify(&registry, writer));
        // Stripping the shard map invalidates the signature: a
        // downgrade to a flat record cannot reuse the sharded one.
        let mut stripped = rec.clone();
        stripped.shards = None;
        assert!(!stripped.verify(&registry, writer));
    }

    #[test]
    fn shard_entry_covers_inclusive_range() {
        let e = entry(0, 10, 20, &[0]);
        assert!(e.covers(10) && e.covers(20) && e.covers(15));
        assert!(!e.covers(9) && !e.covers(21));
        assert_eq!(e.to_string(), "shard0[10..=20]->{0}");
    }
}
