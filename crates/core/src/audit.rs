//! Offline audit: independently verify the protocol's guarantees from a
//! recorded run trace.
//!
//! Hosts and managers emit structured `audit=` notes into the world
//! trace (when tracing is enabled). [`AuditLog::from_trace`] parses them
//! back into typed events, and [`AuditLog::verify_bounded_revocation`]
//! re-checks invariant I1 — "no access allowed more than `Te` after a
//! revoke reached its update quorum" — against what *actually happened*,
//! with no help from the protocol code being audited.

use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::trace::{Trace, TraceEvent};

use crate::types::{AppId, UserId};

/// One parsed audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvent {
    /// A host let a request through to the application.
    Allow {
        /// When (real simulation time).
        at: SimTime,
        /// The application.
        app: AppId,
        /// The user.
        user: UserId,
    },
    /// A host rejected a request on a manager verdict.
    Deny {
        /// When.
        at: SimTime,
        /// The application.
        app: AppId,
        /// The user.
        user: UserId,
    },
    /// A revoke reached its update quorum: the `Te` clock starts here.
    RevokeStable {
        /// When.
        at: SimTime,
        /// The application.
        app: AppId,
        /// The user.
        user: UserId,
    },
}

impl AuditEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            AuditEvent::Allow { at, .. }
            | AuditEvent::Deny { at, .. }
            | AuditEvent::RevokeStable { at, .. } => at,
        }
    }
}

/// A violation of the bounded-revocation invariant found by the auditor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The application.
    pub app: AppId,
    /// The revoked user who was still allowed.
    pub user: UserId,
    /// When the revoke stabilized.
    pub revoked_at: SimTime,
    /// When the offending access happened.
    pub allowed_at: SimTime,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} allowed on {} at {} although revoked (stable) at {}",
            self.user, self.app, self.allowed_at, self.revoked_at
        )
    }
}

/// A parsed audit log.
///
/// # Examples
///
/// ```
/// use wanacl_core::audit::AuditLog;
/// use wanacl_core::prelude::*;
/// use wanacl_sim::time::SimDuration;
///
/// let mut d = Scenario::builder(1)
///     .managers(2)
///     .hosts(1)
///     .users(1)
///     .policy(Policy::builder(1).revocation_bound(SimDuration::from_secs(10)).build())
///     .all_users_granted()
///     .build();
/// d.world.enable_trace();
/// d.invoke_from(0);
/// d.run_for(SimDuration::from_secs(2));
/// d.revoke(UserId(1), Right::Use);
/// d.run_for(SimDuration::from_secs(30));
///
/// let log = AuditLog::from_trace(d.world.trace());
/// assert_eq!(log.allow_count(), 1);
/// assert_eq!(log.revoke_count(), 1);
/// assert!(log
///     .verify_bounded_revocation(SimDuration::from_secs(10), SimDuration::from_millis(500))
///     .is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AuditLog {
    events: Vec<AuditEvent>,
}

impl AuditLog {
    /// Parses the `audit=` notes out of a world trace. Non-audit notes
    /// and unparsable lines are ignored.
    pub fn from_trace(trace: &Trace) -> AuditLog {
        let mut events = Vec::new();
        for entry in trace.entries() {
            if let TraceEvent::Note { text, .. } = &entry.event {
                if let Some(event) = parse_note(entry.at, text) {
                    events.push(event);
                }
            }
        }
        AuditLog { events }
    }

    /// All parsed events, in trace order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of allows recorded.
    pub fn allow_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, AuditEvent::Allow { .. })).count()
    }

    /// Number of revoke-stable marks recorded.
    pub fn revoke_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, AuditEvent::RevokeStable { .. })).count()
    }

    /// Checks invariant I1: for every `(app, user)` with a stable revoke
    /// at time `t`, no `Allow` occurs after `t + te + slack` (slack
    /// covers in-flight reply delivery). Returns the first violation
    /// found, if any.
    ///
    /// A later re-grant legitimises later allows: only the window
    /// between a revoke and the next observed allow-after-bound matters,
    /// so the auditor tracks the *latest* stable revoke per `(app,
    /// user)` seen before each allow.
    pub fn verify_bounded_revocation(
        &self,
        te: SimDuration,
        slack: SimDuration,
    ) -> Result<(), Violation> {
        use std::collections::BTreeMap;
        let mut latest_revoke: BTreeMap<(AppId, UserId), SimTime> = BTreeMap::new();
        for event in &self.events {
            match *event {
                AuditEvent::RevokeStable { at, app, user } => {
                    latest_revoke.insert((app, user), at);
                }
                AuditEvent::Allow { at, app, user } => {
                    if let Some(&revoked_at) = latest_revoke.get(&(app, user)) {
                        if at > revoked_at + te + slack {
                            return Err(Violation { app, user, revoked_at, allowed_at: at });
                        }
                    }
                }
                AuditEvent::Deny { .. } => {}
            }
        }
        Ok(())
    }
}

fn parse_note(at: SimTime, text: &str) -> Option<AuditEvent> {
    let mut kind = None;
    let mut app = None;
    let mut user = None;
    for token in text.split_whitespace() {
        if let Some(v) = token.strip_prefix("audit=") {
            kind = Some(v.to_owned());
        } else if let Some(v) = token.strip_prefix("app=") {
            app = v.parse::<u32>().ok().map(AppId);
        } else if let Some(v) = token.strip_prefix("user=") {
            user = v.parse::<u64>().ok().map(UserId);
        }
    }
    match (kind.as_deref(), app, user) {
        (Some("allow"), Some(app), Some(user)) => Some(AuditEvent::Allow { at, app, user }),
        (Some("deny"), Some(app), Some(user)) => Some(AuditEvent::Deny { at, app, user }),
        (Some("revoke-stable"), Some(app), Some(user)) => {
            Some(AuditEvent::RevokeStable { at, app, user })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_sim::node::NodeId;

    fn note(trace: &mut Trace, at_secs: u64, text: &str) {
        trace.push(
            SimTime::from_secs(at_secs),
            TraceEvent::Note { node: NodeId::from_index(0), text: text.to_owned() },
        );
    }

    fn traced(lines: &[(u64, &str)]) -> AuditLog {
        let mut t = Trace::new();
        t.set_enabled(true);
        for &(at, text) in lines {
            note(&mut t, at, text);
        }
        AuditLog::from_trace(&t)
    }

    #[test]
    fn parses_well_formed_notes() {
        let log = traced(&[
            (1, "audit=allow app=1 user=2"),
            (2, "audit=deny app=1 user=3"),
            (3, "audit=revoke-stable app=1 user=2"),
            (4, "unrelated note"),
            (5, "audit=bogus app=1 user=1"),
        ]);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.allow_count(), 1);
        assert_eq!(log.revoke_count(), 1);
        assert_eq!(
            log.events()[0],
            AuditEvent::Allow { at: SimTime::from_secs(1), app: AppId(1), user: UserId(2) }
        );
    }

    #[test]
    fn accepts_allows_inside_the_window() {
        let log = traced(&[
            (10, "audit=revoke-stable app=0 user=1"),
            (15, "audit=allow app=0 user=1"), // within Te = 10
        ]);
        assert!(log
            .verify_bounded_revocation(SimDuration::from_secs(10), SimDuration::ZERO)
            .is_ok());
    }

    #[test]
    fn flags_allows_past_the_bound() {
        let log = traced(&[
            (10, "audit=revoke-stable app=0 user=1"),
            (25, "audit=allow app=0 user=1"), // past 10 + Te(10)
        ]);
        let violation = log
            .verify_bounded_revocation(SimDuration::from_secs(10), SimDuration::ZERO)
            .expect_err("must be flagged");
        assert_eq!(violation.user, UserId(1));
        assert_eq!(violation.revoked_at, SimTime::from_secs(10));
        assert!(!violation.to_string().is_empty());
    }

    #[test]
    fn other_users_and_apps_are_unaffected() {
        let log = traced(&[
            (10, "audit=revoke-stable app=0 user=1"),
            (100, "audit=allow app=0 user=2"),
            (100, "audit=allow app=1 user=1"),
        ]);
        assert!(log
            .verify_bounded_revocation(SimDuration::from_secs(5), SimDuration::ZERO)
            .is_ok());
    }

    #[test]
    fn slack_tolerates_in_flight_replies() {
        let log = traced(&[
            (10, "audit=revoke-stable app=0 user=1"),
            (21, "audit=allow app=0 user=1"),
        ]);
        assert!(log
            .verify_bounded_revocation(SimDuration::from_secs(10), SimDuration::ZERO)
            .is_err());
        assert!(log
            .verify_bounded_revocation(SimDuration::from_secs(10), SimDuration::from_secs(2))
            .is_ok());
    }

    #[test]
    fn empty_trace_passes() {
        let log = AuditLog::from_trace(&Trace::new());
        assert!(log
            .verify_bounded_revocation(SimDuration::from_secs(1), SimDuration::ZERO)
            .is_ok());
        assert_eq!(log.events().len(), 0);
    }
}
