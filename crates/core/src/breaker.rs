//! Per-peer circuit breaker for the live check path.
//!
//! When a manager (or name-service replica) stops answering, every
//! retry a host spends on it is latency stolen from the user. The
//! breaker remembers recent silence and lets the host route around a
//! dead peer instead of re-timing-out on it:
//!
//! ```text
//!            failures >= threshold
//!   Closed ──────────────────────────► Open(until)
//!     ▲                                   │ now >= until
//!     │ probe succeeds                    ▼
//!     └───────────────────────────── HalfOpen
//!                 probe fails: reopen with doubled window (capped)
//! ```
//!
//! * **Closed** — peer looks healthy; queries flow normally. Consecutive
//!   failures are counted; reaching the threshold opens the breaker.
//! * **Open** — peer is skipped when selecting query targets, until the
//!   hold-off window elapses. The window doubles on every consecutive
//!   re-open, capped at `open_cap` (same capped-backoff shape as the
//!   name-service retry schedule).
//! * **HalfOpen** — the window elapsed; the peer is eligible again, but
//!   only as a probe: the first failure snaps straight back to `Open`
//!   with a longer window, while any success fully closes the breaker.
//!
//! The breaker is a *latency* mechanism, never a *safety* one: quorum
//! rules (`C` grants, update-quorum intersection) are enforced
//! downstream regardless of which peers the breaker admits, and when
//! skipping open peers would make the check quorum unreachable the host
//! degrades exactly as if those managers were partitioned away
//! ([`crate::policy::ExhaustionBehavior`] decides the outcome).

use std::collections::BTreeMap;

use wanacl_sim::time::{SimDuration, SimTime};

/// Tuning knobs for [`PeerBreaker`]. Attach to a policy with
/// [`crate::policy::PolicyBuilder::breaker`]; the default is **off**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a Closed breaker (must be ≥ 1).
    pub failure_threshold: u32,
    /// Hold-off window after the first trip.
    pub open_base: SimDuration,
    /// Cap on the doubled hold-off window.
    pub open_cap: SimDuration,
}

impl Default for BreakerConfig {
    /// Three strikes, 1 s initial hold-off, capped at 8 s.
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            open_base: SimDuration::from_secs(1),
            open_cap: SimDuration::from_secs(8),
        }
    }
}

impl BreakerConfig {
    /// Validates the knobs (threshold ≥ 1, positive base, cap ≥ base).
    pub fn validate(&self) {
        assert!(self.failure_threshold >= 1, "breaker threshold must be at least 1");
        assert!(self.open_base > SimDuration::ZERO, "breaker open window must be positive");
        assert!(self.open_cap >= self.open_base, "breaker cap must be at least the base window");
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed { failures: u32 },
    Open { until: SimTime, window: SimDuration },
    HalfOpen { window: SimDuration },
}

/// What [`PeerBreaker::record_failure`] did, so callers can emit the
/// matching metric exactly once per transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureOutcome {
    /// Still Closed; failure counted but below the threshold.
    Counted,
    /// The breaker just tripped (Closed → Open or HalfOpen → Open).
    Opened,
    /// Already Open; nothing changed.
    AlreadyOpen,
}

/// Circuit breaker state for a set of peers, keyed by an arbitrary
/// ordered id (the hosts use [`wanacl_sim::node::NodeId`]).
///
/// Peers with no recorded history are implicitly Closed, so the map
/// stays empty until something actually fails.
#[derive(Debug, Clone)]
pub struct PeerBreaker<K: Ord + Copy> {
    config: BreakerConfig,
    peers: BTreeMap<K, State>,
}

impl<K: Ord + Copy> PeerBreaker<K> {
    /// Creates a breaker set with the given knobs.
    pub fn new(config: BreakerConfig) -> Self {
        config.validate();
        PeerBreaker { config, peers: BTreeMap::new() }
    }

    /// Whether `peer` should be offered traffic at `now`. Open peers
    /// whose window has elapsed flip to HalfOpen (admitted as probes).
    pub fn admits(&mut self, peer: K, now: SimTime) -> bool {
        match self.peers.get(&peer).copied() {
            None | Some(State::Closed { .. }) | Some(State::HalfOpen { .. }) => true,
            Some(State::Open { until, window }) => {
                if now >= until {
                    self.peers.insert(peer, State::HalfOpen { window });
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful interaction: closes the breaker and clears
    /// the failure count. Returns `true` only when a *tripped* breaker
    /// (Open or HalfOpen) just closed — the caller's cue to emit a
    /// close metric exactly once per recovery.
    pub fn record_success(&mut self, peer: K) -> bool {
        matches!(
            self.peers.remove(&peer),
            Some(State::Open { .. }) | Some(State::HalfOpen { .. })
        )
    }

    /// Records a failed interaction (timeout / unreachable) at `now`.
    pub fn record_failure(&mut self, peer: K, now: SimTime) -> FailureOutcome {
        let state = self.peers.get(&peer).copied().unwrap_or(State::Closed { failures: 0 });
        match state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.config.failure_threshold {
                    let window = self.config.open_base;
                    self.peers.insert(peer, State::Open { until: now + window, window });
                    FailureOutcome::Opened
                } else {
                    self.peers.insert(peer, State::Closed { failures });
                    FailureOutcome::Counted
                }
            }
            State::HalfOpen { window } => {
                // Failed probe: reopen with a doubled, capped window.
                let window = (window + window).min(self.config.open_cap);
                self.peers.insert(peer, State::Open { until: now + window, window });
                FailureOutcome::Opened
            }
            State::Open { .. } => FailureOutcome::AlreadyOpen,
        }
    }

    /// Number of peers currently in the Open state (HalfOpen counts as
    /// admitted, not open).
    pub fn open_count(&self, now: SimTime) -> usize {
        self.peers
            .values()
            .filter(|s| matches!(s, State::Open { until, .. } if now < *until))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_base: SimDuration::from_secs(1),
            open_cap: SimDuration::from_secs(4),
        }
    }

    #[test]
    fn unknown_peers_are_admitted() {
        let mut b: PeerBreaker<u32> = PeerBreaker::new(cfg());
        assert!(b.admits(7, t(0)));
        assert_eq!(b.open_count(t(0)), 0);
    }

    #[test]
    fn threshold_failures_open_then_window_elapses_to_half_open() {
        let mut b: PeerBreaker<u32> = PeerBreaker::new(cfg());
        assert_eq!(b.record_failure(1, t(0)), FailureOutcome::Counted);
        assert!(b.admits(1, t(0)), "below threshold stays closed");
        assert_eq!(b.record_failure(1, t(0)), FailureOutcome::Opened);
        assert!(!b.admits(1, t(0)), "open peer is skipped");
        assert_eq!(b.open_count(t(0)), 1);
        // Window (1 s) elapses: admitted again as a probe.
        assert!(b.admits(1, t(1)));
        assert_eq!(b.open_count(t(1)), 0);
    }

    #[test]
    fn failed_probe_doubles_window_up_to_cap() {
        let mut b: PeerBreaker<u32> = PeerBreaker::new(cfg());
        b.record_failure(1, t(0));
        b.record_failure(1, t(0)); // open, window 1 s
        assert!(b.admits(1, t(1))); // half-open probe
        assert_eq!(b.record_failure(1, t(1)), FailureOutcome::Opened); // window 2 s
        assert!(!b.admits(1, t(2)), "2 s window holds at t=2");
        assert!(b.admits(1, t(3)));
        assert_eq!(b.record_failure(1, t(3)), FailureOutcome::Opened); // window 4 s (cap)
        assert!(b.admits(1, t(7)));
        assert_eq!(b.record_failure(1, t(7)), FailureOutcome::Opened); // capped at 4 s
        assert!(!b.admits(1, t(10)));
        assert!(b.admits(1, t(11)));
    }

    #[test]
    fn success_closes_from_any_state() {
        let mut b: PeerBreaker<u32> = PeerBreaker::new(cfg());
        b.record_failure(1, t(0));
        assert!(!b.record_success(1), "clearing a counted failure is not a close");
        b.record_failure(1, t(0));
        b.record_failure(1, t(0));
        assert!(b.admits(1, t(1))); // half-open
        assert!(b.record_success(1), "successful probe closes the breaker");
        assert!(b.admits(1, t(1)));
        assert_eq!(b.record_failure(1, t(1)), FailureOutcome::Counted, "counter reset");
        assert!(!b.record_success(9), "no-op on healthy peer");
    }

    #[test]
    fn while_open_additional_failures_do_not_extend_the_window() {
        let mut b: PeerBreaker<u32> = PeerBreaker::new(cfg());
        b.record_failure(1, t(0));
        b.record_failure(1, t(0));
        assert_eq!(b.record_failure(1, t(0)), FailureOutcome::AlreadyOpen);
        assert!(b.admits(1, t(1)), "window unchanged by the extra failure");
    }

    #[test]
    #[should_panic(expected = "cap must be at least")]
    fn config_validation_rejects_cap_below_base() {
        let _ = PeerBreaker::<u32>::new(BreakerConfig {
            failure_threshold: 1,
            open_base: SimDuration::from_secs(2),
            open_cap: SimDuration::from_secs(1),
        });
    }
}
