//! The application wrapper of Figure 1.
//!
//! "The access control mechanisms encapsulate the application, essentially
//! creating a wrapper that enables the application to be written without
//! needing to address access control." [`Application`] is what an
//! application author writes; the host node invokes it only after the
//! access check passes, so application code never sees an unauthorized
//! request.

use crate::types::UserId;

/// A wrapped distributed application.
///
/// Implementations handle already-authorized requests; the host performs
/// authentication and access control before calling [`Application::handle`].
/// `Send` is required so the same application can run under the threaded
/// runtime.
pub trait Application: Send {
    /// A short human-readable name (used in traces).
    fn name(&self) -> &str;

    /// Handles one authorized request and produces a response body.
    fn handle(&mut self, user: UserId, request: &str) -> String;

    /// Downcasting support so harnesses can inspect application state.
    fn as_any(&self) -> &dyn std::any::Any;
}

/// An application that echoes requests back — the simplest possible
/// workload, used by the quickstart example and many tests.
#[derive(Debug, Clone, Default)]
pub struct EchoApp;

impl Application for EchoApp {
    fn name(&self) -> &str {
        "echo"
    }

    fn handle(&mut self, user: UserId, request: &str) -> String {
        format!("echo[{user}]: {request}")
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A stock-quote service: the paper's first motivating example ("a
/// service that provides stock quotes, but only to those users who have
/// paid for the service"). Quotes follow a deterministic pseudo-random
/// walk so runs replay exactly.
#[derive(Debug, Clone)]
pub struct StockQuoteApp {
    state: u64,
}

impl StockQuoteApp {
    /// Creates the service with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        StockQuoteApp { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        // xorshift64* — deterministic and dependency-free.
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Application for StockQuoteApp {
    fn name(&self) -> &str {
        "stock-quotes"
    }

    fn handle(&mut self, _user: UserId, request: &str) -> String {
        let cents = 1_000 + (self.next() % 100_000);
        format!("{request}: {}.{:02} USD", cents / 100, cents % 100)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A request counter, useful for asserting exactly how many requests
/// reached the application (i.e. passed access control).
#[derive(Debug, Clone, Default)]
pub struct CountingApp {
    handled: u64,
}

impl CountingApp {
    /// Creates the counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many requests have reached the application.
    pub fn handled(&self) -> u64 {
        self.handled
    }
}

impl Application for CountingApp {
    fn name(&self) -> &str {
        "counter"
    }

    fn handle(&mut self, _user: UserId, _request: &str) -> String {
        self.handled += 1;
        format!("handled #{}", self.handled)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_includes_user_and_request() {
        let mut app = EchoApp;
        let out = app.handle(UserId(3), "hello");
        assert!(out.contains("u3"));
        assert!(out.contains("hello"));
        assert_eq!(app.name(), "echo");
    }

    #[test]
    fn stock_quotes_are_deterministic_per_seed() {
        let mut a = StockQuoteApp::new(7);
        let mut b = StockQuoteApp::new(7);
        assert_eq!(a.handle(UserId(1), "AAPL"), b.handle(UserId(1), "AAPL"));
        // And the stream advances per request.
        let first = a.handle(UserId(1), "AAPL");
        let second = a.handle(UserId(1), "AAPL");
        assert_ne!(first, second);
    }

    #[test]
    fn stock_quote_format_looks_like_money() {
        let mut app = StockQuoteApp::new(1);
        let out = app.handle(UserId(1), "TICK");
        assert!(out.starts_with("TICK: "));
        assert!(out.ends_with(" USD"));
    }

    #[test]
    fn counting_app_counts() {
        let mut app = CountingApp::new();
        assert_eq!(app.handled(), 0);
        app.handle(UserId(1), "x");
        app.handle(UserId(2), "y");
        assert_eq!(app.handled(), 2);
    }

    #[test]
    fn applications_are_object_safe() {
        let mut apps: Vec<Box<dyn Application>> = vec![
            Box::new(EchoApp),
            Box::new(StockQuoteApp::new(1)),
            Box::new(CountingApp::new()),
        ];
        for app in &mut apps {
            let _ = app.handle(UserId(1), "req");
            assert!(!app.name().is_empty());
        }
    }
}
