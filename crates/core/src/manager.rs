//! The manager side of the protocol (§3.1, §3.3, §3.4).
//!
//! Managers hold the authoritative ACL for each application. A manager:
//!
//! * answers host `Query`s with `Grant{te}`/`Deny` and records which hosts
//!   cache which users' rights (the grant table of §3.1),
//! * applies admin `Add`/`Revoke` operations and disseminates them to
//!   peer managers with a **persistent retransmission** strategy (§3.3),
//!   reporting `Stable` to the issuer once the update quorum `M − C + 1`
//!   has applied the operation,
//! * forwards `RevokeNotice`s to caching hosts, retransmitting until the
//!   cached right would have expired anyway (§3.4: a manager "can stop
//!   resending the message when the access right would have expired"),
//! * optionally runs the §3.3 **freeze strategy**: stop answering checks
//!   while any peer manager has been silent longer than `Ti`,
//! * recovers after a crash by refusing to answer queries until a peer
//!   supplies a state snapshot (§3.4).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use wanacl_auth::rsa;
use wanacl_auth::signed::KeyRegistry;
use wanacl_sim::backoff::Backoff;
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::time::SimDuration;

use crate::msg::{
    admin_signing_bytes, AclOp, AdminStatus, OpId, ProtoMsg, QueryVerdict, RejectReason, ReqId,
};
use crate::policy::Policy;
use crate::types::{Acl, AppId, Right, UserId};

const TAG_KIND_SHIFT: u64 = 56;
const TAG_HEARTBEAT: u64 = 1 << TAG_KIND_SHIFT;
const TAG_RETRY: u64 = 2 << TAG_KIND_SHIFT;
const TAG_GSWEEP: u64 = 3 << TAG_KIND_SHIFT;
const TAG_SYNC: u64 = 4 << TAG_KIND_SHIFT;

/// One application managed by a manager node.
#[derive(Debug, Clone)]
pub struct ManagerApp {
    /// The application id.
    pub app: AppId,
    /// The per-application policy (must match the hosts' policy).
    pub policy: Policy,
    /// The ACL this manager starts with (bootstrap state; must include
    /// at least one `manage`-right holder if admin authorization is
    /// enforced).
    pub initial_acl: Acl,
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The other managers of the deployment.
    pub peers: Vec<NodeId>,
    /// Applications this manager serves.
    pub apps: Vec<ManagerApp>,
    /// Key registry for verifying admin signatures (`None` disables
    /// message authentication).
    pub registry: Option<Arc<KeyRegistry>>,
    /// Whether admin operations require the issuer to hold the `manage`
    /// right in the local ACL.
    pub enforce_manage_right: bool,
    /// Base retransmission period for unacknowledged updates and
    /// revocation notices (the "persistent strategy"). Consecutive
    /// fruitless rounds back off exponentially from this base up to
    /// [`ManagerConfig::retry_cap`].
    pub retry_interval: SimDuration,
    /// Upper bound on the retransmission period once backoff has grown
    /// it; long partitions degrade to this cadence instead of hammering
    /// unreachable peers at the base rate.
    pub retry_cap: SimDuration,
    /// Symmetric jitter fraction in `[0, 1)` applied to every retry
    /// delay (drawn from the node's seeded RNG, so runs stay
    /// deterministic). Decorrelates retry storms after a partition heals.
    pub retry_jitter: f64,
    /// Heartbeat period between managers (freeze detection; should be
    /// well below any app's `Ti`).
    pub heartbeat_interval: SimDuration,
    /// How often the grant table is swept of expired entries.
    pub grant_sweep_interval: SimDuration,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            peers: Vec::new(),
            apps: Vec::new(),
            registry: None,
            enforce_manage_right: false,
            retry_interval: SimDuration::from_millis(500),
            retry_cap: SimDuration::from_secs(10),
            retry_jitter: 0.1,
            heartbeat_interval: SimDuration::from_secs(1),
            grant_sweep_interval: SimDuration::from_secs(30),
        }
    }
}

impl ManagerConfig {
    /// The retransmission backoff schedule derived from the config.
    pub fn retry_backoff(&self) -> Backoff {
        Backoff::new(self.retry_interval, self.retry_cap.max(self.retry_interval))
            .jitter(self.retry_jitter)
    }
}

/// Counters a manager keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Host queries received.
    pub queries: u64,
    /// Grants issued.
    pub grants: u64,
    /// Denies issued.
    pub denies: u64,
    /// Queries silently dropped because the manager was frozen (§3.3).
    pub frozen_drops: u64,
    /// Queries silently dropped while recovering (§3.4).
    pub recovering_drops: u64,
    /// Operations this manager originated.
    pub ops_originated: u64,
    /// Operations that reached their update quorum here.
    pub quorum_reached: u64,
    /// Peer updates applied.
    pub peer_updates_applied: u64,
    /// State snapshots served to recovering peers.
    pub syncs_served: u64,
}

#[derive(Debug)]
struct ManagedApp {
    policy: Policy,
    acl: Acl,
    frozen: bool,
}

#[derive(Debug)]
struct PendingUpdate {
    op: AclOp,
    unacked: BTreeSet<NodeId>,
    applied_count: usize,
    stable: bool,
    issuer: Option<(NodeId, ReqId)>,
    started: LocalTime,
}

#[derive(Debug)]
struct PendingRevoke {
    app: AppId,
    user: UserId,
    /// Host → local deadline after which the cached right has expired on
    /// its own and retransmission stops.
    targets: BTreeMap<NodeId, LocalTime>,
}

/// A manager node.
#[derive(Debug)]
pub struct ManagerNode {
    config: ManagerConfig,
    apps: BTreeMap<AppId, ManagedApp>,
    applied: BTreeSet<OpId>,
    /// Lamport clock; `OpId.seq` values are drawn from it so concurrent
    /// conflicting operations resolve identically at every manager.
    /// Treated as persisted across crashes (a real deployment would keep
    /// it on stable storage with the op log).
    lamport: u64,
    /// Per-slot last writer: `(app, user, right) → newest OpId applied`.
    lww: BTreeMap<(AppId, UserId, Right), OpId>,
    pending: BTreeMap<OpId, PendingUpdate>,
    pending_revokes: Vec<PendingRevoke>,
    grant_table: BTreeMap<(AppId, UserId), BTreeMap<NodeId, LocalTime>>,
    last_heard: BTreeMap<NodeId, LocalTime>,
    /// Consecutive retry rounds that actually resent something; indexes
    /// into the retry backoff schedule. Reset when a round finds nothing
    /// to resend or fresh work arrives.
    retry_round: u32,
    /// Consecutive recovery sync requests without a response.
    sync_round: u32,
    recovering: bool,
    channel: Option<Arc<crate::channel::ChannelKeys>>,
    stats: ManagerStats,
}

impl ManagerNode {
    /// Creates a manager from its configuration.
    pub fn new(config: ManagerConfig) -> Self {
        let apps = config
            .apps
            .iter()
            .map(|a| {
                (a.app, ManagedApp { policy: a.policy.clone(), acl: a.initial_acl.clone(), frozen: false })
            })
            .collect();
        ManagerNode {
            config,
            apps,
            applied: BTreeSet::new(),
            lamport: 0,
            lww: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_revokes: Vec::new(),
            grant_table: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            retry_round: 0,
            sync_round: 0,
            recovering: false,
            channel: None,
            stats: ManagerStats::default(),
        }
    }

    /// Installs pairwise channel keys: `QueryReply` and `RevokeNotice`
    /// messages will carry HMAC tags (see [`crate::channel`]).
    pub fn set_channel_keys(&mut self, keys: Arc<crate::channel::ChannelKeys>) {
        self.channel = Some(keys);
    }

    /// The manager's counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Whether the manager currently holds `right` for `user` on `app`.
    pub fn acl_has(&self, app: AppId, user: UserId, right: Right) -> bool {
        self.apps.get(&app).map(|a| a.acl.has(user, right)).unwrap_or(false)
    }

    /// Whether the app is currently frozen by the §3.3 strategy.
    pub fn is_frozen(&self, app: AppId) -> bool {
        self.apps.get(&app).map(|a| a.frozen).unwrap_or(false)
    }

    /// Whether the manager is recovering and refusing queries.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Number of operations awaiting full dissemination.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Number of hosts currently recorded as caching `user`'s right.
    pub fn granted_hosts(&self, app: AppId, user: UserId) -> usize {
        self.grant_table.get(&(app, user)).map(|m| m.len()).unwrap_or(0)
    }

    /// Total managers in the deployment (`M`).
    fn deployment_size(&self) -> usize {
        self.config.peers.len() + 1
    }

    fn note_peer(&mut self, from: NodeId, now: LocalTime) {
        if self.config.peers.contains(&from) {
            self.last_heard.insert(from, now);
        }
    }

    fn heartbeat_period(&self) -> SimDuration {
        let mut period = self.config.heartbeat_interval;
        for app in self.apps.values() {
            if let Some(f) = app.policy.freeze() {
                period = period.min(f.heartbeat_interval);
            }
        }
        period
    }

    fn arm_periodic(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        ctx.set_timer(self.heartbeat_period(), TAG_HEARTBEAT);
        self.arm_retry(ctx);
        ctx.set_timer(self.config.grant_sweep_interval, TAG_GSWEEP);
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let delay = self.config.retry_backoff().delay(self.retry_round, ctx.rng());
        ctx.set_timer(delay, TAG_RETRY);
    }

    /// Applies an operation under last-writer-wins ordering: the effect
    /// lands only if `id` is newer than the slot's current writer, so
    /// every manager converges to the same ACL regardless of delivery
    /// order. Returns whether the effect was applied.
    fn apply_op(&mut self, op: &AclOp, id: OpId) -> bool {
        self.lamport = self.lamport.max(id.seq);
        let slot = (op.app(), op.user(), op.right());
        if let Some(&current) = self.lww.get(&slot) {
            if id <= current {
                return false; // an equal-or-newer write already landed
            }
        }
        self.lww.insert(slot, id);
        if let Some(state) = self.apps.get_mut(&op.app()) {
            match *op {
                AclOp::Add { user, right, .. } => state.acl.add(user, right),
                AclOp::Revoke { user, right, .. } => state.acl.revoke(user, right),
            }
        }
        true
    }

    /// Starts forwarding a revocation to every host recorded as caching
    /// the user's right, and keeps retransmitting until each cached entry
    /// would have expired on its own.
    fn forward_revocation(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId, user: UserId) {
        let Some(targets) = self.grant_table.remove(&(app, user)) else { return };
        if targets.is_empty() {
            return;
        }
        for host in targets.keys() {
            ctx.metric_incr("mgr.revoke_notices");
            let mac =
                self.channel.as_ref().map(|k| k.tag_revoke_notice(ctx.id(), *host, app, user));
            ctx.send(*host, ProtoMsg::RevokeNotice { app, user, mac });
        }
        self.pending_revokes.push(PendingRevoke { app, user, targets });
        self.retry_round = 0;
    }

    fn on_admin(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        op: AclOp,
        req: ReqId,
        issuer: UserId,
        signature: Option<rsa::Signature>,
    ) {
        let reject = |ctx: &mut Context<'_, ProtoMsg>, reason: RejectReason| {
            ctx.metric_incr("mgr.admin_rejected");
            ctx.send(
                from,
                ProtoMsg::AdminReply { req, status: AdminStatus::Rejected { reason } },
            );
        };
        if self.recovering {
            reject(ctx, RejectReason::Recovering);
            return;
        }
        let Some(state) = self.apps.get(&op.app()) else {
            reject(ctx, RejectReason::UnknownApp);
            return;
        };
        if let Some(registry) = &self.config.registry {
            let ok = match signature {
                Some(sig) => match registry.public_key(issuer.into()) {
                    Some(pk) => rsa::verify(&pk, &admin_signing_bytes(issuer, &op), &sig),
                    None => false,
                },
                None => false,
            };
            if !ok {
                reject(ctx, RejectReason::BadSignature);
                return;
            }
        }
        if self.config.enforce_manage_right && !state.acl.has(issuer, Right::Manage) {
            reject(ctx, RejectReason::NotAuthorized);
            return;
        }

        // Apply locally and start dissemination.
        self.stats.ops_originated += 1;
        ctx.metric_incr("mgr.ops_originated");
        self.lamport += 1;
        let id = OpId { origin: ctx.id(), seq: self.lamport };
        self.apply_op(&op, id);
        self.applied.insert(id);
        // Origin apply note: the oracle reconstructs the ACL's
        // last-writer-wins order from these (seq, origin) stamps, which
        // survives admin resends reordering against concurrent ops.
        ctx.trace(format!(
            "audit=apply kind={} app={} user={} seq={} origin={}",
            if op.is_revoke() { "revoke" } else { "add" },
            op.app().0,
            op.user().0,
            id.seq,
            id.origin.index(),
        ));
        ctx.send(from, ProtoMsg::AdminReply { req, status: AdminStatus::Applied });

        let update_quorum = state_policy_update_quorum(&self.apps, op.app(), self.deployment_size());
        let mut pending = PendingUpdate {
            op,
            unacked: self.config.peers.iter().copied().collect(),
            applied_count: 1,
            stable: false,
            issuer: Some((from, req)),
            started: ctx.local_now(),
        };
        for peer in &self.config.peers {
            ctx.metric_incr("mgr.updates_sent");
            ctx.send(*peer, ProtoMsg::Update { id, op: pending.op });
        }
        if pending.applied_count >= update_quorum {
            pending.stable = true;
            self.stats.quorum_reached += 1;
            ctx.metric_incr("mgr.quorum_reached");
            ctx.metric_observe("mgr.time_to_quorum_s", 0.0);
            let kind = if op.is_revoke() { "revoke-stable" } else { "grant-stable" };
            ctx.trace(format!(
                "audit={kind} app={} user={} seq={} origin={}",
                op.app().0,
                op.user().0,
                id.seq,
                id.origin.index(),
            ));
            ctx.send(from, ProtoMsg::AdminReply { req, status: AdminStatus::Stable });
        }
        if op.is_revoke() {
            self.forward_revocation(ctx, op.app(), op.user());
        }
        if !pending.unacked.is_empty() {
            self.pending.insert(id, pending);
            // Fresh work re-probes at the base cadence even if earlier
            // rounds had backed off.
            self.retry_round = 0;
        }
    }

    /// Inter-manager messages are only honoured from configured peers:
    /// §2.1 trusts managers but nobody else, so a forged `Update` from a
    /// compromised host must not touch the ACL.
    fn is_from_peer(&self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId) -> bool {
        if self.config.peers.contains(&from) {
            true
        } else {
            ctx.metric_incr("mgr.msg_from_non_peer");
            false
        }
    }

    fn on_update(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, id: OpId, op: AclOp) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if self.recovering {
            // Do not apply or ack while our own state is stale; the
            // origin's persistent retransmission will retry after sync.
            ctx.metric_incr("mgr.update_deferred_recovering");
            return;
        }
        if !self.applied.contains(&id) {
            self.applied.insert(id);
            self.apply_op(&op, id);
            self.stats.peer_updates_applied += 1;
            ctx.metric_incr("mgr.peer_updates_applied");
            if op.is_revoke() {
                self.forward_revocation(ctx, op.app(), op.user());
            }
        }
        ctx.send(from, ProtoMsg::UpdateAck { id });
    }

    fn on_update_ack(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, id: OpId) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        let deployment = self.deployment_size();
        let Some(pending) = self.pending.get_mut(&id) else { return };
        if !pending.unacked.remove(&from) {
            return; // duplicate ack
        }
        pending.applied_count += 1;
        let update_quorum =
            state_policy_update_quorum(&self.apps, pending.op.app(), deployment);
        if !pending.stable && pending.applied_count >= update_quorum {
            pending.stable = true;
            self.stats.quorum_reached += 1;
            ctx.metric_incr("mgr.quorum_reached");
            let elapsed = ctx.local_now().since(pending.started);
            ctx.metric_observe("mgr.time_to_quorum_s", elapsed.as_secs_f64());
            let kind = if pending.op.is_revoke() { "revoke-stable" } else { "grant-stable" };
            ctx.trace(format!(
                "audit={kind} app={} user={} seq={} origin={}",
                pending.op.app().0,
                pending.op.user().0,
                id.seq,
                id.origin.index(),
            ));
            if let Some((issuer, req)) = pending.issuer {
                ctx.send(issuer, ProtoMsg::AdminReply { req, status: AdminStatus::Stable });
            }
        }
        if pending.unacked.is_empty() {
            self.pending.remove(&id);
        }
    }

    fn on_query(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        app: AppId,
        user: UserId,
        req: ReqId,
    ) {
        self.stats.queries += 1;
        ctx.metric_incr("mgr.queries");
        if self.recovering {
            // §3.4: do not answer until state has been retrieved.
            self.stats.recovering_drops += 1;
            ctx.metric_incr("mgr.recovering_drops");
            return;
        }
        let Some(state) = self.apps.get(&app) else {
            self.send_query_reply(ctx, from, req, app, user, QueryVerdict::Deny);
            return;
        };
        if state.frozen {
            // §3.3: "no responses are sent to application hosts until all
            // managers are accessible again".
            self.stats.frozen_drops += 1;
            ctx.metric_incr("mgr.frozen_drops");
            return;
        }
        if state.acl.has(user, Right::Use) {
            let te = state.policy.expiry_budget();
            let verdict = QueryVerdict::Grant { te };
            self.stats.grants += 1;
            ctx.metric_incr("mgr.grants");
            ctx.trace(format!(
                "audit=grant app={} user={} te={}",
                app.0,
                user.0,
                te.as_nanos()
            ));
            // Remember which host caches this right, and until when the
            // entry can matter. The manager measures the bound on its own
            // clock; Te is an upper bound on the entry's real lifetime
            // and manager clocks run no faster than real time, so
            // `local_now + Te` is safe.
            let deadline = ctx.local_now().plus(state.policy.revocation_bound());
            self.grant_table.entry((app, user)).or_default().insert(from, deadline);
            self.send_query_reply(ctx, from, req, app, user, verdict);
        } else {
            self.stats.denies += 1;
            ctx.metric_incr("mgr.denies");
            self.send_query_reply(ctx, from, req, app, user, QueryVerdict::Deny);
        }
    }

    fn send_query_reply(
        &self,
        ctx: &mut Context<'_, ProtoMsg>,
        host: NodeId,
        req: ReqId,
        app: AppId,
        user: UserId,
        verdict: QueryVerdict,
    ) {
        let mac = self
            .channel
            .as_ref()
            .map(|k| k.tag_query_reply(ctx.id(), host, req, app, user, &verdict));
        ctx.send(host, ProtoMsg::QueryReply { req, app, user, verdict, mac });
    }

    fn on_heartbeat_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        for peer in &self.config.peers {
            ctx.send(*peer, ProtoMsg::Heartbeat);
        }
        // Evaluate the freeze predicate per app.
        let now = ctx.local_now();
        for (app, state) in self.apps.iter_mut() {
            let Some(freeze) = state.policy.freeze() else { continue };
            // Scale Ti by the rate bound: a clock running at rate >= b
            // measuring b*Ti local units has waited at most Ti real time.
            let ti_local = freeze.ti.mul_f64(state.policy.clock_rate_bound());
            let was_frozen = state.frozen;
            state.frozen = self.config.peers.iter().any(|p| {
                match self.last_heard.get(p) {
                    Some(&heard) => now.since(heard) > ti_local,
                    None => true,
                }
            });
            if state.frozen && !was_frozen {
                ctx.metric_incr("mgr.freeze_transitions");
                ctx.trace(format!("audit=freeze app={}", app.0));
            } else if !state.frozen && was_frozen {
                ctx.trace(format!("audit=thaw app={}", app.0));
            }
        }
        ctx.set_timer(self.heartbeat_period(), TAG_HEARTBEAT);
    }

    fn on_retry_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let mut resent = 0u64;
        for (id, pending) in &self.pending {
            for peer in &pending.unacked {
                ctx.metric_incr("mgr.updates_resent");
                ctx.send(*peer, ProtoMsg::Update { id: *id, op: pending.op });
                resent += 1;
            }
        }
        // Revocation notices: resend until the cached right would have
        // expired anyway (§3.4).
        let now = ctx.local_now();
        for pr in &mut self.pending_revokes {
            pr.targets.retain(|_, deadline| now < *deadline);
            for host in pr.targets.keys() {
                ctx.metric_incr("mgr.revoke_notices_resent");
                let mac = self
                    .channel
                    .as_ref()
                    .map(|k| k.tag_revoke_notice(ctx.id(), *host, pr.app, pr.user));
                ctx.send(*host, ProtoMsg::RevokeNotice { app: pr.app, user: pr.user, mac });
                resent += 1;
            }
        }
        self.pending_revokes.retain(|pr| !pr.targets.is_empty());
        // Graceful degradation: rounds that keep finding unacknowledged
        // work (a partition, a dead peer) back off toward `retry_cap`;
        // an idle round snaps the cadence back to the base interval.
        self.retry_round = if resent == 0 { 0 } else { self.retry_round.saturating_add(1) };
        self.arm_retry(ctx);
    }

    fn on_grant_sweep_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        self.grant_table.retain(|_, hosts| {
            hosts.retain(|_, deadline| now < *deadline);
            !hosts.is_empty()
        });
        ctx.set_timer(self.config.grant_sweep_interval, TAG_GSWEEP);
    }

    fn send_sync_request(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        for peer in &self.config.peers {
            ctx.send(*peer, ProtoMsg::SyncRequest);
        }
        let delay = self.config.retry_backoff().delay(self.sync_round, ctx.rng());
        self.sync_round = self.sync_round.saturating_add(1);
        ctx.set_timer(delay, TAG_SYNC);
    }

    fn on_sync_request(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if self.recovering {
            return;
        }
        self.stats.syncs_served += 1;
        ctx.metric_incr("mgr.syncs_served");
        let acls = self
            .apps
            .iter()
            .map(|(app, state)| {
                let mut entries = Vec::new();
                for (user, rights) in state.acl.iter() {
                    if rights.has(Right::Use) {
                        entries.push((user, Right::Use));
                    }
                    if rights.has(Right::Manage) {
                        entries.push((user, Right::Manage));
                    }
                }
                (*app, entries)
            })
            .collect();
        let applied = self.applied.iter().copied().collect();
        let lww = self
            .lww
            .iter()
            .map(|(&(app, user, right), &id)| (app, user, right, id))
            .collect();
        ctx.send(from, ProtoMsg::SyncResponse { acls, applied, lww });
    }

    fn on_sync_response(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        acls: Vec<(AppId, Vec<(UserId, Right)>)>,
        applied: Vec<OpId>,
        lww: Vec<(AppId, UserId, Right, OpId)>,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if !self.recovering {
            return;
        }
        for (app, entries) in acls {
            if let Some(state) = self.apps.get_mut(&app) {
                state.acl = entries.into_iter().collect();
            }
        }
        self.applied.extend(applied);
        for (app, user, right, id) in lww {
            self.lamport = self.lamport.max(id.seq);
            let slot = (app, user, right);
            let newer = self.lww.get(&slot).map(|cur| id > *cur).unwrap_or(true);
            if newer {
                self.lww.insert(slot, id);
            }
        }
        self.recovering = false;
        self.sync_round = 0;
        ctx.metric_incr("mgr.recovered_via_sync");
    }
}

/// The update quorum for `app` given the deployment size, falling back to
/// a majority-free `1` when the app is unknown (cannot happen for ops
/// that passed validation).
fn state_policy_update_quorum(
    apps: &BTreeMap<AppId, ManagedApp>,
    app: AppId,
    deployment: usize,
) -> usize {
    apps.get(&app).map(|s| s.policy.update_quorum(deployment)).unwrap_or(1)
}

impl Node for ManagerNode {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        for peer in self.config.peers.clone() {
            self.last_heard.insert(peer, now);
        }
        self.arm_periodic(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Admin { op, req, issuer, signature } => {
                self.on_admin(ctx, from, op, req, issuer, signature);
            }
            ProtoMsg::Update { id, op } => self.on_update(ctx, from, id, op),
            ProtoMsg::UpdateAck { id } => self.on_update_ack(ctx, from, id),
            ProtoMsg::Query { app, user, req } => self.on_query(ctx, from, app, user, req),
            ProtoMsg::Heartbeat => {
                if self.is_from_peer(ctx, from) {
                    self.note_peer(from, ctx.local_now());
                }
            }
            ProtoMsg::SyncRequest => self.on_sync_request(ctx, from),
            ProtoMsg::SyncResponse { acls, applied, lww } => {
                self.on_sync_response(ctx, from, acls, applied, lww);
            }
            _ => {
                ctx.metric_incr("mgr.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        match tag {
            TAG_HEARTBEAT => self.on_heartbeat_tick(ctx),
            TAG_RETRY => self.on_retry_tick(ctx),
            TAG_GSWEEP => self.on_grant_sweep_tick(ctx),
            TAG_SYNC
                if self.recovering => {
                    self.send_sync_request(ctx);
                }
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // Crash model (§2.1): managers are crash-only. All volatile
        // coordination state is lost; the ACL itself is treated as stale
        // and replaced during recovery sync. The Lamport counter is
        // modelled as persisted (stable storage), so post-crash
        // operations never reuse an OpId.
        self.pending.clear();
        self.pending_revokes.clear();
        self.grant_table.clear();
        self.last_heard.clear();
        self.applied.clear();
        self.lww.clear();
        self.retry_round = 0;
        self.sync_round = 0;
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        for peer in self.config.peers.clone() {
            self.last_heard.insert(peer, now);
        }
        self.arm_periodic(ctx);
        self.sync_round = 0;
        if self.config.peers.is_empty() {
            self.recovering = false;
        } else {
            self.recovering = true;
            self.send_sync_request(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wanacl_sim::node::Effect;
    use wanacl_sim::rng::SimRng;

    struct Harness {
        rng: SimRng,
        next_timer: u64,
        now: LocalTime,
        id: NodeId,
    }

    impl Harness {
        fn new(id: usize) -> Self {
            Harness {
                rng: SimRng::seed_from(1),
                next_timer: 0,
                now: LocalTime::ZERO,
                id: NodeId::from_index(id),
            }
        }

        fn deliver(
            &mut self,
            node: &mut ManagerNode,
            from: usize,
            msg: ProtoMsg,
        ) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            {
                let mut ctx = Context::new(
                    self.id,
                    self.now,
                    &mut effects,
                    &mut self.rng,
                    &mut self.next_timer,
                );
                node.on_message(&mut ctx, NodeId::from_index(from), msg);
            }
            effects
        }
    }

    fn manager_with_peers(id: usize, peers: &[usize]) -> (ManagerNode, Harness) {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        let node = ManagerNode::new(ManagerConfig {
            peers: peers.iter().map(|&p| NodeId::from_index(p)).collect(),
            apps: vec![ManagerApp {
                app: AppId(0),
                policy: Policy::builder(1).build(),
                initial_acl: acl,
            }],
            ..ManagerConfig::default()
        });
        (node, Harness::new(id))
    }

    fn sends(effects: &[Effect<ProtoMsg>]) -> Vec<(NodeId, &ProtoMsg)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn query_grants_known_user_and_records_host() {
        let (mut mgr, mut h) = manager_with_peers(0, &[]);
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(3) },
        );
        let replies = sends(&effects);
        assert!(matches!(
            replies[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Grant { .. }, .. }
        ));
        assert_eq!(mgr.granted_hosts(AppId(0), UserId(1)), 1);
        assert_eq!(mgr.stats().grants, 1);
    }

    #[test]
    fn query_denies_unknown_user() {
        let (mut mgr, mut h) = manager_with_peers(0, &[]);
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(9), req: ReqId(3) },
        );
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Deny, .. }
        ));
        assert_eq!(mgr.granted_hosts(AppId(0), UserId(9)), 0);
    }

    #[test]
    fn admin_op_disseminates_to_all_peers() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let effects = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(5), right: Right::Use },
                req: ReqId(1),
                issuer: UserId(0),
                signature: None,
            },
        );
        let updates: Vec<NodeId> = sends(&effects)
            .into_iter()
            .filter(|(_, m)| matches!(m, ProtoMsg::Update { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(updates, vec![NodeId::from_index(1), NodeId::from_index(2)]);
        assert!(mgr.acl_has(AppId(0), UserId(5), Right::Use));
        assert_eq!(mgr.pending_updates(), 1);
        // C = 1 -> update quorum 3: not yet stable with only self.
        assert_eq!(mgr.stats().quorum_reached, 0);
    }

    #[test]
    fn acks_complete_the_quorum_and_clear_pending() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let effects = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
                req: ReqId(1),
                issuer: UserId(0),
                signature: None,
            },
        );
        let id = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Update { id, .. } => Some(*id),
                _ => None,
            })
            .expect("update sent");
        let effects = h.deliver(&mut mgr, 1, ProtoMsg::UpdateAck { id });
        // Quorum (3 of 3 for C=1... M=3, uq = M-C+1 = 3): needs both acks.
        assert!(!sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::AdminReply { status: AdminStatus::Stable, .. })));
        let effects = h.deliver(&mut mgr, 2, ProtoMsg::UpdateAck { id });
        assert!(sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::AdminReply { status: AdminStatus::Stable, .. })));
        assert_eq!(mgr.pending_updates(), 0);
    }

    #[test]
    fn peer_update_applies_once_and_acks_every_time() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let id = OpId { origin: NodeId::from_index(1), seq: 5 };
        let op = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        let e1 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(matches!(sends(&e1)[0].1, ProtoMsg::UpdateAck { .. }));
        assert!(mgr.acl_has(AppId(0), UserId(8), Right::Use));
        assert_eq!(mgr.stats().peer_updates_applied, 1);
        // Duplicate delivery: still acked, not re-applied.
        let e2 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(matches!(sends(&e2)[0].1, ProtoMsg::UpdateAck { .. }));
        assert_eq!(mgr.stats().peer_updates_applied, 1);
    }

    #[test]
    fn lww_keeps_the_newest_write_regardless_of_arrival_order() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let newer = OpId { origin: NodeId::from_index(2), seq: 9 };
        let older = OpId { origin: NodeId::from_index(1), seq: 3 };
        h.deliver(
            &mut mgr,
            2,
            ProtoMsg::Update {
                id: newer,
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(!mgr.acl_has(AppId(0), UserId(1), Right::Use));
        // The older concurrent Add arrives late: it must lose.
        h.deliver(
            &mut mgr,
            1,
            ProtoMsg::Update {
                id: older,
                op: AclOp::Add { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(!mgr.acl_has(AppId(0), UserId(1), Right::Use), "older write must not win");
    }

    #[test]
    fn non_peer_update_is_rejected() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let id = OpId { origin: NodeId::from_index(9), seq: 1 };
        let effects = h.deliver(
            &mut mgr,
            9, // not a peer
            ProtoMsg::Update {
                id,
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(sends(&effects).is_empty(), "no ack for a non-peer");
        assert!(mgr.acl_has(AppId(0), UserId(1), Right::Use), "ACL untouched");
    }

    #[test]
    fn recovering_manager_defers_updates_and_queries() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        mgr.on_crash();
        // Simulate the world's recovery callback.
        let mut effects = Vec::new();
        {
            let mut ctx =
                Context::new(h.id, h.now, &mut effects, &mut h.rng, &mut h.next_timer);
            mgr.on_recover(&mut ctx);
        }
        assert!(mgr.is_recovering());
        // Queries are silently dropped.
        let effects =
            h.deliver(&mut mgr, 7, ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(1) });
        assert!(sends(&effects).is_empty());
        // A sync response restores service.
        let effects = h.deliver(
            &mut mgr,
            1,
            ProtoMsg::SyncResponse {
                acls: vec![(AppId(0), vec![(UserId(1), Right::Use)])],
                applied: vec![],
                lww: vec![],
            },
        );
        let _ = effects;
        assert!(!mgr.is_recovering());
        let effects =
            h.deliver(&mut mgr, 7, ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(2) });
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Grant { .. }, .. }
        ));
    }

    #[test]
    fn sync_request_is_served_with_full_state() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let effects = h.deliver(&mut mgr, 1, ProtoMsg::SyncRequest);
        let reply = sends(&effects);
        match reply[0].1 {
            ProtoMsg::SyncResponse { acls, .. } => {
                assert_eq!(acls.len(), 1);
                assert_eq!(acls[0].1, vec![(UserId(1), Right::Use)]);
            }
            other => panic!("expected sync response, got {other:?}"),
        }
        assert_eq!(mgr.stats().syncs_served, 1);
    }
}
