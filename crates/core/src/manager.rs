//! The manager side of the protocol (§3.1, §3.3, §3.4).
//!
//! Managers hold the authoritative ACL for each application. A manager:
//!
//! * answers host `Query`s with `Grant{te}`/`Deny` and records which hosts
//!   cache which users' rights (the grant table of §3.1),
//! * applies admin `Add`/`Revoke` operations and disseminates them to
//!   peer managers with a **persistent retransmission** strategy (§3.3),
//!   reporting `Stable` to the issuer once the update quorum `M − C + 1`
//!   has applied the operation,
//! * forwards `RevokeNotice`s to caching hosts, retransmitting until the
//!   cached right would have expired anyway (§3.4: a manager "can stop
//!   resending the message when the access right would have expired"),
//! * optionally runs the §3.3 **freeze strategy**: stop answering checks
//!   while any peer manager has been silent longer than `Ti`,
//! * keeps its state **durable** when given a [`Storage`] backend: every
//!   applied op is WAL-logged *before* it is acknowledged (an ack is a
//!   quorum promise), snapshots truncate the log on a configurable
//!   cadence, and crash recovery replays snapshot + WAL locally and then
//!   runs a *delta* peer sync for freshness,
//! * without storage, recovers after a crash by refusing to answer
//!   queries until a peer supplies state (§3.4).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use wanacl_auth::rsa;
use wanacl_auth::signed::KeyRegistry;
use wanacl_sim::backoff::Backoff;
use wanacl_sim::clock::LocalTime;
use wanacl_sim::node::{Context, Node, NodeId};
use wanacl_sim::storage::{Recovered, Storage, StorageStats};
use wanacl_sim::time::SimDuration;

use crate::msg::{
    admin_signing_bytes, AclOp, AdminStatus, NsRecord, OpId, ProtoMsg, QueryVerdict, RejectReason,
    ReqId,
};
use crate::policy::Policy;
use crate::storelog::{
    decode_snapshot, decode_wal_record, encode_record, encode_release, encode_snapshot,
    SnapshotState, WalRecord,
};
use crate::types::{user_bucket, Acl, AppId, Right, ShardId, UserId};

/// Jump added to the Lamport clock after a disk recovery so a cold
/// process restart (which loses the in-memory counter) can never mint an
/// `OpId` that collides with one issued before the crash but not yet
/// durable anywhere.
const LAMPORT_RECOVERY_MARGIN: u64 = 1 << 10;

const TAG_KIND_SHIFT: u64 = 56;
const TAG_HEARTBEAT: u64 = 1 << TAG_KIND_SHIFT;
const TAG_RETRY: u64 = 2 << TAG_KIND_SHIFT;
const TAG_GSWEEP: u64 = 3 << TAG_KIND_SHIFT;
const TAG_SYNC: u64 = 4 << TAG_KIND_SHIFT;
const TAG_HANDOFF: u64 = 5 << TAG_KIND_SHIFT;

/// Static per-shard metric labels ([`Context::metric_incr`] takes
/// `&'static str`); shard ids past the table share one overflow row.
const SHARD_QUERY_METRICS: [&str; 8] = [
    "shard.0.queries",
    "shard.1.queries",
    "shard.2.queries",
    "shard.3.queries",
    "shard.4.queries",
    "shard.5.queries",
    "shard.6.queries",
    "shard.7.queries",
];
const SHARD_UPDATE_METRICS: [&str; 8] = [
    "shard.0.updates",
    "shard.1.updates",
    "shard.2.updates",
    "shard.3.updates",
    "shard.4.updates",
    "shard.5.updates",
    "shard.6.updates",
    "shard.7.updates",
];

fn shard_metric(table: &'static [&'static str; 8], overflow: &'static str, shard: ShardId) -> &'static str {
    table.get(shard.0 as usize).copied().unwrap_or(overflow)
}

/// Order-sensitive FNV-1a digest over the WAL encodings of a transfer's
/// ops. Source and target both compute it; the oracle's rebalance-safety
/// invariant (I9) compares the two sides.
pub fn transfer_digest(ops: &[(OpId, AclOp)]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (id, op) in ops {
        for byte in encode_record(*id, op) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// One application managed by a manager node.
#[derive(Debug, Clone)]
pub struct ManagerApp {
    /// The application id.
    pub app: AppId,
    /// The per-application policy (must match the hosts' policy).
    pub policy: Policy,
    /// The ACL this manager starts with (bootstrap state; must include
    /// at least one `manage`-right holder if admin authorization is
    /// enforced).
    pub initial_acl: Acl,
}

/// One shard a manager owns at deployment time (tentpole: the ACL
/// keyspace is partitioned into bucket ranges, each served by its own
/// manager set with independent check/update quorums).
#[derive(Debug, Clone)]
pub struct ManagerShard {
    /// The shard's global id.
    pub shard: ShardId,
    /// The application (tenant) the shard belongs to.
    pub app: AppId,
    /// First covered [`user_bucket`] value (inclusive).
    pub lo: u8,
    /// Last covered [`user_bucket`] value (inclusive).
    pub hi: u8,
    /// The shard's co-owners (excluding this manager). Updates for the
    /// shard fan out to exactly this set, so quorum traffic per
    /// operation is independent of the deployment size and of other
    /// tenants' ACLs.
    pub peers: Vec<NodeId>,
}

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// The other managers of the deployment.
    pub peers: Vec<NodeId>,
    /// Applications this manager serves.
    pub apps: Vec<ManagerApp>,
    /// Shards this manager initially owns. Empty = the legacy flat mode
    /// (every manager holds every app's whole ACL); nonempty switches
    /// query/admin routing to shard-scoped stores.
    pub shards: Vec<ManagerShard>,
    /// Trust anchor for verifying the namespace writer's signature on
    /// shard-handoff records; `None` accepts handoffs unverified
    /// (tests only — sharded scenarios always set it).
    pub ns_trust: Option<Arc<KeyRegistry>>,
    /// Key registry for verifying admin signatures (`None` disables
    /// message authentication).
    pub registry: Option<Arc<KeyRegistry>>,
    /// Whether admin operations require the issuer to hold the `manage`
    /// right in the local ACL.
    pub enforce_manage_right: bool,
    /// Base retransmission period for unacknowledged updates and
    /// revocation notices (the "persistent strategy"). Consecutive
    /// fruitless rounds back off exponentially from this base up to
    /// [`ManagerConfig::retry_cap`].
    pub retry_interval: SimDuration,
    /// Upper bound on the retransmission period once backoff has grown
    /// it; long partitions degrade to this cadence instead of hammering
    /// unreachable peers at the base rate.
    pub retry_cap: SimDuration,
    /// Symmetric jitter fraction in `[0, 1)` applied to every retry
    /// delay (drawn from the node's seeded RNG, so runs stay
    /// deterministic). Decorrelates retry storms after a partition heals.
    pub retry_jitter: f64,
    /// Heartbeat period between managers (freeze detection; should be
    /// well below any app's `Ti`).
    pub heartbeat_interval: SimDuration,
    /// How often the grant table is swept of expired entries.
    pub grant_sweep_interval: SimDuration,
    /// Snapshot cadence when stable storage is attached: after this many
    /// WAL appends the manager writes a snapshot and truncates the log.
    /// `0` disables snapshotting (the WAL grows unboundedly).
    pub snapshot_every: u64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            peers: Vec::new(),
            apps: Vec::new(),
            shards: Vec::new(),
            ns_trust: None,
            registry: None,
            enforce_manage_right: false,
            retry_interval: SimDuration::from_millis(500),
            retry_cap: SimDuration::from_secs(10),
            retry_jitter: 0.1,
            heartbeat_interval: SimDuration::from_secs(1),
            grant_sweep_interval: SimDuration::from_secs(30),
            snapshot_every: 64,
        }
    }
}

impl ManagerConfig {
    /// The retransmission backoff schedule derived from the config.
    pub fn retry_backoff(&self) -> Backoff {
        Backoff::new(self.retry_interval, self.retry_cap.max(self.retry_interval))
            .jitter(self.retry_jitter)
    }
}

/// Counters a manager keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Host queries received.
    pub queries: u64,
    /// Grants issued.
    pub grants: u64,
    /// Denies issued.
    pub denies: u64,
    /// Queries silently dropped because the manager was frozen (§3.3).
    pub frozen_drops: u64,
    /// Queries refused (answered `Unavailable`) while recovering (§3.4).
    pub recovering_drops: u64,
    /// Operations this manager originated.
    pub ops_originated: u64,
    /// Operations that reached their update quorum here.
    pub quorum_reached: u64,
    /// Peer updates applied.
    pub peer_updates_applied: u64,
    /// Delta syncs served to recovering peers.
    pub syncs_served: u64,
    /// WAL records appended (storage-backed managers only).
    pub wal_appends: u64,
    /// Snapshots written (each truncates the WAL).
    pub snapshot_writes: u64,
    /// Recoveries satisfied from local stable storage.
    pub recovered_from_disk: u64,
    /// Shards this manager durably released during a handoff.
    pub shards_released: u64,
    /// Shards this manager acquired (activated) through a handoff.
    pub shards_acquired: u64,
}

/// Source-side handoff bookkeeping while the shard is frozen.
#[derive(Debug)]
struct HandoffSource {
    /// The new map version the handoff installs.
    epoch: u64,
    /// The pre-signed next-version record (retransmitted to late
    /// participants; published by the primary once all sources release).
    record: NsRecord,
    targets: Vec<NodeId>,
    publish_to: Vec<NodeId>,
    /// Targets that have not acknowledged this source's transfer yet.
    unacked_transfer: BTreeSet<NodeId>,
    /// The transfer payload, fixed at freeze time so retransmissions
    /// carry identical bytes (and the digest stays meaningful).
    ops: Vec<(OpId, AclOp)>,
    digest: u64,
}

/// Handoff coordination state, held by the primary source (the
/// lowest-id current owner): tracks which sources have durably released
/// and which targets have acknowledged activation.
#[derive(Debug)]
struct HandoffCoord {
    epoch: u64,
    record: NsRecord,
    publish_to: Vec<NodeId>,
    awaiting_release: BTreeSet<NodeId>,
    awaiting_activate: BTreeSet<NodeId>,
}

/// Where one of this manager's shards is in its lifecycle.
#[derive(Debug)]
enum ShardPhase {
    /// Serving checks and accepting updates.
    Active,
    /// Source side of a handoff: checks are still answered from the
    /// frozen state (no update can become stable anywhere during the
    /// freeze, so the answers stay sound), admin ops are silently
    /// dropped (the agent's persistent resend carries them past the
    /// handoff).
    Frozen(HandoffSource),
    /// Durably renounced: checks answer `Unavailable{ShardMoved}`,
    /// admin ops are forwarded to the new owner set.
    Released {
        epoch: u64,
        /// First member of the new owner set, for admin forwarding
        /// (`None` after a crash recovery that only replayed the WAL
        /// marker — admins are then dropped until the agent re-routes).
        forward_to: Option<NodeId>,
        /// Whether the handoff primary acknowledged our `ShardReleased`.
        acked: bool,
    },
    /// Target side of a handoff: transfers are being merged; the shard
    /// serves nothing until the primary activates it.
    Preparing {
        /// Sources whose transfer has been applied (dedupes resends).
        received: BTreeSet<NodeId>,
    },
}

/// One shard owned (or being acquired/relinquished) by this manager.
#[derive(Debug)]
struct ShardState {
    app: AppId,
    lo: u8,
    hi: u8,
    /// Co-owners under the epoch this state belongs to.
    peers: Vec<NodeId>,
    /// The shard-map version under which this manager (last) owned the
    /// shard; targets carry the incoming epoch from creation.
    epoch: u64,
    phase: ShardPhase,
}

impl ShardState {
    fn covers(&self, app: AppId, bucket: u8) -> bool {
        self.app == app && bucket >= self.lo && bucket <= self.hi
    }
}

/// How an `(app, user)` slot routes through this manager's shard table.
enum ShardRoute {
    /// No shard table configured, or no shard covers the slot.
    None,
    /// An active shard covers it: serve normally.
    Active(ShardId),
    /// The covering shard is frozen for handoff: queries are answered
    /// from the frozen state (nothing can become stable meanwhile);
    /// admins are silently dropped so the agent's resend carries them
    /// past the freeze.
    Frozen(ShardId),
    /// The shard was handed off; `forward_to` is a new owner when known.
    Moved { forward_to: Option<NodeId> },
    /// The shard is arriving but not yet activated.
    Preparing,
}

#[derive(Debug)]
struct ManagedApp {
    policy: Policy,
    acl: Acl,
    frozen: bool,
}

#[derive(Debug)]
struct PendingUpdate {
    op: AclOp,
    unacked: BTreeSet<NodeId>,
    applied_count: usize,
    /// Applied-copy count that makes the op stable. Computed at origin
    /// time: `M − C + 1` over the flat deployment in legacy mode, over
    /// the owning shard's manager set in sharded mode.
    quorum: usize,
    stable: bool,
    /// Whether this manager's own copy is durable yet. The origin counts
    /// itself toward the update quorum only once the op is WAL-synced
    /// (without storage this is immediate).
    self_durable: bool,
    issuer: Option<(NodeId, ReqId)>,
    started: LocalTime,
}

/// An op applied in memory but awaiting a successful WAL sync barrier.
/// The promise attached to it (ack to a peer, or counting ourselves
/// toward the quorum) is withheld until the record is durable.
#[derive(Debug)]
struct UnloggedOp {
    op: AclOp,
    /// Peer to ack once durable; `None` for locally-originated or
    /// sync-merged ops.
    ack_to: Option<NodeId>,
}

#[derive(Debug)]
struct PendingRevoke {
    app: AppId,
    user: UserId,
    /// Host → local deadline after which the cached right has expired on
    /// its own and retransmission stops.
    targets: BTreeMap<NodeId, LocalTime>,
}

/// A manager node.
#[derive(Debug)]
pub struct ManagerNode {
    config: ManagerConfig,
    apps: BTreeMap<AppId, ManagedApp>,
    applied: BTreeSet<OpId>,
    /// Lamport clock; `OpId.seq` values are drawn from it so concurrent
    /// conflicting operations resolve identically at every manager.
    /// Treated as persisted across crashes (the in-memory value survives
    /// the crash model); disk recovery additionally maxes it against the
    /// snapshot/WAL and adds a safety margin so a cold process restart
    /// never reuses an OpId.
    lamport: u64,
    /// Per-slot last writer: `(app, user, right) → (newest OpId applied,
    /// the winning op)`. Keeping the op makes the table self-contained:
    /// bootstrap ACL + winning op per slot *is* the ACL, which is what
    /// snapshots persist and delta syncs exchange.
    lww: BTreeMap<(AppId, UserId, Right), (OpId, AclOp)>,
    /// Highest applied `seq` per origin manager (the delta-sync
    /// high-water marks).
    origin_stamps: BTreeMap<NodeId, u64>,
    pending: BTreeMap<OpId, PendingUpdate>,
    pending_revokes: Vec<PendingRevoke>,
    grant_table: BTreeMap<(AppId, UserId), BTreeMap<NodeId, LocalTime>>,
    last_heard: BTreeMap<NodeId, LocalTime>,
    /// Consecutive retry rounds that actually resent something; indexes
    /// into the retry backoff schedule. Reset when a round finds nothing
    /// to resend or fresh work arrives.
    retry_round: u32,
    /// Consecutive recovery sync requests without a response.
    sync_round: u32,
    recovering: bool,
    /// Serving from locally-replayed durable state, with a delta peer
    /// sync still in flight for freshness. Unlike `recovering`, queries
    /// ARE answered in this mode (local replay is sufficient for
    /// safety: everything this manager ever acked was fsynced first).
    delta_syncing: bool,
    /// Stable storage, if attached. `None` reproduces the paper's
    /// volatile managers (sync-only recovery).
    storage: Option<Box<dyn Storage>>,
    /// Ops applied in memory whose WAL sync barrier has not yet
    /// succeeded; their acks/quorum counts are withheld.
    unlogged: BTreeMap<OpId, UnloggedOp>,
    /// WAL appends since the last snapshot (drives the cadence).
    wal_since_snapshot: u64,
    channel: Option<Arc<crate::channel::ChannelKeys>>,
    /// Shard-scoped stores; empty = legacy flat mode.
    shards: BTreeMap<ShardId, ShardState>,
    /// Handoff coordination per shard (primary source only).
    coord: BTreeMap<ShardId, HandoffCoord>,
    /// Durable record of released shards (mirrors the WAL markers; the
    /// snapshot carries it so compaction cannot forget a release).
    released: BTreeMap<ShardId, u64>,
    /// Whether the handoff retransmission timer is armed.
    handoff_timer_armed: bool,
    /// Planted-bug hook: the target drops the last op of every incoming
    /// transfer, so its install digest diverges from the source's
    /// handoff digest — the lost-handoff bug I9 must catch.
    drop_handoff_tail: bool,
    stats: ManagerStats,
}

impl ManagerNode {
    /// Creates a manager from its configuration.
    pub fn new(config: ManagerConfig) -> Self {
        let apps = config
            .apps
            .iter()
            .map(|a| {
                (a.app, ManagedApp { policy: a.policy.clone(), acl: a.initial_acl.clone(), frozen: false })
            })
            .collect();
        let shards = config
            .shards
            .iter()
            .map(|s| {
                (
                    s.shard,
                    ShardState {
                        app: s.app,
                        lo: s.lo,
                        hi: s.hi,
                        peers: s.peers.clone(),
                        epoch: 1,
                        phase: ShardPhase::Active,
                    },
                )
            })
            .collect();
        ManagerNode {
            config,
            apps,
            applied: BTreeSet::new(),
            lamport: 0,
            lww: BTreeMap::new(),
            origin_stamps: BTreeMap::new(),
            pending: BTreeMap::new(),
            pending_revokes: Vec::new(),
            grant_table: BTreeMap::new(),
            last_heard: BTreeMap::new(),
            retry_round: 0,
            sync_round: 0,
            recovering: false,
            delta_syncing: false,
            storage: None,
            unlogged: BTreeMap::new(),
            wal_since_snapshot: 0,
            channel: None,
            shards,
            coord: BTreeMap::new(),
            released: BTreeMap::new(),
            handoff_timer_armed: false,
            drop_handoff_tail: false,
            stats: ManagerStats::default(),
        }
    }

    /// Planted-bug hook (see [`crate::campaign::InjectedBug`]): drop the
    /// tail op of every incoming shard transfer, silently losing an
    /// update across the handoff. I9 must catch the digest divergence.
    pub fn set_drop_handoff_tail(&mut self, on: bool) {
        self.drop_handoff_tail = on;
    }

    /// Whether this manager currently serves `shard` (phase `Active`).
    pub fn shard_active(&self, shard: ShardId) -> bool {
        self.shards.get(&shard).is_some_and(|s| matches!(s.phase, ShardPhase::Active))
    }

    /// Whether this manager has durably released `shard`.
    pub fn shard_released(&self, shard: ShardId) -> bool {
        self.released.contains_key(&shard)
            || self
                .shards
                .get(&shard)
                .is_some_and(|s| matches!(s.phase, ShardPhase::Released { .. }))
    }

    /// Attaches stable storage. Install before the node starts; if the
    /// storage already holds state (a process restart), `on_start`
    /// replays it before serving.
    pub fn set_storage(&mut self, storage: Box<dyn Storage>) {
        self.storage = Some(storage);
    }

    /// The attached storage, for fault-model configuration and stats.
    pub fn storage_mut(&mut self) -> Option<&mut (dyn Storage + '_)> {
        self.storage.as_deref_mut().map(|s| s as _)
    }

    /// Counters of the attached storage, if any.
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(|s| s.stats())
    }

    /// Installs pairwise channel keys: `QueryReply` and `RevokeNotice`
    /// messages will carry HMAC tags (see [`crate::channel`]).
    pub fn set_channel_keys(&mut self, keys: Arc<crate::channel::ChannelKeys>) {
        self.channel = Some(keys);
    }

    /// The manager's counters.
    pub fn stats(&self) -> ManagerStats {
        self.stats
    }

    /// Whether the manager currently holds `right` for `user` on `app`.
    pub fn acl_has(&self, app: AppId, user: UserId, right: Right) -> bool {
        self.apps.get(&app).map(|a| a.acl.has(user, right)).unwrap_or(false)
    }

    /// Whether the app is currently frozen by the §3.3 strategy.
    pub fn is_frozen(&self, app: AppId) -> bool {
        self.apps.get(&app).map(|a| a.frozen).unwrap_or(false)
    }

    /// Whether the manager is recovering and refusing queries.
    pub fn is_recovering(&self) -> bool {
        self.recovering
    }

    /// Number of operations awaiting full dissemination.
    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Number of hosts currently recorded as caching `user`'s right.
    pub fn granted_hosts(&self, app: AppId, user: UserId) -> usize {
        self.grant_table.get(&(app, user)).map(|m| m.len()).unwrap_or(0)
    }

    /// Total managers in the deployment (`M`).
    fn deployment_size(&self) -> usize {
        self.config.peers.len() + 1
    }

    fn note_peer(&mut self, from: NodeId, now: LocalTime) {
        if self.config.peers.contains(&from) {
            self.last_heard.insert(from, now);
        }
    }

    fn heartbeat_period(&self) -> SimDuration {
        let mut period = self.config.heartbeat_interval;
        for app in self.apps.values() {
            if let Some(f) = app.policy.freeze() {
                period = period.min(f.heartbeat_interval);
            }
        }
        period
    }

    fn arm_periodic(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        ctx.set_timer(self.heartbeat_period(), TAG_HEARTBEAT);
        self.arm_retry(ctx);
        ctx.set_timer(self.config.grant_sweep_interval, TAG_GSWEEP);
    }

    fn arm_retry(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let delay = self.config.retry_backoff().delay(self.retry_round, ctx.rng());
        ctx.set_timer(delay, TAG_RETRY);
    }

    /// Applies an operation under last-writer-wins ordering: the effect
    /// lands only if `id` is newer than the slot's current writer, so
    /// every manager converges to the same ACL regardless of delivery
    /// order. Returns whether the effect was applied.
    fn apply_op(&mut self, op: &AclOp, id: OpId) -> bool {
        self.lamport = self.lamport.max(id.seq);
        let slot = (op.app(), op.user(), op.right());
        if let Some(&(current, _)) = self.lww.get(&slot) {
            if id <= current {
                return false; // an equal-or-newer write already landed
            }
        }
        self.lww.insert(slot, (id, *op));
        if let Some(state) = self.apps.get_mut(&op.app()) {
            match *op {
                AclOp::Add { user, right, .. } => state.acl.add(user, right),
                AclOp::Revoke { user, right, .. } => state.acl.revoke(user, right),
            }
        }
        true
    }

    /// Marks `id` as applied and advances its origin's high-water mark.
    fn record_applied(&mut self, id: OpId) {
        let stamp = self.origin_stamps.entry(id.origin).or_insert(0);
        *stamp = (*stamp).max(id.seq);
        self.applied.insert(id);
    }

    /// Makes an applied op durable before honouring the promise attached
    /// to it (acking a peer, or counting ourselves toward the quorum).
    /// Without storage the promise is honoured immediately.
    fn log_op(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        id: OpId,
        op: AclOp,
        ack_to: Option<NodeId>,
    ) {
        if self.storage.is_none() {
            self.op_committed(ctx, id, op, ack_to);
            return;
        }
        let record = encode_record(id, &op);
        if let Some(storage) = self.storage.as_mut() {
            if storage.append(&record).is_err() {
                ctx.metric_incr("mgr.wal_append_failed");
            }
        }
        self.stats.wal_appends += 1;
        ctx.metric_incr("mgr.wal_appends");
        self.wal_since_snapshot += 1;
        self.unlogged.insert(id, UnloggedOp { op, ack_to });
        self.flush_wal(ctx);
    }

    /// Attempts the WAL sync barrier. On success every op waiting on it
    /// commits (acks go out, quorum counts advance); on failure all of
    /// them stay withheld — peers' persistent retransmission and the
    /// retry tick drive further attempts.
    fn flush_wal(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if self.unlogged.is_empty() {
            return;
        }
        let Some(storage) = self.storage.as_mut() else { return };
        if storage.sync().is_err() {
            ctx.metric_incr("mgr.wal_sync_failed");
            return;
        }
        let committed: Vec<(OpId, UnloggedOp)> =
            std::mem::take(&mut self.unlogged).into_iter().collect();
        for (id, unlogged) in committed {
            self.op_committed(ctx, id, unlogged.op, unlogged.ack_to);
        }
        self.maybe_snapshot(ctx);
    }

    /// The op is durable (or durability is not modelled): honour its
    /// promise and note the commitment for the durability oracle.
    fn op_committed(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        id: OpId,
        op: AclOp,
        ack_to: Option<NodeId>,
    ) {
        if self.storage.is_some() {
            // Everything acked from here on must survive any crash; the
            // oracle's durability invariant checks recoveries against
            // these notes.
            ctx.trace(format!(
                "audit=durable app={} user={} right={} kind={} seq={} origin={}",
                op.app().0,
                op.user().0,
                op.right(),
                if op.is_revoke() { "revoke" } else { "add" },
                id.seq,
                id.origin.index(),
            ));
        }
        match ack_to {
            Some(peer) => ctx.send(peer, ProtoMsg::UpdateAck { id }),
            None => self.note_self_applied(ctx, id),
        }
    }

    /// Counts this manager's own (now durable) copy toward the quorum of
    /// an op it originated. No-op for ops without a pending record.
    fn note_self_applied(&mut self, ctx: &mut Context<'_, ProtoMsg>, id: OpId) {
        {
            let Some(pending) = self.pending.get_mut(&id) else { return };
            if pending.self_durable {
                return;
            }
            pending.self_durable = true;
            pending.applied_count += 1;
        }
        self.finish_quorum_check(ctx, id);
    }

    /// Re-evaluates stability for a pending op after its applied count
    /// changed, reporting `Stable` to the issuer at the quorum and
    /// retiring the record once fully acked and locally durable.
    fn finish_quorum_check(&mut self, ctx: &mut Context<'_, ProtoMsg>, id: OpId) {
        let Some(pending) = self.pending.get_mut(&id) else { return };
        let update_quorum = pending.quorum;
        if !pending.stable && pending.applied_count >= update_quorum {
            pending.stable = true;
            self.stats.quorum_reached += 1;
            ctx.metric_incr("mgr.quorum_reached");
            let elapsed = ctx.local_now().since(pending.started);
            ctx.metric_observe("mgr.time_to_quorum_s", elapsed.as_secs_f64());
            let kind = if pending.op.is_revoke() { "revoke-stable" } else { "grant-stable" };
            ctx.trace(format!(
                "audit={kind} app={} user={} seq={} origin={}",
                pending.op.app().0,
                pending.op.user().0,
                id.seq,
                id.origin.index(),
            ));
            if let Some((issuer, req)) = pending.issuer {
                ctx.send(issuer, ProtoMsg::AdminReply { req, status: AdminStatus::Stable });
            }
        }
        let done = pending.unacked.is_empty() && pending.self_durable;
        if done {
            self.pending.remove(&id);
        }
    }

    /// Writes a snapshot and truncates the WAL once the cadence is due.
    fn maybe_snapshot(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if self.config.snapshot_every == 0
            || self.wal_since_snapshot < self.config.snapshot_every
        {
            return;
        }
        let snapshot = encode_snapshot(&self.snapshot_state());
        let Some(storage) = self.storage.as_mut() else { return };
        if storage.write_snapshot(&snapshot).is_ok() {
            self.wal_since_snapshot = 0;
            self.stats.snapshot_writes += 1;
            ctx.metric_incr("mgr.snapshot_writes");
        }
    }

    /// The durable projection of the manager's state.
    fn snapshot_state(&self) -> SnapshotState {
        SnapshotState {
            lamport: self.lamport,
            applied: self.applied.iter().copied().collect(),
            lww: self
                .lww
                .iter()
                .map(|(&(app, user, right), &(id, op))| (app, user, right, id, op))
                .collect(),
            released: self.released.iter().map(|(&s, &e)| (s, e)).collect(),
        }
    }

    /// Rebuilds state from what storage yielded: bootstrap ACLs, then the
    /// snapshot, then the surviving WAL records. Recovery is a pure
    /// function of the durable state — exactly what a process restart
    /// would see — so any in-memory remnants are discarded first.
    fn restore_from(&mut self, ctx: &mut Context<'_, ProtoMsg>, recovered: Recovered) {
        for spec in &self.config.apps {
            if let Some(state) = self.apps.get_mut(&spec.app) {
                state.acl = spec.initial_acl.clone();
                state.frozen = false;
            }
        }
        self.applied.clear();
        self.lww.clear();
        self.origin_stamps.clear();
        self.unlogged.clear();
        // Shard ownership is re-derived from config plus the durable
        // release markers; acquired-but-volatile ownership is lost (the
        // shard degrades to unavailability, never to unsafe serving).
        self.reset_shards_to_config();
        let mut floor = 0u64;
        if let Some(bytes) = recovered.snapshot.as_deref() {
            if let Some(snap) = decode_snapshot(bytes) {
                floor = floor.max(snap.lamport);
                for id in snap.applied {
                    self.record_applied(id);
                }
                for (_, _, _, id, op) in snap.lww {
                    self.apply_op(&op, id);
                }
                for (shard, epoch) in snap.released {
                    self.note_released(shard, epoch);
                }
            }
        }
        let mut replayed = 0u64;
        for record in &recovered.records {
            match decode_wal_record(record) {
                Some(WalRecord::Op(id, op)) => {
                    self.record_applied(id);
                    self.apply_op(&op, id);
                    replayed += 1;
                }
                Some(WalRecord::ShardRelease { shard, epoch }) => {
                    self.note_released(shard, epoch);
                }
                None => continue,
            }
        }
        // `apply_op` maxes the Lamport clock along the way; the margin
        // guards against OpId reuse when the in-memory counter did not
        // survive (a real process restart).
        self.lamport = self.lamport.max(floor) + LAMPORT_RECOVERY_MARGIN;
        self.wal_since_snapshot = recovered.records.len() as u64;
        self.stats.recovered_from_disk += 1;
        ctx.metric_incr("mgr.recovered_from_disk");
        use std::fmt::Write as _;
        let mut note = format!(
            "audit=recovered mode=disk replayed={replayed} torn={} slots=",
            recovered.torn_records,
        );
        for (i, (&(app, user, right), &(id, _))) in self.lww.iter().enumerate() {
            if i > 0 {
                note.push(',');
            }
            let _ =
                write!(note, "{}:{}:{}:{}:{}", app.0, user.0, right, id.seq, id.origin.index());
        }
        ctx.trace(note);
    }

    /// Replays local stable storage if there is any; returns whether the
    /// manager now holds a durably-recovered state.
    fn recover_from_storage(&mut self, ctx: &mut Context<'_, ProtoMsg>) -> bool {
        let Some(storage) = self.storage.as_mut() else { return false };
        let recovered = storage.recover();
        self.restore_from(ctx, recovered);
        true
    }

    /// Rebuilds the shard table from the deployment config: every
    /// configured shard active, no coordination state. Durable release
    /// markers are re-applied on top by the caller.
    fn reset_shards_to_config(&mut self) {
        self.shards = self
            .config
            .shards
            .iter()
            .map(|s| {
                (
                    s.shard,
                    ShardState {
                        app: s.app,
                        lo: s.lo,
                        hi: s.hi,
                        peers: s.peers.clone(),
                        epoch: 1,
                        phase: ShardPhase::Active,
                    },
                )
            })
            .collect();
        self.coord.clear();
        self.released.clear();
    }

    /// Records a durably-released shard (from a WAL marker or snapshot):
    /// the manager must stay silent for it. The new owner set is not
    /// part of the marker, so admin forwarding is unavailable after a
    /// recovery — admins for the shard are dropped and the agent's
    /// resends reach the new owners through the republished map.
    fn note_released(&mut self, shard: ShardId, epoch: u64) {
        self.released.insert(shard, epoch);
        if let Some(st) = self.shards.get_mut(&shard) {
            st.phase = ShardPhase::Released { epoch, forward_to: None, acked: false };
        }
    }

    /// Routes `(app, user)` to the covering shard's current phase.
    fn shard_route(&self, app: AppId, user: UserId) -> ShardRoute {
        let bucket = user_bucket(user);
        for (&sid, st) in &self.shards {
            if st.covers(app, bucket) {
                return match &st.phase {
                    ShardPhase::Active => ShardRoute::Active(sid),
                    ShardPhase::Frozen(_) => ShardRoute::Frozen(sid),
                    ShardPhase::Released { forward_to, .. } => {
                        ShardRoute::Moved { forward_to: *forward_to }
                    }
                    ShardPhase::Preparing { .. } => ShardRoute::Preparing,
                };
            }
        }
        ShardRoute::None
    }

    /// The update fan-out set and quorum for an op: the owning shard's
    /// manager set in sharded mode (quorum traffic per operation is
    /// independent of the deployment and of other tenants), the whole
    /// deployment otherwise.
    fn update_scope(&self, app: AppId, user: UserId) -> (Vec<NodeId>, usize) {
        if !self.shards.is_empty() {
            let bucket = user_bucket(user);
            if let Some(st) = self.shards.values().find(|s| s.covers(app, bucket)) {
                let deployment = st.peers.len() + 1;
                let c = self
                    .apps
                    .get(&app)
                    .map(|a| a.policy.check_quorum())
                    .unwrap_or(1);
                // `deployment - C + 1` without the panic: an undersized
                // shard cannot satisfy any check quorum (hosts fail
                // closed), so the exact value is moot — use all owners.
                let quorum =
                    if deployment >= c { deployment - c + 1 } else { deployment };
                return (st.peers.clone(), quorum);
            }
        }
        let deployment = self.deployment_size();
        (
            self.config.peers.clone(),
            state_policy_update_quorum(&self.apps, app, deployment),
        )
    }

    /// Arms the handoff retransmission timer (fixed cadence, no RNG, so
    /// handoffs never perturb the retry jitter stream).
    fn arm_handoff(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        if !self.handoff_timer_armed {
            self.handoff_timer_armed = true;
            ctx.set_timer(self.config.retry_interval, TAG_HANDOFF);
        }
    }

    /// Durably appends and fsyncs the shard-release marker. Without
    /// storage the release is immediate (and survives nothing — sharded
    /// deployments are expected to attach storage).
    fn persist_release(&mut self, ctx: &mut Context<'_, ProtoMsg>, shard: ShardId, epoch: u64) -> bool {
        if self.storage.is_none() {
            return true;
        }
        let append_ok = self
            .storage
            .as_mut()
            .map(|s| s.append(&encode_release(shard, epoch)).is_ok())
            .unwrap_or(true);
        if !append_ok {
            ctx.metric_incr("mgr.wal_append_failed");
            return false;
        }
        self.stats.wal_appends += 1;
        ctx.metric_incr("mgr.wal_appends");
        self.wal_since_snapshot += 1;
        let sync_ok = self.storage.as_mut().map(|s| s.sync().is_ok()).unwrap_or(true);
        if !sync_ok {
            ctx.metric_incr("mgr.wal_sync_failed");
            return false;
        }
        // The barrier also made any ops waiting on it durable.
        self.flush_wal(ctx);
        true
    }

    /// Starts or joins a shard handoff. The signed next-version record
    /// is the capability: sources freeze and push their state to the
    /// targets, targets start preparing.
    #[allow(clippy::too_many_arguments)]
    fn on_shard_handoff(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
        record: NsRecord,
        targets: Vec<NodeId>,
        publish_to: Vec<NodeId>,
    ) {
        if from != NodeId::ENV && !self.config.peers.contains(&from) {
            ctx.metric_incr("mgr.msg_from_non_peer");
            return;
        }
        if let Some(trust) = &self.config.ns_trust {
            if !record.verify(trust, crate::scenario::NS_WRITER) {
                ctx.metric_incr("mgr.handoff_bad_record");
                return;
            }
        }
        let me = ctx.id();
        if targets.contains(&me) {
            // Target role: note the incoming shard and wait for the
            // sources' transfers.
            let Some(entry) = record
                .shards
                .as_deref()
                .and_then(|es| es.iter().find(|e| e.shard == shard))
                .cloned()
            else {
                ctx.metric_incr("mgr.handoff_bad_record");
                return;
            };
            if self.shards.get(&shard).is_some_and(|st| st.epoch >= epoch)
                || self.released.contains_key(&shard)
            {
                return; // duplicate kickoff
            }
            self.shards.insert(
                shard,
                ShardState {
                    app: record.app,
                    lo: entry.lo,
                    hi: entry.hi,
                    peers: entry.managers.iter().copied().filter(|&m| m != me).collect(),
                    epoch,
                    phase: ShardPhase::Preparing { received: BTreeSet::new() },
                },
            );
            ctx.metric_incr("mgr.handoff_target_started");
            self.arm_handoff(ctx);
            return;
        }
        // Source role: only a currently-active owner freezes.
        let (app, lo, hi, peers) = match self.shards.get(&shard) {
            Some(st) if matches!(st.phase, ShardPhase::Active) && epoch > st.epoch => {
                (st.app, st.lo, st.hi, st.peers.clone())
            }
            _ => return,
        };
        let ops: Vec<(OpId, AclOp)> = self
            .lww
            .iter()
            .filter(|&(&(a, u, _), _)| {
                a == app && {
                    let b = user_bucket(u);
                    b >= lo && b <= hi
                }
            })
            .map(|(_, &(id, op))| (id, op))
            .collect();
        let digest = transfer_digest(&ops);
        // The I9 source-side note: what this source claims to have
        // handed over. The target's install note must match it.
        ctx.trace(format!(
            "audit=shard-handoff shard={} epoch={epoch} src={} digest={digest} count={}",
            shard.0,
            me.index(),
            ops.len()
        ));
        ctx.metric_incr("mgr.handoff_source_started");
        for t in &targets {
            ctx.send(
                *t,
                ProtoMsg::ShardTransfer { shard, epoch, app, ops: ops.clone(), digest },
            );
        }
        let primary = peers.iter().copied().chain([me]).min().unwrap_or(me);
        if primary == me {
            self.coord.insert(
                shard,
                HandoffCoord {
                    epoch,
                    record: record.clone(),
                    publish_to: publish_to.clone(),
                    awaiting_release: peers.iter().copied().chain([me]).collect(),
                    awaiting_activate: targets.iter().copied().collect(),
                },
            );
        }
        if let Some(st) = self.shards.get_mut(&shard) {
            st.phase = ShardPhase::Frozen(HandoffSource {
                epoch,
                record,
                targets: targets.clone(),
                publish_to,
                unacked_transfer: targets.into_iter().collect(),
                ops,
                digest,
            });
        }
        self.arm_handoff(ctx);
    }

    /// Target side: merge a source's transfer, log it, and ack.
    fn on_shard_transfer(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
        app: AppId,
        mut ops: Vec<(OpId, AclOp)>,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        let fresh = {
            let Some(st) = self.shards.get_mut(&shard) else { return };
            if st.epoch != epoch || st.app != app {
                return;
            }
            match &mut st.phase {
                ShardPhase::Preparing { received } => received.insert(from),
                // A late resend after activation: just re-ack.
                ShardPhase::Active => false,
                _ => return,
            }
        };
        if fresh {
            if self.drop_handoff_tail {
                ops.pop();
            }
            let digest = transfer_digest(&ops);
            // The I9 target-side note: what was actually installed.
            ctx.trace(format!(
                "audit=shard-install shard={} epoch={epoch} src={} digest={digest} count={}",
                shard.0,
                from.index(),
                ops.len()
            ));
            ctx.metric_incr("mgr.shard_installs");
            for (id, op) in ops {
                if !self.applied.contains(&id) {
                    self.record_applied(id);
                    self.apply_op(&op, id);
                    self.log_op(ctx, id, op, None);
                }
            }
        }
        ctx.send(from, ProtoMsg::ShardTransferAck { shard, epoch });
    }

    /// Source side: a target acked the transfer; release once all have.
    fn on_shard_transfer_ack(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        let ready = {
            let Some(st) = self.shards.get_mut(&shard) else { return };
            let ShardPhase::Frozen(hs) = &mut st.phase else { return };
            if hs.epoch != epoch {
                return;
            }
            hs.unacked_transfer.remove(&from);
            hs.unacked_transfer.is_empty()
        };
        if ready {
            self.maybe_release_source(ctx, shard);
        }
    }

    /// Every target holds this source's state: durably renounce the
    /// shard and report to the handoff primary.
    fn maybe_release_source(&mut self, ctx: &mut Context<'_, ProtoMsg>, shard: ShardId) {
        let me = ctx.id();
        let (epoch, forward_to, peers) = {
            let Some(st) = self.shards.get(&shard) else { return };
            let ShardPhase::Frozen(hs) = &st.phase else { return };
            if !hs.unacked_transfer.is_empty() {
                return;
            }
            (hs.epoch, hs.targets.first().copied(), st.peers.clone())
        };
        if !self.persist_release(ctx, shard, epoch) {
            return; // the handoff tick retries the fsync
        }
        self.released.insert(shard, epoch);
        self.stats.shards_released += 1;
        ctx.metric_incr("mgr.shard_released");
        // Pending updates for the shard can never complete here; their
        // effects ride inside the transfer payload.
        self.cancel_pending_for_shard(shard);
        let primary = peers.iter().copied().chain([me]).min().unwrap_or(me);
        let acked = primary == me;
        if let Some(st) = self.shards.get_mut(&shard) {
            st.phase = ShardPhase::Released { epoch, forward_to, acked };
        }
        if acked {
            if let Some(c) = self.coord.get_mut(&shard) {
                c.awaiting_release.remove(&me);
            }
            self.maybe_activate(ctx, shard);
        } else {
            ctx.send(primary, ProtoMsg::ShardReleased { shard, epoch });
        }
        self.arm_handoff(ctx);
    }

    /// Drops pending updates whose slot lives in the released shard.
    fn cancel_pending_for_shard(&mut self, shard: ShardId) {
        let Some(st) = self.shards.get(&shard) else { return };
        let (app, lo, hi) = (st.app, st.lo, st.hi);
        self.pending.retain(|_, p| {
            let b = user_bucket(p.op.user());
            !(p.op.app() == app && b >= lo && b <= hi)
        });
    }

    /// Primary: a source reports its durable release.
    fn on_shard_released(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        let Some(c) = self.coord.get_mut(&shard) else { return };
        if c.epoch != epoch {
            return;
        }
        c.awaiting_release.remove(&from);
        ctx.send(from, ProtoMsg::ShardReleasedAck { shard, epoch });
        self.maybe_activate(ctx, shard);
    }

    /// Source: the primary saw our release; stop retransmitting it.
    fn on_shard_released_ack(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        if let Some(st) = self.shards.get_mut(&shard) {
            if let ShardPhase::Released { epoch: e, acked, .. } = &mut st.phase {
                if *e == epoch {
                    *acked = true;
                }
            }
        }
    }

    /// Primary: once every source has durably released, activate the
    /// targets and publish the new map. Re-sent from the handoff tick
    /// until every target acknowledges (replicas dedupe the publish).
    fn maybe_activate(&mut self, ctx: &mut Context<'_, ProtoMsg>, shard: ShardId) {
        let Some(c) = self.coord.get(&shard) else { return };
        if !c.awaiting_release.is_empty() {
            return;
        }
        if c.awaiting_activate.is_empty() {
            self.coord.remove(&shard);
            ctx.metric_incr("mgr.handoff_complete");
            return;
        }
        let epoch = c.epoch;
        let record = c.record.clone();
        let targets: Vec<NodeId> = c.awaiting_activate.iter().copied().collect();
        let publish_to = c.publish_to.clone();
        for t in targets {
            ctx.send(t, ProtoMsg::ShardActivate { shard, epoch });
        }
        for r in publish_to {
            ctx.send(r, ProtoMsg::NsPublish { record: Box::new(record.clone()) });
        }
    }

    /// Target: every source is silent — start serving the shard.
    fn on_shard_activate(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        let Some(st) = self.shards.get_mut(&shard) else { return };
        if st.epoch != epoch {
            return;
        }
        match st.phase {
            ShardPhase::Preparing { .. } => {
                st.phase = ShardPhase::Active;
                self.stats.shards_acquired += 1;
                ctx.metric_incr("mgr.shard_acquired");
                ctx.send(from, ProtoMsg::ShardActivateAck { shard, epoch });
            }
            ShardPhase::Active => ctx.send(from, ProtoMsg::ShardActivateAck { shard, epoch }),
            _ => {}
        }
    }

    /// Primary: a target confirmed activation.
    fn on_shard_activate_ack(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        shard: ShardId,
        epoch: u64,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        let done = {
            let Some(c) = self.coord.get_mut(&shard) else { return };
            if c.epoch != epoch {
                return;
            }
            c.awaiting_activate.remove(&from);
            c.awaiting_release.is_empty() && c.awaiting_activate.is_empty()
        };
        if done {
            self.coord.remove(&shard);
            ctx.metric_incr("mgr.handoff_complete");
        }
    }

    /// Retransmission tick for all in-flight handoff roles.
    fn on_handoff_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        self.handoff_timer_armed = false;
        let me = ctx.id();
        let mut busy = false;
        let mut release_ready: Vec<ShardId> = Vec::new();
        let shard_ids: Vec<ShardId> = self.shards.keys().copied().collect();
        for sid in &shard_ids {
            let Some(st) = self.shards.get(sid) else { continue };
            match &st.phase {
                ShardPhase::Frozen(hs) => {
                    busy = true;
                    // Re-seed participants a partition may have cut off
                    // from the kickoff, then push the transfer again.
                    let kickoff = ProtoMsg::ShardHandoff {
                        shard: *sid,
                        epoch: hs.epoch,
                        record: Box::new(hs.record.clone()),
                        targets: hs.targets.clone(),
                        publish_to: hs.publish_to.clone(),
                    };
                    for p in st.peers.iter().chain(hs.targets.iter()) {
                        ctx.send(*p, kickoff.clone());
                    }
                    for t in &hs.unacked_transfer {
                        ctx.metric_incr("mgr.shard_transfer_resent");
                        ctx.send(
                            *t,
                            ProtoMsg::ShardTransfer {
                                shard: *sid,
                                epoch: hs.epoch,
                                app: st.app,
                                ops: hs.ops.clone(),
                                digest: hs.digest,
                            },
                        );
                    }
                    if hs.unacked_transfer.is_empty() {
                        // A failed release fsync left us frozen: retry.
                        release_ready.push(*sid);
                    }
                }
                ShardPhase::Released { epoch, acked: false, .. } => {
                    let primary = st.peers.iter().copied().chain([me]).min().unwrap_or(me);
                    if primary != me {
                        busy = true;
                        ctx.send(primary, ProtoMsg::ShardReleased { shard: *sid, epoch: *epoch });
                    }
                }
                _ => {}
            }
        }
        for sid in release_ready {
            self.maybe_release_source(ctx, sid);
        }
        let coord_ids: Vec<ShardId> = self.coord.keys().copied().collect();
        for sid in coord_ids {
            busy = true;
            self.maybe_activate(ctx, sid);
        }
        if busy {
            self.arm_handoff(ctx);
        }
    }

    /// Starts forwarding a revocation to every host recorded as caching
    /// the user's right, and keeps retransmitting until each cached entry
    /// would have expired on its own.
    fn forward_revocation(&mut self, ctx: &mut Context<'_, ProtoMsg>, app: AppId, user: UserId) {
        let Some(targets) = self.grant_table.remove(&(app, user)) else { return };
        if targets.is_empty() {
            return;
        }
        for host in targets.keys() {
            ctx.metric_incr("mgr.revoke_notices");
            let mac =
                self.channel.as_ref().map(|k| k.tag_revoke_notice(ctx.id(), *host, app, user));
            ctx.send(*host, ProtoMsg::RevokeNotice { app, user, mac });
        }
        self.pending_revokes.push(PendingRevoke { app, user, targets });
        self.retry_round = 0;
    }

    fn on_admin(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        op: AclOp,
        req: ReqId,
        issuer: UserId,
        signature: Option<rsa::Signature>,
    ) {
        let reject = |ctx: &mut Context<'_, ProtoMsg>, reason: RejectReason| {
            ctx.metric_incr("mgr.admin_rejected");
            ctx.send(
                from,
                ProtoMsg::AdminReply { req, status: AdminStatus::Rejected { reason } },
            );
        };
        if self.recovering {
            reject(ctx, RejectReason::Recovering);
            return;
        }
        if !self.shards.is_empty() {
            match self.shard_route(op.app(), op.user()) {
                ShardRoute::Active(sid) => {
                    ctx.metric_incr(shard_metric(
                        &SHARD_UPDATE_METRICS,
                        "shard.other.updates",
                        sid,
                    ));
                }
                ShardRoute::Moved { forward_to: Some(owner) } => {
                    // Relay to the new owner; its reply matches the
                    // agent's request id, so it answers `from` directly.
                    ctx.metric_incr("mgr.admin_forwarded");
                    ctx.send(
                        owner,
                        ProtoMsg::AdminForward { origin: from, op, req, issuer, signature },
                    );
                    return;
                }
                ShardRoute::Moved { forward_to: None }
                | ShardRoute::Frozen(_)
                | ShardRoute::Preparing => {
                    // Rejection is terminal at the agent; dropping lets
                    // its resend land once the new map is in effect.
                    ctx.metric_incr("mgr.admin_frozen_shard");
                    return;
                }
                ShardRoute::None => {
                    ctx.metric_incr("mgr.unknown_shard");
                    reject(ctx, RejectReason::UnknownShard);
                    return;
                }
            }
        }
        let Some(state) = self.apps.get(&op.app()) else {
            reject(ctx, RejectReason::UnknownApp);
            return;
        };
        if let Some(registry) = &self.config.registry {
            let ok = match signature {
                Some(sig) => match registry.public_key(issuer.into()) {
                    Some(pk) => rsa::verify(&pk, &admin_signing_bytes(issuer, &op), &sig),
                    None => false,
                },
                None => false,
            };
            if !ok {
                reject(ctx, RejectReason::BadSignature);
                return;
            }
        }
        if self.config.enforce_manage_right && !state.acl.has(issuer, Right::Manage) {
            reject(ctx, RejectReason::NotAuthorized);
            return;
        }

        // Apply locally and start dissemination.
        self.stats.ops_originated += 1;
        ctx.metric_incr("mgr.ops_originated");
        self.lamport += 1;
        let id = OpId { origin: ctx.id(), seq: self.lamport };
        self.apply_op(&op, id);
        self.record_applied(id);
        // Origin apply note: the oracle reconstructs the ACL's
        // last-writer-wins order from these (seq, origin) stamps, which
        // survives admin resends reordering against concurrent ops.
        ctx.trace(format!(
            "audit=apply kind={} app={} user={} seq={} origin={}",
            if op.is_revoke() { "revoke" } else { "add" },
            op.app().0,
            op.user().0,
            id.seq,
            id.origin.index(),
        ));
        ctx.send(from, ProtoMsg::AdminReply { req, status: AdminStatus::Applied });

        // The origin counts toward the quorum only once its own copy is
        // durable (`log_op` → `note_self_applied`); without storage that
        // happens before this call returns.
        let (fan_peers, quorum) = self.update_scope(op.app(), op.user());
        self.pending.insert(
            id,
            PendingUpdate {
                op,
                unacked: fan_peers.iter().copied().collect(),
                applied_count: 0,
                stable: false,
                self_durable: false,
                quorum,
                issuer: Some((from, req)),
                started: ctx.local_now(),
            },
        );
        for peer in &fan_peers {
            ctx.metric_incr("mgr.updates_sent");
            ctx.send(*peer, ProtoMsg::Update { id, op });
        }
        self.log_op(ctx, id, op, None);
        if op.is_revoke() {
            self.forward_revocation(ctx, op.app(), op.user());
        }
        // Fresh work re-probes at the base cadence even if earlier
        // rounds had backed off.
        self.retry_round = 0;
    }

    /// Inter-manager messages are only honoured from configured peers:
    /// §2.1 trusts managers but nobody else, so a forged `Update` from a
    /// compromised host must not touch the ACL.
    fn is_from_peer(&self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId) -> bool {
        if self.config.peers.contains(&from) {
            true
        } else {
            ctx.metric_incr("mgr.msg_from_non_peer");
            false
        }
    }

    fn on_update(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, id: OpId, op: AclOp) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if self.recovering {
            // Do not apply or ack while our own state is stale; the
            // origin's persistent retransmission will retry after sync.
            ctx.metric_incr("mgr.update_deferred_recovering");
            return;
        }
        if !self.applied.contains(&id) {
            self.record_applied(id);
            self.apply_op(&op, id);
            self.stats.peer_updates_applied += 1;
            ctx.metric_incr("mgr.peer_updates_applied");
            if op.is_revoke() {
                self.forward_revocation(ctx, op.app(), op.user());
            }
            // Log-before-ack: the ack is a quorum promise, so it is
            // withheld until the record survives a sync barrier.
            self.log_op(ctx, id, op, Some(from));
        } else if self.unlogged.contains_key(&id) {
            // A retransmission of an op still awaiting its barrier:
            // retry the barrier rather than acking prematurely.
            self.flush_wal(ctx);
        } else {
            ctx.send(from, ProtoMsg::UpdateAck { id });
        }
    }

    fn on_update_ack(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, id: OpId) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        {
            let Some(pending) = self.pending.get_mut(&id) else { return };
            if !pending.unacked.remove(&from) {
                return; // duplicate ack
            }
            pending.applied_count += 1;
        }
        self.finish_quorum_check(ctx, id);
    }

    fn on_query(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        app: AppId,
        user: UserId,
        req: ReqId,
    ) {
        self.stats.queries += 1;
        ctx.metric_incr("mgr.queries");
        if self.recovering {
            // §3.4: do not answer from stale state — but tell the host,
            // so it can retry another manager instead of timing out.
            self.stats.recovering_drops += 1;
            ctx.metric_incr("mgr.recovering_drops");
            self.send_query_reply(
                ctx,
                from,
                req,
                app,
                user,
                QueryVerdict::Unavailable { reason: RejectReason::Recovering },
            );
            return;
        }
        if !self.shards.is_empty() {
            match self.shard_route(app, user) {
                ShardRoute::Active(sid) | ShardRoute::Frozen(sid) => {
                    ctx.metric_incr(shard_metric(
                        &SHARD_QUERY_METRICS,
                        "shard.other.queries",
                        sid,
                    ));
                }
                ShardRoute::Moved { .. } => {
                    ctx.metric_incr("mgr.shard_moved");
                    self.send_query_reply(
                        ctx,
                        from,
                        req,
                        app,
                        user,
                        QueryVerdict::Unavailable { reason: RejectReason::ShardMoved },
                    );
                    return;
                }
                ShardRoute::Preparing => {
                    self.send_query_reply(
                        ctx,
                        from,
                        req,
                        app,
                        user,
                        QueryVerdict::Unavailable { reason: RejectReason::Recovering },
                    );
                    return;
                }
                ShardRoute::None => {
                    ctx.metric_incr("mgr.unknown_shard");
                    self.send_query_reply(
                        ctx,
                        from,
                        req,
                        app,
                        user,
                        QueryVerdict::Unavailable { reason: RejectReason::UnknownShard },
                    );
                    return;
                }
            }
        }
        let Some(state) = self.apps.get(&app) else {
            self.send_query_reply(ctx, from, req, app, user, QueryVerdict::Deny);
            return;
        };
        if state.frozen {
            // §3.3: "no responses are sent to application hosts until all
            // managers are accessible again".
            self.stats.frozen_drops += 1;
            ctx.metric_incr("mgr.frozen_drops");
            return;
        }
        if state.acl.has(user, Right::Use) {
            let te = state.policy.expiry_budget();
            let verdict = QueryVerdict::Grant { te };
            self.stats.grants += 1;
            ctx.metric_incr("mgr.grants");
            ctx.trace(format!(
                "audit=grant app={} user={} te={}",
                app.0,
                user.0,
                te.as_nanos()
            ));
            // Remember which host caches this right, and until when the
            // entry can matter. The manager measures the bound on its own
            // clock; Te is an upper bound on the entry's real lifetime
            // and manager clocks run no faster than real time, so
            // `local_now + Te` is safe.
            let deadline = ctx.local_now().plus(state.policy.revocation_bound());
            self.grant_table.entry((app, user)).or_default().insert(from, deadline);
            self.send_query_reply(ctx, from, req, app, user, verdict);
        } else {
            self.stats.denies += 1;
            ctx.metric_incr("mgr.denies");
            self.send_query_reply(ctx, from, req, app, user, QueryVerdict::Deny);
        }
    }

    fn send_query_reply(
        &self,
        ctx: &mut Context<'_, ProtoMsg>,
        host: NodeId,
        req: ReqId,
        app: AppId,
        user: UserId,
        verdict: QueryVerdict,
    ) {
        let mac = self
            .channel
            .as_ref()
            .map(|k| k.tag_query_reply(ctx.id(), host, req, app, user, &verdict));
        ctx.send(host, ProtoMsg::QueryReply { req, app, user, verdict, mac });
    }

    fn on_heartbeat_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        for peer in &self.config.peers {
            ctx.send(*peer, ProtoMsg::Heartbeat);
        }
        // Evaluate the freeze predicate per app.
        let now = ctx.local_now();
        for (app, state) in self.apps.iter_mut() {
            let Some(freeze) = state.policy.freeze() else { continue };
            // Scale Ti by the rate bound: a clock running at rate >= b
            // measuring b*Ti local units has waited at most Ti real time.
            let ti_local = freeze.ti.mul_f64(state.policy.clock_rate_bound());
            let was_frozen = state.frozen;
            state.frozen = self.config.peers.iter().any(|p| {
                match self.last_heard.get(p) {
                    Some(&heard) => now.since(heard) > ti_local,
                    None => true,
                }
            });
            if state.frozen && !was_frozen {
                ctx.metric_incr("mgr.freeze_transitions");
                ctx.trace(format!("audit=freeze app={}", app.0));
            } else if !state.frozen && was_frozen {
                ctx.trace(format!("audit=thaw app={}", app.0));
            }
        }
        ctx.set_timer(self.heartbeat_period(), TAG_HEARTBEAT);
    }

    fn on_retry_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        // A failed sync barrier leaves committed-in-memory ops withheld;
        // every retry tick re-attempts the barrier first so acks are not
        // delayed past the next successful fsync.
        self.flush_wal(ctx);
        let mut resent = 0u64;
        for (id, pending) in &self.pending {
            for peer in &pending.unacked {
                ctx.metric_incr("mgr.updates_resent");
                ctx.send(*peer, ProtoMsg::Update { id: *id, op: pending.op });
                resent += 1;
            }
        }
        // Revocation notices: resend until the cached right would have
        // expired anyway (§3.4).
        let now = ctx.local_now();
        for pr in &mut self.pending_revokes {
            pr.targets.retain(|_, deadline| now < *deadline);
            for host in pr.targets.keys() {
                ctx.metric_incr("mgr.revoke_notices_resent");
                let mac = self
                    .channel
                    .as_ref()
                    .map(|k| k.tag_revoke_notice(ctx.id(), *host, pr.app, pr.user));
                ctx.send(*host, ProtoMsg::RevokeNotice { app: pr.app, user: pr.user, mac });
                resent += 1;
            }
        }
        self.pending_revokes.retain(|pr| !pr.targets.is_empty());
        // Graceful degradation: rounds that keep finding unacknowledged
        // work (a partition, a dead peer) back off toward `retry_cap`;
        // an idle round snaps the cadence back to the base interval.
        self.retry_round = if resent == 0 { 0 } else { self.retry_round.saturating_add(1) };
        self.arm_retry(ctx);
    }

    fn on_grant_sweep_tick(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        self.grant_table.retain(|_, hosts| {
            hosts.retain(|_, deadline| now < *deadline);
            !hosts.is_empty()
        });
        ctx.set_timer(self.config.grant_sweep_interval, TAG_GSWEEP);
    }

    fn send_sync_request(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let stamps: Vec<(NodeId, u64)> =
            self.origin_stamps.iter().map(|(&n, &s)| (n, s)).collect();
        let slots: Vec<(AppId, UserId, Right, OpId)> = self
            .lww
            .iter()
            .map(|(&(app, user, right), &(id, _))| (app, user, right, id))
            .collect();
        for peer in &self.config.peers {
            ctx.send(
                *peer,
                ProtoMsg::SyncRequest { stamps: stamps.clone(), slots: slots.clone() },
            );
        }
        let delay = self.config.retry_backoff().delay(self.sync_round, ctx.rng());
        self.sync_round = self.sync_round.saturating_add(1);
        ctx.set_timer(delay, TAG_SYNC);
    }

    fn on_sync_request(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        stamps: Vec<(NodeId, u64)>,
        slots: Vec<(AppId, UserId, Right, OpId)>,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if self.recovering {
            return;
        }
        self.stats.syncs_served += 1;
        ctx.metric_incr("mgr.syncs_served");
        let their_stamps: BTreeMap<NodeId, u64> = stamps.into_iter().collect();
        let their_slots: BTreeMap<(AppId, UserId, Right), OpId> = slots
            .into_iter()
            .map(|(app, user, right, id)| ((app, user, right), id))
            .collect();
        let mut ops = Vec::new();
        for (slot, &(id, op)) in &self.lww {
            let behind = match their_slots.get(slot) {
                Some(mark) => id > *mark,
                None => true,
            };
            if behind {
                // Slot marks — not stamps — are the source of truth: a
                // stamp can cover a seq whose op the requester never
                // durably held (gaps after an origin crash). Count the
                // resends the stamps alone would have skipped.
                if their_stamps.get(&id.origin).is_some_and(|&s| s >= id.seq) {
                    ctx.metric_incr("mgr.sync_gap_resends");
                }
                ops.push((id, op));
            }
        }
        let stamps: Vec<(NodeId, u64)> =
            self.origin_stamps.iter().map(|(&n, &s)| (n, s)).collect();
        ctx.send(from, ProtoMsg::SyncResponse { ops, stamps });
    }

    fn on_sync_response(
        &mut self,
        ctx: &mut Context<'_, ProtoMsg>,
        from: NodeId,
        ops: Vec<(OpId, AclOp)>,
        stamps: Vec<(NodeId, u64)>,
    ) {
        if !self.is_from_peer(ctx, from) {
            return;
        }
        self.note_peer(from, ctx.local_now());
        if !self.recovering && !self.delta_syncing {
            return;
        }
        let was_cold = self.recovering;
        if was_cold {
            // Sync-only recovery (no storage): whatever ACL survived in
            // memory is stale and untrusted. Reset to bootstrap so the
            // result is exactly bootstrap + every winner the peer knows.
            for spec in &self.config.apps {
                if let Some(state) = self.apps.get_mut(&spec.app) {
                    state.acl = spec.initial_acl.clone();
                }
            }
            self.lww.clear();
            self.applied.clear();
            self.origin_stamps.clear();
        }
        let mut merged = 0u64;
        for (id, op) in ops {
            if self.applied.contains(&id) {
                continue;
            }
            self.record_applied(id);
            self.apply_op(&op, id);
            merged += 1;
            // Merged winners become durable too — otherwise a crash right
            // after the delta sync would silently forget them again.
            self.log_op(ctx, id, op, None);
        }
        // A peer's stamps describe what *it* has applied; ours must only
        // ever reflect what we applied. Just note any remaining lag.
        let behind = stamps
            .iter()
            .any(|(n, s)| self.origin_stamps.get(n).is_none_or(|mine| mine < s));
        if behind {
            ctx.metric_incr("mgr.sync_stamps_behind");
        }
        self.recovering = false;
        self.delta_syncing = false;
        self.sync_round = 0;
        if was_cold {
            ctx.metric_incr("mgr.recovered_via_sync");
            ctx.trace(format!("audit=recovered mode=sync merged={merged}"));
        } else {
            ctx.metric_incr("mgr.delta_sync_complete");
        }
    }
}

/// The update quorum for `app` given the deployment size, falling back to
/// a majority-free `1` when the app is unknown (cannot happen for ops
/// that passed validation).
fn state_policy_update_quorum(
    apps: &BTreeMap<AppId, ManagedApp>,
    app: AppId,
    deployment: usize,
) -> usize {
    apps.get(&app).map(|s| s.policy.update_quorum(deployment)).unwrap_or(1)
}

impl Node for ManagerNode {
    type Msg = ProtoMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        // Index loop: iterating `&self.config.peers` would hold a borrow
        // across the `last_heard` insert.
        for i in 0..self.config.peers.len() {
            let peer = self.config.peers[i];
            self.last_heard.insert(peer, now);
        }
        self.arm_periodic(ctx);
        // A process restart hands us storage that already holds state:
        // replay it before serving, then delta-sync for freshness. A
        // fresh deployment's storage is empty and this is a no-op.
        if let Some(storage) = self.storage.as_mut() {
            let recovered = storage.recover();
            if recovered.snapshot.is_some() || !recovered.records.is_empty() {
                self.restore_from(ctx, recovered);
                if !self.config.peers.is_empty() {
                    self.delta_syncing = true;
                    self.send_sync_request(ctx);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, ProtoMsg>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Admin { op, req, issuer, signature } => {
                self.on_admin(ctx, from, op, req, issuer, signature);
            }
            ProtoMsg::Update { id, op } => self.on_update(ctx, from, id, op),
            ProtoMsg::UpdateAck { id } => self.on_update_ack(ctx, from, id),
            ProtoMsg::Query { app, user, req } => self.on_query(ctx, from, app, user, req),
            ProtoMsg::Heartbeat => {
                if self.is_from_peer(ctx, from) {
                    self.note_peer(from, ctx.local_now());
                }
            }
            ProtoMsg::SyncRequest { stamps, slots } => {
                self.on_sync_request(ctx, from, stamps, slots);
            }
            ProtoMsg::SyncResponse { ops, stamps } => {
                self.on_sync_response(ctx, from, ops, stamps);
            }
            ProtoMsg::ShardHandoff { shard, epoch, record, targets, publish_to } => {
                self.on_shard_handoff(ctx, from, shard, epoch, *record, targets, publish_to);
            }
            ProtoMsg::ShardTransfer { shard, epoch, app, ops, digest: _ } => {
                self.on_shard_transfer(ctx, from, shard, epoch, app, ops);
            }
            ProtoMsg::ShardTransferAck { shard, epoch } => {
                self.on_shard_transfer_ack(ctx, from, shard, epoch);
            }
            ProtoMsg::ShardReleased { shard, epoch } => {
                self.on_shard_released(ctx, from, shard, epoch);
            }
            ProtoMsg::ShardReleasedAck { shard, epoch } => {
                self.on_shard_released_ack(ctx, from, shard, epoch);
            }
            ProtoMsg::ShardActivate { shard, epoch } => {
                self.on_shard_activate(ctx, from, shard, epoch);
            }
            ProtoMsg::ShardActivateAck { shard, epoch } => {
                self.on_shard_activate_ack(ctx, from, shard, epoch);
            }
            ProtoMsg::AdminForward { origin, op, req, issuer, signature } => {
                if self.is_from_peer(ctx, from) {
                    self.on_admin(ctx, origin, op, req, issuer, signature);
                }
            }
            _ => {
                ctx.metric_incr("mgr.unexpected_msg");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, ProtoMsg>, tag: u64) {
        match tag {
            TAG_HEARTBEAT => self.on_heartbeat_tick(ctx),
            TAG_RETRY => self.on_retry_tick(ctx),
            TAG_GSWEEP => self.on_grant_sweep_tick(ctx),
            TAG_SYNC if self.recovering || self.delta_syncing => {
                self.send_sync_request(ctx);
            }
            TAG_HANDOFF => self.on_handoff_tick(ctx),
            _ => {}
        }
    }

    fn on_crash(&mut self) {
        // Crash model (§2.1): managers are crash-only. All volatile
        // coordination state is lost; storage drops whatever was not yet
        // fsynced (and may tear the tail record). The Lamport counter is
        // modelled as persisted in-memory, so post-crash operations never
        // reuse an OpId; disk recovery additionally re-derives a floor.
        if let Some(storage) = self.storage.as_mut() {
            storage.crash();
        }
        self.pending.clear();
        self.pending_revokes.clear();
        self.grant_table.clear();
        self.last_heard.clear();
        self.applied.clear();
        self.lww.clear();
        self.origin_stamps.clear();
        self.unlogged.clear();
        self.retry_round = 0;
        self.sync_round = 0;
        self.delta_syncing = false;
        // Volatile handoff coordination is lost with everything else;
        // durable release markers are re-applied during recovery, and a
        // shard acquired-but-unfsynced degrades to unavailability (the
        // recovered manager answers UnknownShard until re-handed-off),
        // which is fail-closed and safe.
        self.reset_shards_to_config();
        self.handoff_timer_armed = false;
    }

    fn on_recover(&mut self, ctx: &mut Context<'_, ProtoMsg>) {
        let now = ctx.local_now();
        for i in 0..self.config.peers.len() {
            let peer = self.config.peers[i];
            self.last_heard.insert(peer, now);
        }
        self.arm_periodic(ctx);
        self.sync_round = 0;
        if self.recover_from_storage(ctx) {
            // Everything this manager ever acked was fsynced before the
            // ack went out, so local replay alone already upholds quorum
            // intersection: serve immediately, and run a *delta* peer
            // sync purely for freshness. (This also avoids the deadlock
            // where a whole-cluster restart leaves every manager waiting
            // for a non-recovering peer.)
            self.recovering = false;
            if !self.config.peers.is_empty() {
                self.delta_syncing = true;
                self.send_sync_request(ctx);
            }
            // A durably-released shard may still owe its ShardReleased
            // to the handoff primary; the tick retransmits it.
            let owes_release = self.shards.values().any(|st| {
                matches!(st.phase, ShardPhase::Released { acked: false, .. })
            });
            if owes_release {
                self.arm_handoff(ctx);
            }
        } else if self.config.peers.is_empty() {
            self.recovering = false;
        } else {
            self.recovering = true;
            self.send_sync_request(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::ShardEntry;
    use wanacl_sim::node::Effect;
    use wanacl_sim::rng::SimRng;
    use wanacl_sim::storage::{DiskFaultModel, SimStorage};

    struct Harness {
        rng: SimRng,
        next_timer: u64,
        now: LocalTime,
        id: NodeId,
    }

    impl Harness {
        fn new(id: usize) -> Self {
            Harness {
                rng: SimRng::seed_from(1),
                next_timer: 0,
                now: LocalTime::ZERO,
                id: NodeId::from_index(id),
            }
        }

        fn deliver(
            &mut self,
            node: &mut ManagerNode,
            from: usize,
            msg: ProtoMsg,
        ) -> Vec<Effect<ProtoMsg>> {
            let mut effects = Vec::new();
            {
                let mut ctx = Context::new(
                    self.id,
                    self.now,
                    &mut effects,
                    &mut self.rng,
                    &mut self.next_timer,
                );
                node.on_message(&mut ctx, NodeId::from_index(from), msg);
            }
            effects
        }
    }

    fn manager_with_peers(id: usize, peers: &[usize]) -> (ManagerNode, Harness) {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        let node = ManagerNode::new(ManagerConfig {
            peers: peers.iter().map(|&p| NodeId::from_index(p)).collect(),
            apps: vec![ManagerApp {
                app: AppId(0),
                policy: Policy::builder(1).build(),
                initial_acl: acl,
            }],
            ..ManagerConfig::default()
        });
        (node, Harness::new(id))
    }

    fn sends(effects: &[Effect<ProtoMsg>]) -> Vec<(NodeId, &ProtoMsg)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn query_grants_known_user_and_records_host() {
        let (mut mgr, mut h) = manager_with_peers(0, &[]);
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(3) },
        );
        let replies = sends(&effects);
        assert!(matches!(
            replies[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Grant { .. }, .. }
        ));
        assert_eq!(mgr.granted_hosts(AppId(0), UserId(1)), 1);
        assert_eq!(mgr.stats().grants, 1);
    }

    #[test]
    fn query_denies_unknown_user() {
        let (mut mgr, mut h) = manager_with_peers(0, &[]);
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(9), req: ReqId(3) },
        );
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Deny, .. }
        ));
        assert_eq!(mgr.granted_hosts(AppId(0), UserId(9)), 0);
    }

    #[test]
    fn admin_op_disseminates_to_all_peers() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let effects = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(5), right: Right::Use },
                req: ReqId(1),
                issuer: UserId(0),
                signature: None,
            },
        );
        let updates: Vec<NodeId> = sends(&effects)
            .into_iter()
            .filter(|(_, m)| matches!(m, ProtoMsg::Update { .. }))
            .map(|(to, _)| to)
            .collect();
        assert_eq!(updates, vec![NodeId::from_index(1), NodeId::from_index(2)]);
        assert!(mgr.acl_has(AppId(0), UserId(5), Right::Use));
        assert_eq!(mgr.pending_updates(), 1);
        // C = 1 -> update quorum 3: not yet stable with only self.
        assert_eq!(mgr.stats().quorum_reached, 0);
    }

    #[test]
    fn acks_complete_the_quorum_and_clear_pending() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let effects = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
                req: ReqId(1),
                issuer: UserId(0),
                signature: None,
            },
        );
        let id = sends(&effects)
            .into_iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Update { id, .. } => Some(*id),
                _ => None,
            })
            .expect("update sent");
        let effects = h.deliver(&mut mgr, 1, ProtoMsg::UpdateAck { id });
        // Quorum (3 of 3 for C=1... M=3, uq = M-C+1 = 3): needs both acks.
        assert!(!sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::AdminReply { status: AdminStatus::Stable, .. })));
        let effects = h.deliver(&mut mgr, 2, ProtoMsg::UpdateAck { id });
        assert!(sends(&effects)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::AdminReply { status: AdminStatus::Stable, .. })));
        assert_eq!(mgr.pending_updates(), 0);
    }

    #[test]
    fn peer_update_applies_once_and_acks_every_time() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let id = OpId { origin: NodeId::from_index(1), seq: 5 };
        let op = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        let e1 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(matches!(sends(&e1)[0].1, ProtoMsg::UpdateAck { .. }));
        assert!(mgr.acl_has(AppId(0), UserId(8), Right::Use));
        assert_eq!(mgr.stats().peer_updates_applied, 1);
        // Duplicate delivery: still acked, not re-applied.
        let e2 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(matches!(sends(&e2)[0].1, ProtoMsg::UpdateAck { .. }));
        assert_eq!(mgr.stats().peer_updates_applied, 1);
    }

    #[test]
    fn lww_keeps_the_newest_write_regardless_of_arrival_order() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1, 2]);
        let newer = OpId { origin: NodeId::from_index(2), seq: 9 };
        let older = OpId { origin: NodeId::from_index(1), seq: 3 };
        h.deliver(
            &mut mgr,
            2,
            ProtoMsg::Update {
                id: newer,
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(!mgr.acl_has(AppId(0), UserId(1), Right::Use));
        // The older concurrent Add arrives late: it must lose.
        h.deliver(
            &mut mgr,
            1,
            ProtoMsg::Update {
                id: older,
                op: AclOp::Add { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(!mgr.acl_has(AppId(0), UserId(1), Right::Use), "older write must not win");
    }

    #[test]
    fn non_peer_update_is_rejected() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let id = OpId { origin: NodeId::from_index(9), seq: 1 };
        let effects = h.deliver(
            &mut mgr,
            9, // not a peer
            ProtoMsg::Update {
                id,
                op: AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use },
            },
        );
        assert!(sends(&effects).is_empty(), "no ack for a non-peer");
        assert!(mgr.acl_has(AppId(0), UserId(1), Right::Use), "ACL untouched");
    }

    fn recover(mgr: &mut ManagerNode, h: &mut Harness) {
        // Simulate the world's recovery callback.
        let mut effects = Vec::new();
        let mut ctx = Context::new(h.id, h.now, &mut effects, &mut h.rng, &mut h.next_timer);
        mgr.on_recover(&mut ctx);
    }

    #[test]
    fn recovering_manager_answers_unavailable_until_synced() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        mgr.on_crash();
        recover(&mut mgr, &mut h);
        assert!(mgr.is_recovering());
        // Queries are answered `Unavailable` (retryable), not denied and
        // not silently dropped.
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(1) },
        );
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply {
                verdict: QueryVerdict::Unavailable { reason: RejectReason::Recovering },
                ..
            }
        ));
        // A delta sync response restores service: state is reset to
        // bootstrap and the peer's winners are applied on top, so the
        // newer revoke below beats the stale bootstrap grant.
        let peer = NodeId::from_index(1);
        let op = AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use };
        h.deliver(
            &mut mgr,
            1,
            ProtoMsg::SyncResponse {
                ops: vec![(OpId { origin: peer, seq: 4 }, op)],
                stamps: vec![(peer, 4)],
            },
        );
        assert!(!mgr.is_recovering());
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(2) },
        );
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Deny, .. }
        ));
    }

    #[test]
    fn sync_request_is_answered_with_only_newer_slot_winners() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let peer = NodeId::from_index(1);
        let id_a = OpId { origin: peer, seq: 3 };
        let op_a = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        let id_b = OpId { origin: peer, seq: 5 };
        let op_b = AclOp::Revoke { app: AppId(0), user: UserId(1), right: Right::Use };
        h.deliver(&mut mgr, 1, ProtoMsg::Update { id: id_a, op: op_a });
        h.deliver(&mut mgr, 1, ProtoMsg::Update { id: id_b, op: op_b });
        // The requester already holds slot a: only the winner it lacks
        // comes back, plus this manager's own high-water marks.
        let effects = h.deliver(
            &mut mgr,
            1,
            ProtoMsg::SyncRequest {
                stamps: vec![(peer, 3)],
                slots: vec![(AppId(0), UserId(8), Right::Use, id_a)],
            },
        );
        match sends(&effects)[0].1 {
            ProtoMsg::SyncResponse { ops, stamps } => {
                assert_eq!(ops, &vec![(id_b, op_b)]);
                assert_eq!(stamps, &vec![(peer, 5)]);
            }
            other => panic!("expected sync response, got {other:?}"),
        }
        assert_eq!(mgr.stats().syncs_served, 1);
    }

    #[test]
    fn update_ack_is_withheld_until_the_wal_sync_succeeds() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        mgr.set_storage(Box::new(SimStorage::with_faults(
            7,
            DiskFaultModel { sync_fail_prob: 1.0, torn_tail_prob: 0.0 },
        )));
        let id = OpId { origin: NodeId::from_index(1), seq: 5 };
        let op = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        let e1 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(
            !sends(&e1).iter().any(|(_, m)| matches!(m, ProtoMsg::UpdateAck { .. })),
            "no ack while the record is not durable"
        );
        assert!(mgr.acl_has(AppId(0), UserId(8), Right::Use), "still applied in memory");
        // The disk heals and the origin's retransmission arrives.
        mgr.storage_mut()
            .unwrap()
            .as_any_mut()
            .downcast_mut::<SimStorage>()
            .unwrap()
            .set_fault_model(DiskFaultModel::default());
        let e2 = h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        assert!(sends(&e2).iter().any(|(_, m)| matches!(m, ProtoMsg::UpdateAck { .. })));
        assert_eq!(mgr.stats().wal_appends, 1, "the retransmission is not re-logged");
    }

    #[test]
    fn disk_recovery_replays_the_wal_and_serves_immediately() {
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        mgr.set_storage(Box::new(SimStorage::new(3)));
        let id = OpId { origin: NodeId::from_index(1), seq: 5 };
        let op = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        mgr.on_crash();
        recover(&mut mgr, &mut h);
        assert!(!mgr.is_recovering(), "local replay is enough to serve");
        assert!(mgr.acl_has(AppId(0), UserId(8), Right::Use));
        assert_eq!(mgr.stats().recovered_from_disk, 1);
        // Queries are answered right away, while the delta sync for
        // freshness is still in flight.
        let effects = h.deliver(
            &mut mgr,
            7,
            ProtoMsg::Query { app: AppId(0), user: UserId(8), req: ReqId(1) },
        );
        assert!(matches!(
            sends(&effects)[0].1,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Grant { .. }, .. }
        ));
    }

    #[test]
    fn dropped_wal_recovery_silently_loses_acked_state() {
        // The planted bug the durability oracle must catch: a recovery
        // that reports disk mode but discarded the log.
        let (mut mgr, mut h) = manager_with_peers(0, &[1]);
        let mut storage = SimStorage::new(3);
        storage.set_drop_state_on_recover(true);
        mgr.set_storage(Box::new(storage));
        let id = OpId { origin: NodeId::from_index(1), seq: 5 };
        let op = AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use };
        h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        mgr.on_crash();
        recover(&mut mgr, &mut h);
        assert!(!mgr.is_recovering());
        assert!(!mgr.acl_has(AppId(0), UserId(8), Right::Use), "the bug lost the acked op");
    }

    #[test]
    fn snapshots_follow_the_configured_cadence_and_recovery_composes_them() {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        let mut mgr = ManagerNode::new(ManagerConfig {
            peers: vec![NodeId::from_index(1)],
            apps: vec![ManagerApp {
                app: AppId(0),
                policy: Policy::builder(1).build(),
                initial_acl: acl,
            }],
            snapshot_every: 3,
            ..ManagerConfig::default()
        });
        let mut h = Harness::new(0);
        mgr.set_storage(Box::new(SimStorage::new(1)));
        for seq in 1..=7u64 {
            let id = OpId { origin: NodeId::from_index(1), seq };
            let op = AclOp::Add { app: AppId(0), user: UserId(100 + seq), right: Right::Use };
            h.deliver(&mut mgr, 1, ProtoMsg::Update { id, op });
        }
        assert_eq!(mgr.stats().wal_appends, 7);
        assert_eq!(mgr.stats().snapshot_writes, 2, "7 appends at cadence 3 → 2 snapshots");
        // Snapshot + the leftover WAL tail rebuild everything.
        mgr.on_crash();
        recover(&mut mgr, &mut h);
        for seq in 1..=7u64 {
            assert!(mgr.acl_has(AppId(0), UserId(100 + seq), Right::Use), "user {seq} lost");
        }
    }

    /// A manager serving one bucket-range shard of app 0 (unsigned
    /// handoff records: `ns_trust` stays `None` in unit tests).
    fn sharded_manager(id: usize, shard: u32, lo: u8, hi: u8) -> (ManagerNode, Harness) {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        acl.add(UserId(3), Right::Use);
        let node = ManagerNode::new(ManagerConfig {
            peers: (0..4).filter(|&p| p != id).map(NodeId::from_index).collect(),
            apps: vec![ManagerApp {
                app: AppId(0),
                policy: Policy::builder(1).build(),
                initial_acl: acl,
            }],
            shards: vec![ManagerShard {
                shard: ShardId(shard),
                app: AppId(0),
                lo,
                hi,
                peers: Vec::new(),
            }],
            ..ManagerConfig::default()
        });
        (node, Harness::new(id))
    }

    /// A version-`epoch` shard-map record moving shard 0 onto
    /// `new_owners` (dummy signature; verification is off).
    fn handoff_record(epoch: u64, lo: u8, hi: u8, new_owners: &[usize]) -> NsRecord {
        let managers: Vec<NodeId> = new_owners.iter().map(|&m| NodeId::from_index(m)).collect();
        NsRecord {
            app: AppId(0),
            version: epoch,
            managers: managers.clone(),
            shards: Some(vec![ShardEntry { shard: ShardId(0), lo, hi, managers }]),
            signature: rsa::Signature(0),
        }
    }

    fn traces(effects: &[Effect<ProtoMsg>]) -> Vec<&str> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Trace { text } => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn handoff_source_freezes_transfers_and_releases_then_activates_targets() {
        // Manager 0 owns shard 0 alone; the handoff moves it to manager 1.
        let (mut mgr, mut h) = sharded_manager(0, 0, 0, 255);
        // One live op so the transfer carries real state.
        h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(7), right: Right::Use },
                req: ReqId(1),
                issuer: UserId(999),
                signature: None,
            },
        );
        let effects = h.deliver(
            &mut mgr,
            2,
            ProtoMsg::ShardHandoff {
                shard: ShardId(0),
                epoch: 2,
                record: Box::new(handoff_record(2, 0, 255, &[1])),
                targets: vec![NodeId::from_index(1)],
                publish_to: Vec::new(),
            },
        );
        // Frozen: the source pushed its shard state to the target and
        // noted the I9 handoff audit.
        let transfer = sends(&effects)
            .into_iter()
            .find_map(|(to, m)| match m {
                ProtoMsg::ShardTransfer { shard, epoch, ops, digest, .. } => {
                    Some((to, *shard, *epoch, ops.clone(), *digest))
                }
                _ => None,
            })
            .expect("source must transfer on the kickoff");
        assert_eq!(transfer.0, NodeId::from_index(1));
        assert_eq!((transfer.1, transfer.2), (ShardId(0), 2));
        assert_eq!(transfer.3.len(), 1, "the admin op rides the transfer");
        assert_eq!(transfer.4, transfer_digest(&transfer.3));
        assert!(traces(&effects).iter().any(|t| t.contains("audit=shard-handoff")));
        assert!(!mgr.shard_released(ShardId(0)), "release waits for the transfer ack");
        // Frozen shards drop further admin ops silently (the agent's
        // resend lands after the new map installs).
        let frozen = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Admin {
                op: AclOp::Add { app: AppId(0), user: UserId(8), right: Right::Use },
                req: ReqId(2),
                issuer: UserId(999),
                signature: None,
            },
        );
        assert!(sends(&frozen).is_empty(), "frozen shard must not answer admins");
        // The target's ack releases the source durably; as handoff
        // primary it then activates the target.
        let effects =
            h.deliver(&mut mgr, 1, ProtoMsg::ShardTransferAck { shard: ShardId(0), epoch: 2 });
        assert!(mgr.shard_released(ShardId(0)));
        assert!(sends(&effects).iter().any(|(to, m)| *to == NodeId::from_index(1)
            && matches!(m, ProtoMsg::ShardActivate { shard: ShardId(0), epoch: 2 })));
    }

    #[test]
    fn handoff_target_installs_activates_and_rejects_foreign_buckets() {
        // Manager 2 owns the upper half of app 0's keyspace; shard 0
        // (lower half) arrives via handoff from owner 0. Bucket facts:
        // user 1 → 18 (shard 0), user 3 → 172 (manager 2's own shard).
        let (mut mgr, mut h) = sharded_manager(2, 1, 128, 255);
        let reply = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(1) },
        );
        assert!(
            sends(&reply).iter().any(|(_, m)| matches!(
                m,
                ProtoMsg::QueryReply {
                    verdict: QueryVerdict::Unavailable { reason: RejectReason::UnknownShard },
                    ..
                }
            )),
            "a bucket outside every owned shard must answer UnknownShard"
        );
        h.deliver(
            &mut mgr,
            0,
            ProtoMsg::ShardHandoff {
                shard: ShardId(0),
                epoch: 2,
                record: Box::new(handoff_record(2, 0, 127, &[2])),
                targets: vec![NodeId::from_index(2)],
                publish_to: Vec::new(),
            },
        );
        let ops = vec![(
            OpId { origin: NodeId::from_index(0), seq: 4 },
            AclOp::Add { app: AppId(0), user: UserId(5), right: Right::Use },
        )];
        let effects = h.deliver(
            &mut mgr,
            0,
            ProtoMsg::ShardTransfer {
                shard: ShardId(0),
                epoch: 2,
                app: AppId(0),
                ops: ops.clone(),
                digest: transfer_digest(&ops),
            },
        );
        // Installed: the I9 note matches the source's digest, the ack
        // goes back, and the transferred op landed in the ACL.
        let note = traces(&effects)
            .into_iter()
            .find(|t| t.contains("audit=shard-install"))
            .expect("install audit note");
        assert!(note.contains(&format!("digest={} count=1", transfer_digest(&ops))));
        assert!(sends(&effects).iter().any(|(to, m)| *to == NodeId::from_index(0)
            && matches!(m, ProtoMsg::ShardTransferAck { shard: ShardId(0), epoch: 2 })));
        assert!(mgr.acl_has(AppId(0), UserId(5), Right::Use));
        // Not serving yet: activation is the primary's call, after every
        // source durably released.
        assert!(!mgr.shard_active(ShardId(0)));
        h.deliver(&mut mgr, 0, ProtoMsg::ShardActivate { shard: ShardId(0), epoch: 2 });
        assert!(mgr.shard_active(ShardId(0)));
        let reply = h.deliver(
            &mut mgr,
            9,
            ProtoMsg::Query { app: AppId(0), user: UserId(1), req: ReqId(2) },
        );
        assert!(sends(&reply).iter().any(|(_, m)| matches!(
            m,
            ProtoMsg::QueryReply { verdict: QueryVerdict::Grant { .. }, .. }
        )));
    }

    #[test]
    fn dropped_transfer_tail_diverges_the_install_digest() {
        let (mut mgr, mut h) = sharded_manager(2, 1, 128, 255);
        mgr.set_drop_handoff_tail(true);
        h.deliver(
            &mut mgr,
            0,
            ProtoMsg::ShardHandoff {
                shard: ShardId(0),
                epoch: 2,
                record: Box::new(handoff_record(2, 0, 127, &[2])),
                targets: vec![NodeId::from_index(2)],
                publish_to: Vec::new(),
            },
        );
        let ops = vec![(
            OpId { origin: NodeId::from_index(0), seq: 4 },
            AclOp::Revoke { app: AppId(0), user: UserId(5), right: Right::Use },
        )];
        let effects = h.deliver(
            &mut mgr,
            0,
            ProtoMsg::ShardTransfer {
                shard: ShardId(0),
                epoch: 2,
                app: AppId(0),
                ops: ops.clone(),
                digest: transfer_digest(&ops),
            },
        );
        let note = traces(&effects)
            .into_iter()
            .find(|t| t.contains("audit=shard-install"))
            .expect("install audit note");
        // The bug ate the revoke: count drops to 0 and the digest is the
        // empty-transfer digest, not the source's — exactly what the
        // oracle's I9 comparison flags.
        assert!(note.contains(&format!("digest={} count=0", transfer_digest(&[]))));
        assert_ne!(transfer_digest(&[]), transfer_digest(&ops));
    }
}
