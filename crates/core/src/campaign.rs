//! Nemesis campaigns: run the full protocol under a randomized
//! adversarial schedule with the [`InvariantOracle`] watching.
//!
//! A campaign is a pure function of a [`CampaignConfig`]: the same seed
//! reproduces the same deployment, the same [`NemesisPlan`], and the
//! same event schedule, so a violation report is a *replayable
//! counterexample* — `(seed, plan, event index)` identifies the exact
//! offending event in any rerun. [`shrink_plan`] then greedily minimizes
//! the plan while the violation persists, the way property-testing
//! shrinkers minimize failing inputs.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wanacl_sim::clock::ClockSpec;
use wanacl_sim::metrics::Metrics;
use wanacl_sim::nemesis::{NemesisPlan, NemesisTargets};
use wanacl_sim::net::WanNet;
use wanacl_sim::node::NodeId;
use wanacl_sim::rng::SimRng;
use wanacl_sim::storage::{DiskFaultModel, SimStorage};
use wanacl_sim::time::{SimDuration, SimTime};
use wanacl_sim::world::ObserverId;

use crate::client::AdminAction;
use crate::host::HostNode;
use crate::manager::ManagerNode;
use crate::msg::AclOp;
use crate::nameservice::DirectoryReplica;
use crate::oracle::{InvariantOracle, OracleStats, OracleViolation};
use crate::policy::Policy;
use crate::msg::ShardEntry;
use crate::scenario::{Deployment, Scenario};
use crate::types::{AppId, Right, ShardId, UserId};

/// A deliberately planted protocol bug, for proving the oracle catches
/// real unsafety (a campaign harness that never fires is worthless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedBug {
    /// One host's ACL cache stops expiring entries (see
    /// [`crate::cache::AclCache::set_ignore_expiry`]): revoked rights
    /// keep being honoured from cache far past `Te`.
    IgnoreCacheExpiry {
        /// Which host (0-based) carries the bug.
        host_index: usize,
    },
    /// One manager's stable storage silently discards its WAL and
    /// snapshot on recovery while still claiming a disk recovery (see
    /// [`SimStorage::set_drop_state_on_recover`]): acked — hence
    /// durably promised — operations vanish across a crash, which the
    /// oracle's durability invariant must catch.
    DropWal {
        /// Which manager (0-based) carries the bug.
        manager_index: usize,
    },
    /// One host skips record-signature verification on directory quorum
    /// reads (see [`HostNode::inject_ns_trust_unsigned`]): a malicious
    /// replica's forged or rolled-back record installs as if legitimate,
    /// which the oracle's directory-integrity invariant must catch.
    NsTrustUnsigned {
        /// Which host (0-based) carries the bug.
        host_index: usize,
    },
    /// One manager silently drops the tail operation of every shard
    /// transfer it installs (see
    /// [`crate::manager::ManagerNode::set_drop_handoff_tail`]): a grant
    /// or revoke handed over during an online rebalance vanishes on the
    /// new owner, which the oracle's rebalance-safety invariant (I9)
    /// must catch through the diverged install digest. Sharded
    /// campaigns force one rebalance onto the bugged manager so the bug
    /// always has a handoff to corrupt.
    LostHandoff {
        /// Which manager (0-based) carries the bug.
        manager_index: usize,
    },
}

/// Everything that defines one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed: deployment, workload, admin schedule, and nemesis
    /// plan all derive from it.
    pub seed: u64,
    /// Number of ACL managers.
    pub managers: usize,
    /// Number of application hosts.
    pub hosts: usize,
    /// Number of users issuing requests.
    pub users: usize,
    /// The per-application policy every node runs.
    pub policy: Policy,
    /// Fault-injection horizon; the world runs a drain tail beyond it
    /// so post-fault residual accesses are still checked.
    pub horizon: SimDuration,
    /// Fault density (1.0 ≈ one fault per 5 s of horizon).
    pub intensity: f64,
    /// Route host→manager discovery through a name service (and expose
    /// it to nemesis outages).
    pub use_name_service: bool,
    /// Run a replicated, signed directory with this many replicas
    /// instead of the single name service (0 = off; takes precedence
    /// over `use_name_service`). Hosts then install manager sets only
    /// from verified quorum reads.
    pub ns_replicas: usize,
    /// Verified replies a directory quorum read needs (0 = majority of
    /// `ns_replicas`).
    pub ns_read_quorum: usize,
    /// Let the nemesis plan draw directory faults too: stale replicas,
    /// split-brain cuts, malicious partial masters, and replica
    /// crash-restarts (requires `ns_replicas > 0` to have any effect).
    pub ns_faults: bool,
    /// Let the nemesis plan draw storage faults too: per-manager disk
    /// degradation ([`wanacl_sim::nemesis::Fault::DiskFault`]) and
    /// correlated crash-restarts of manager groups up to the whole
    /// cluster ([`wanacl_sim::nemesis::Fault::ClusterRestart`]).
    pub disk_faults: bool,
    /// Number of tenants (0 = the flat single-app deployment). When
    /// positive the deployment switches to the sharded multi-tenant
    /// plane: each tenant is its own application, its user keyspace
    /// splits into [`CampaignConfig::shards_per_tenant`] bucket-range
    /// shards, every shard is served by its own two-manager set, and
    /// `managers` is ignored (the layout is `2 × tenants ×
    /// shards_per_tenant`). Requires `ns_replicas > 0` — the shard map
    /// lives in the replicated directory.
    pub tenants: usize,
    /// Shards per tenant in sharded mode (ignored when `tenants == 0`).
    pub shards_per_tenant: usize,
    /// Let the nemesis plan draw shard faults too: online rebalances
    /// racing the network faults
    /// ([`wanacl_sim::nemesis::Fault::ShardRebalance`]) and hosts pinned
    /// to a stale shard map
    /// ([`wanacl_sim::nemesis::Fault::StaleShardMap`]). Only effective
    /// in sharded mode.
    pub shard_faults: bool,
    /// Optional planted bug.
    pub inject_bug: Option<InjectedBug>,
}

impl CampaignConfig {
    /// A policy tuned for short campaigns: C = 2, Te = 2 s, b = 0.9,
    /// tight timeouts, fail-closed, frequent cache sweeps.
    pub fn default_policy() -> Policy {
        Policy::builder(2)
            .revocation_bound(SimDuration::from_secs(2))
            .clock_rate_bound(0.9)
            .query_timeout(SimDuration::from_millis(250))
            .max_attempts(3)
            .cache_sweep_interval(SimDuration::from_millis(500))
            .build()
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 1,
            managers: 3,
            hosts: 2,
            users: 2,
            policy: Self::default_policy(),
            horizon: SimDuration::from_secs(10),
            intensity: 1.0,
            use_name_service: false,
            ns_replicas: 0,
            ns_read_quorum: 0,
            ns_faults: false,
            disk_faults: false,
            tenants: 0,
            shards_per_tenant: 1,
            shard_faults: false,
            inject_bug: None,
        }
    }
}

/// The outcome of one campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// The seed that produced everything below.
    pub seed: u64,
    /// The nemesis plan that ran.
    pub plan: NemesisPlan,
    /// Invariant violations the oracle caught (empty = safe run).
    pub violations: Vec<OracleViolation>,
    /// How much evidence the oracle checked.
    pub oracle_stats: OracleStats,
    /// Aggregate user-visible outcomes.
    pub user_stats: crate::client::UserStats,
    /// WAL records fsynced across all managers (every ack is backed by
    /// one of these).
    pub wal_appends: u64,
    /// Snapshots written across all managers.
    pub snapshot_writes: u64,
    /// Recoveries answered from local stable storage instead of a full
    /// peer state transfer.
    pub recovered_from_disk: u64,
    /// Order-sensitive FNV-1a fingerprint of every audit note the oracle
    /// saw (see [`InvariantOracle::audit_digest`]). Two runs of the same
    /// seed must agree on this — it is how the parallel executor proves
    /// each worker's world stayed bit-for-bit deterministic.
    pub audit_digest: u64,
    /// The world's full metric bag at the end of the run (every
    /// `ctx.metric_incr`/`metric_observe` the nodes emitted, plus the
    /// world's own `net.*`/`node.*` accounting). Deterministic per seed,
    /// so rollups merged in seed order are bit-identical regardless of
    /// `--jobs`.
    pub metrics: Metrics,
}

impl CampaignReport {
    /// Whether the run broke no invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the replayable counterexample (or a clean summary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str(&format!(
                "seed {}: clean — {} allows checked ({} quorum, {} cache, {} fail-open), {} revokes observed\n",
                self.seed,
                self.oracle_stats.allows,
                self.oracle_stats.quorum_allows,
                self.oracle_stats.cache_allows,
                self.oracle_stats.fail_open_allows,
                self.oracle_stats.revokes,
            ));
            out.push_str(&format!(
                "  storage: {} WAL appends, {} snapshots, {} disk recoveries\n",
                self.wal_appends, self.snapshot_writes, self.recovered_from_disk,
            ));
        } else {
            out.push_str(&format!(
                "seed {}: {} violation(s)\n",
                self.seed,
                self.violations.len()
            ));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
            out.push_str("replay with:\n");
            out.push_str(&format!(
                "  wanacl nemesis --seed {} (event #{} is the offense)\n",
                self.seed, self.violations[0].event_index
            ));
        }
        out.push_str(&self.plan.describe());
        out
    }
}

/// The TTL directory replicas serve records with in campaigns (short,
/// so expiry/refresh churn happens many times per horizon).
pub const CAMPAIGN_NS_TTL: SimDuration = SimDuration::from_secs(2);

/// The effective directory read quorum a config implies (0 = majority).
fn effective_read_quorum(config: &CampaignConfig) -> usize {
    if config.ns_read_quorum == 0 {
        config.ns_replicas / 2 + 1
    } else {
        config.ns_read_quorum
    }
}

/// The number of managers a config actually deploys: the sharded
/// layout overrides `managers` with two per shard.
fn effective_managers(config: &CampaignConfig) -> usize {
    if config.tenants > 0 {
        2 * config.tenants * config.shards_per_tenant
    } else {
        config.managers
    }
}

/// The deterministic node layout a campaign deployment will get, known
/// before the world is built (managers first, then directory replicas
/// or the optional name service, then hosts — asserted against the real
/// deployment). In sharded mode `shard_managers[s]` lists the two
/// genesis owners of global shard `s`.
pub fn campaign_targets(config: &CampaignConfig) -> NemesisTargets {
    let mgr_count = effective_managers(config);
    let managers: Vec<NodeId> = (0..mgr_count).map(NodeId::from_index).collect();
    let shard_managers: Vec<Vec<NodeId>> = if config.tenants > 0 {
        (0..config.tenants * config.shards_per_tenant)
            .map(|s| vec![NodeId::from_index(2 * s), NodeId::from_index(2 * s + 1)])
            .collect()
    } else {
        Vec::new()
    };
    let replicated = config.ns_replicas > 0;
    let ns_replicas: Vec<NodeId> = if replicated {
        (mgr_count..mgr_count + config.ns_replicas).map(NodeId::from_index).collect()
    } else {
        Vec::new()
    };
    let name_service =
        (config.use_name_service && !replicated).then(|| NodeId::from_index(mgr_count));
    let host_base =
        mgr_count + config.ns_replicas + usize::from(config.use_name_service && !replicated);
    let hosts: Vec<NodeId> =
        (host_base..host_base + config.hosts).map(NodeId::from_index).collect();
    NemesisTargets { managers, hosts, name_service, ns_replicas, shard_managers }
}

/// Samples the nemesis plan the given config's seed implies. With
/// `disk_faults` enabled the fault mix also draws storage faults and
/// correlated cluster restarts; with `ns_faults` (and replicas) it adds
/// directory faults. Without either flag the plan is byte-identical to
/// what earlier campaigns produced.
pub fn sample_plan(config: &CampaignConfig) -> NemesisPlan {
    let targets = campaign_targets(config);
    let horizon = SimTime::ZERO + config.horizon;
    let mut rng = SimRng::seed_from(config.seed ^ 0x6e65_6d65);
    if config.shard_faults && config.tenants > 0 {
        NemesisPlan::sample_with_shards(
            &targets,
            horizon,
            config.intensity,
            &mut rng,
            config.disk_faults,
            config.ns_faults && config.ns_replicas > 0,
        )
    } else if config.ns_faults && config.ns_replicas > 0 {
        NemesisPlan::sample_with_directory(
            &targets,
            horizon,
            config.intensity,
            &mut rng,
            config.disk_faults,
        )
    } else if config.disk_faults {
        NemesisPlan::sample_with_storage(&targets, horizon, config.intensity, &mut rng)
    } else {
        NemesisPlan::sample(&targets, horizon, config.intensity, &mut rng)
    }
}

/// Admin churn: every user gets its `use` right revoked and re-granted
/// at seed-deterministic times inside the horizon, so the oracle's
/// bounded-revocation check has real revocations to bite on. In sharded
/// mode the ops span tenants — user `u` belongs to application
/// `(u − 1) mod tenants` — so every shard sees churn, including churn
/// racing a rebalance of its own keyspace.
fn admin_script(config: &CampaignConfig) -> Vec<AdminAction> {
    let mut rng = SimRng::seed_from(config.seed ^ 0x6164_6d69);
    let h = config.horizon.as_secs_f64();
    let mut script = Vec::new();
    for i in 1..=config.users {
        let user = UserId(i as u64);
        let app = if config.tenants > 0 {
            AppId(((i - 1) % config.tenants) as u32)
        } else {
            AppId(0)
        };
        let revoke_at = h * (0.2 + 0.4 * rng.unit());
        let regrant_at = revoke_at + h * (0.1 + 0.2 * rng.unit());
        script.push(AdminAction {
            delay: SimDuration::from_secs_f64(revoke_at),
            op: AclOp::Revoke { app, user, right: Right::Use },
        });
        script.push(AdminAction {
            delay: SimDuration::from_secs_f64(regrant_at),
            op: AclOp::Add { app, user, right: Right::Use },
        });
    }
    script
}

/// The campaign-owned [`SimStorage`] of one manager (panics if the
/// manager has no storage or a foreign storage type — campaigns attach
/// `SimStorage` to every manager before faults or bugs touch it).
fn sim_storage(deployment: &mut Deployment, mgr: NodeId) -> &mut SimStorage {
    deployment
        .world
        .node_as_mut::<ManagerNode>(mgr)
        .storage_mut()
        .expect("campaign manager has storage attached")
        .as_any_mut()
        .downcast_mut::<SimStorage>()
        .expect("campaign manager storage is SimStorage")
}

fn build_deployment(
    config: &CampaignConfig,
    plan: &NemesisPlan,
) -> (Deployment, ObserverId) {
    let base = WanNet::builder()
        .uniform_delay(SimDuration::from_millis(10), SimDuration::from_millis(60))
        .loss(0.01)
        .build();
    let min_rate = config.policy.clock_rate_bound();
    let mean_interarrival = SimDuration::from_millis(300);
    let sharded = config.tenants > 0;
    let mut scenario = Scenario::builder(config.seed)
        .hosts(config.hosts)
        .users(config.users)
        .policy(config.policy.clone())
        .all_users_granted()
        .manager_clock(ClockSpec::RandomRate { min_rate })
        .host_clock(ClockSpec::RandomRate { min_rate })
        .workload(mean_interarrival)
        .request_timeout(SimDuration::from_secs(5))
        .admin_script(admin_script(config))
        .net(Box::new(plan.wrap_net(Box::new(base))));
    if sharded {
        assert!(
            config.ns_replicas > 0,
            "sharded campaigns need the replicated directory (the shard map lives there)"
        );
        scenario =
            scenario.tenants(config.tenants).shards_per_tenant(config.shards_per_tenant);
    } else {
        scenario = scenario.managers(config.managers);
    }
    if config.ns_replicas > 0 {
        scenario = scenario.with_replicated_directory(
            config.ns_replicas,
            config.ns_read_quorum,
            CAMPAIGN_NS_TTL,
        );
    } else if config.use_name_service {
        scenario = scenario.with_name_service(CAMPAIGN_NS_TTL);
    }
    let mut deployment = scenario.build();

    // The arithmetic layout used for plan sampling must match reality.
    let targets = campaign_targets(config);
    assert_eq!(deployment.managers, targets.managers, "manager layout drifted");
    assert_eq!(deployment.hosts, targets.hosts, "host layout drifted");
    assert_eq!(deployment.ns_replicas, targets.ns_replicas, "replica layout drifted");

    // Every manager gets deterministic simulated stable storage: acks
    // become durable promises (fsync-before-ack), and crash recovery
    // replays snapshot + WAL locally before the delta peer sync.
    for (i, &mgr) in deployment.managers.clone().iter().enumerate() {
        let disk_seed = config.seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        deployment
            .world
            .node_as_mut::<ManagerNode>(mgr)
            .set_storage(Box::new(SimStorage::new(disk_seed)));
    }
    // Degrade the disks the plan targets.
    for (node, sync_fail_prob, torn_tail_prob) in plan.disk_faults() {
        sim_storage(&mut deployment, node)
            .set_fault_model(DiskFaultModel { sync_fail_prob, torn_tail_prob });
    }

    // Directory replicas get their own stable storage (so crash-restart
    // faults exercise WAL/snapshot recovery), then the plan's directory
    // faults are armed, and a fresher record is published mid-horizon to
    // ONE replica — anti-entropy must spread it, which is exactly the
    // path stale-replica and split-brain faults attack.
    if !deployment.ns_replicas.is_empty() {
        for (i, &replica) in deployment.ns_replicas.clone().iter().enumerate() {
            let disk_seed =
                config.seed ^ 0x6e73_6469 ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            deployment
                .world
                .node_as_mut::<DirectoryReplica>(replica)
                .set_storage(Box::new(SimStorage::new(disk_seed)));
        }
        for replica in plan.stale_replicas() {
            deployment
                .world
                .node_as_mut::<DirectoryReplica>(replica)
                .set_suppress_sync(true);
        }
        for (replica, window) in plan.malicious_replicas() {
            deployment.world.node_as_mut::<DirectoryReplica>(replica).set_malicious(window);
        }
        if !sharded {
            let at = SimTime::ZERO + config.horizon.mul_f64(0.4);
            let managers = deployment.managers.clone();
            deployment.republish_managers_at(at, 0, 2, managers);
        }
    }

    match config.inject_bug {
        Some(InjectedBug::IgnoreCacheExpiry { host_index }) => {
            let host = deployment.hosts[host_index];
            let app = deployment.app;
            deployment.world.node_as_mut::<HostNode>(host).inject_ignore_expiry(app);
        }
        Some(InjectedBug::DropWal { manager_index }) => {
            let mgr = deployment.managers[manager_index];
            sim_storage(&mut deployment, mgr).set_drop_state_on_recover(true);
        }
        Some(InjectedBug::NsTrustUnsigned { host_index }) => {
            let host = deployment.hosts[host_index];
            deployment.world.node_as_mut::<HostNode>(host).inject_ns_trust_unsigned();
        }
        Some(InjectedBug::LostHandoff { manager_index }) => {
            assert!(sharded, "the lost-handoff bug needs a sharded deployment");
            deployment.manager_mut(manager_index).set_drop_handoff_tail(true);
        }
        None => {}
    }

    // Sharded driver: schedule the plan's online rebalances (ring-next
    // targets, skipping moves an earlier move made non-disjoint), pin
    // stale-map hosts, and record every shard-map version the run can
    // legitimately route by — the oracle's tenant-isolation check (I8)
    // accepts exactly this set.
    let mut expected_maps: Vec<(AppId, u64, Vec<ShardEntry>)> = Vec::new();
    if sharded {
        for (app, (version, entries)) in &deployment.shard_maps {
            expected_maps.push((*app, *version, entries.clone()));
        }
        let total_shards = (config.tenants * config.shards_per_tenant) as u32;
        let mut moves: Vec<(u32, SimTime)> = plan.shard_rebalances();
        if let Some(InjectedBug::LostHandoff { manager_index }) = config.inject_bug {
            // Force one rebalance whose targets include the bugged
            // manager: with ring-next targeting, moving the ring-
            // *previous* shard lands on the bugged manager's set, so the
            // dropped tail always has a handoff to corrupt.
            let owned = (manager_index / 2) as u32;
            let victim = (owned + total_shards - 1) % total_shards;
            moves.push((victim, SimTime::ZERO + config.horizon.mul_f64(0.5)));
            moves.sort_by_key(|&(_, at)| at);
        }
        for (s, at) in moves {
            let shard = ShardId(s % total_shards);
            let sources = deployment.shard_owners(shard);
            let targets = deployment.shard_owners(ShardId((shard.0 + 1) % total_shards));
            if targets.iter().any(|t| sources.contains(t)) {
                continue;
            }
            deployment.rebalance_shard_at(at, shard, targets);
            let (app, (version, entries)) = deployment
                .shard_maps
                .iter()
                .find(|(_, (_, es))| es.iter().any(|e| e.shard == shard))
                .expect("rebalanced shard keeps a map entry");
            expected_maps.push((*app, *version, entries.clone()));
        }
        let apps: Vec<AppId> = deployment.shard_maps.keys().copied().collect();
        for node in plan.stale_shard_map_hosts() {
            let i = deployment
                .hosts
                .iter()
                .position(|&h| h == node)
                .expect("stale-map fault targets a campaign host");
            for &app in &apps {
                deployment.host_mut(i).set_pin_ns_version(app);
            }
        }
    }

    plan.install_lifecycle(&mut deployment.world);
    let mut oracle = InvariantOracle::new(&config.policy, SimDuration::ZERO);
    if config.ns_replicas > 0 {
        oracle.set_directory(config.ns_replicas, effective_read_quorum(config), CAMPAIGN_NS_TTL);
    }
    for (app, version, entries) in &expected_maps {
        oracle.expect_shard_map(*app, *version, entries);
    }
    let oracle_id = deployment.world.add_observer(Box::new(oracle));
    (deployment, oracle_id)
}

/// Runs one campaign with the plan the seed implies.
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    let plan = sample_plan(config);
    run_with_plan(config, &plan)
}

/// Runs one campaign under an explicit plan (replay and shrinking).
pub fn run_with_plan(config: &CampaignConfig, plan: &NemesisPlan) -> CampaignReport {
    let (mut deployment, oracle_id) = build_deployment(config, plan);
    // Drain tail: any lease issued near the horizon is still live for up
    // to Te afterwards; keep the oracle watching until it must be dead.
    let total = config.horizon + config.policy.revocation_bound() + config.policy.revocation_bound();
    let chunk = SimDuration::from_nanos((total.as_nanos() / 40).max(1));
    let deadline = SimTime::ZERO + total;
    while deployment.world.now() < deadline {
        deployment.run_for(chunk);
        // Early exit: the first violation already carries the replay
        // coordinate; running on only piles up repeats.
        if !deployment.world.observer_as::<InvariantOracle>(oracle_id).is_clean() {
            break;
        }
    }
    let user_stats = deployment.aggregate_user_stats();
    let (mut wal_appends, mut snapshot_writes, mut recovered_from_disk) = (0, 0, 0);
    for i in 0..deployment.managers.len() {
        let stats = deployment.manager(i).stats();
        wal_appends += stats.wal_appends;
        snapshot_writes += stats.snapshot_writes;
        recovered_from_disk += stats.recovered_from_disk;
    }
    let metrics = deployment.world.metrics().clone();
    let oracle = deployment.world.observer_as::<InvariantOracle>(oracle_id);
    CampaignReport {
        seed: config.seed,
        plan: plan.clone(),
        violations: oracle.violations().to_vec(),
        oracle_stats: oracle.stats(),
        user_stats,
        wal_appends,
        snapshot_writes,
        recovered_from_disk,
        audit_digest: oracle.audit_digest(),
        metrics,
    }
}

/// Folds the per-seed metric bags of a sweep into one rollup, merging
/// in input (seed) order. Because each report's metrics are a pure
/// function of its seed, the rollup is bit-identical however the
/// reports were computed — sequentially or under any `--jobs` value.
pub fn rollup_metrics(reports: &[CampaignReport]) -> Metrics {
    let mut rollup = Metrics::new();
    for report in reports {
        rollup.merge(&report.metrics);
    }
    rollup
}

/// Runs one campaign per config, fanned across a `std::thread` worker
/// pool, and returns the reports in input order.
///
/// Each seed builds its own fully independent [`World`] — separate RNG
/// streams, storage, oracle — so parallel execution cannot perturb a
/// run: every report (violations, stats, audit digest) is bit-for-bit
/// identical to what [`run_campaign`] produces for the same config.
///
/// `jobs = 0` uses [`std::thread::available_parallelism`]; `jobs = 1`
/// degenerates to the sequential runner with no threads spawned.
///
/// [`World`]: wanacl_sim::world::World
pub fn run_campaigns_parallel(
    configs: &[CampaignConfig],
    jobs: usize,
) -> Vec<CampaignReport> {
    run_indexed_parallel(configs.len(), jobs, |i| run_campaign(&configs[i]))
}

/// [`run_campaigns_parallel`] for explicit `(config, plan)` pairs —
/// the parallel counterpart of [`run_with_plan`], used by replay-style
/// sweeps that script their own fault plans.
pub fn run_plans_parallel(
    work: &[(CampaignConfig, NemesisPlan)],
    jobs: usize,
) -> Vec<CampaignReport> {
    run_indexed_parallel(work.len(), jobs, |i| {
        let (config, plan) = &work[i];
        run_with_plan(config, plan)
    })
}

/// Work-stealing fan-out over `0..count`: workers claim indices from a
/// shared atomic counter and write results back into their input slots,
/// so the output order never depends on thread scheduling.
fn run_indexed_parallel<F>(count: usize, jobs: usize, run: F) -> Vec<CampaignReport>
where
    F: Fn(usize) -> CampaignReport + Sync,
{
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    };
    let jobs = jobs.min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<CampaignReport>>> =
        Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let report = run(i);
                results.lock().expect("result slots poisoned")[i] = Some(report);
            });
        }
    });
    results
        .into_inner()
        .expect("result slots poisoned")
        .into_iter()
        .map(|slot| slot.expect("every claimed index writes its slot"))
        .collect()
}

/// Greedily shrinks a violating plan: repeatedly drop any fault whose
/// removal keeps the campaign failing, until no single removal does.
/// Returns the (possibly empty) minimal plan and its report.
///
/// If `plan` does not actually fail under `config`, it is returned
/// unchanged with its clean report.
pub fn shrink_plan(
    config: &CampaignConfig,
    plan: &NemesisPlan,
) -> (NemesisPlan, CampaignReport) {
    let mut best_report = run_with_plan(config, plan);
    let mut best = plan.clone();
    if best_report.is_clean() {
        return (best, best_report);
    }
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < best.len() {
            let candidate = best.without(i);
            let report = run_with_plan(config, &candidate);
            if !report.is_clean() {
                best = candidate;
                best_report = report;
                shrunk = true;
                // Same index now names the next fault; do not advance.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return (best, best_report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(seed: u64) -> CampaignConfig {
        CampaignConfig { seed, horizon: SimDuration::from_secs(5), ..CampaignConfig::default() }
    }

    #[test]
    fn campaigns_are_deterministic() {
        let config = quick_config(42);
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.oracle_stats, b.oracle_stats);
        assert_eq!(a.audit_digest, b.audit_digest);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn parallel_executor_matches_sequential_per_seed() {
        let configs: Vec<CampaignConfig> = (0..4).map(quick_config).collect();
        let parallel = run_campaigns_parallel(&configs, 4);
        assert_eq!(parallel.len(), configs.len());
        for (config, par) in configs.iter().zip(&parallel) {
            let seq = run_campaign(config);
            assert_eq!(par.seed, config.seed, "reports must come back in input order");
            assert_eq!(par.plan, seq.plan);
            assert_eq!(par.violations, seq.violations);
            assert_eq!(par.oracle_stats, seq.oracle_stats);
            assert_eq!(par.user_stats, seq.user_stats);
            assert_eq!(par.audit_digest, seq.audit_digest);
            assert_eq!(par.metrics, seq.metrics);
        }
    }

    #[test]
    fn metric_rollups_are_bit_identical_across_jobs() {
        let configs: Vec<CampaignConfig> = (0..4).map(quick_config).collect();
        let seq = run_campaigns_parallel(&configs, 1);
        let par = run_campaigns_parallel(&configs, 8);
        let seq_rollup = rollup_metrics(&seq);
        let par_rollup = rollup_metrics(&par);
        assert_eq!(seq_rollup, par_rollup);
        // The exported artifacts must match byte for byte — this is what
        // the CI obs-smoke job diffs between --jobs 1 and --jobs 2.
        assert_eq!(
            wanacl_sim::obs::metrics_jsonl(&seq_rollup, "rollup"),
            wanacl_sim::obs::metrics_jsonl(&par_rollup, "rollup"),
        );
        assert_eq!(
            wanacl_sim::obs::prometheus_text(&seq_rollup),
            wanacl_sim::obs::prometheus_text(&par_rollup),
        );
        // And the rollup actually contains protocol evidence, not just
        // an empty bag comparing equal to another empty bag.
        assert!(seq_rollup.counter("host.invokes") > 0);
        assert!(seq_rollup.histogram("host.check_latency_s").is_some());
    }

    #[test]
    fn parallel_executor_handles_degenerate_inputs() {
        assert!(run_campaigns_parallel(&[], 0).is_empty());
        let one = [quick_config(9)];
        // More workers than work, and the jobs=0 auto-detect path.
        for jobs in [0, 1, 8] {
            let reports = run_campaigns_parallel(&one, jobs);
            assert_eq!(reports.len(), 1);
            assert_eq!(reports[0].seed, 9);
        }
    }

    #[test]
    fn unmodified_protocol_survives_a_campaign() {
        let report = run_campaign(&quick_config(7));
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.oracle_stats.allows > 0, "campaign produced no evidence");
    }

    #[test]
    fn injected_expiry_bug_is_caught_and_shrinks() {
        // Hunt a seed whose schedule actually exercises the planted bug:
        // the host must serve the revoked user from its immortal cache
        // more than Te after the revoke stabilizes.
        let mut caught = None;
        for seed in 0..20 {
            let config = CampaignConfig {
                inject_bug: Some(InjectedBug::IgnoreCacheExpiry { host_index: 0 }),
                ..quick_config(seed)
            };
            let report = run_campaign(&config);
            if !report.is_clean() {
                caught = Some((config, report));
                break;
            }
        }
        let (config, report) = caught.expect("no seed in 0..20 tripped the planted bug");
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == crate::oracle::InvariantKind::BoundedRevocation
                || v.kind == crate::oracle::InvariantKind::CacheExpiry));
        let (small, small_report) = shrink_plan(&config, &report.plan);
        assert!(!small_report.is_clean(), "shrunk plan must still fail");
        assert!(small.len() <= report.plan.len(), "shrinking must not grow the plan");
    }

    #[test]
    fn full_cluster_restart_with_disk_faults_stays_clean() {
        // The acceptance scenario: every manager's disk degrades (torn
        // tails on crash, transient sync failures) and then the whole
        // manager set crash-restarts at once. Quorum sync alone cannot
        // survive that; local WAL replay must carry the state across.
        let config = CampaignConfig {
            disk_faults: true,
            horizon: SimDuration::from_secs(6),
            ..quick_config(11)
        };
        let targets = campaign_targets(&config);
        let mut b = NemesisPlan::builder(SimTime::ZERO + config.horizon);
        for &m in &targets.managers {
            b = b.disk_fault(m, 0.2, 0.8);
        }
        let plan = b
            .cluster_restart(
                targets.managers.clone(),
                SimTime::ZERO + SimDuration::from_millis(2500),
                SimDuration::from_millis(400),
            )
            .build();
        let report = run_with_plan(&config, &plan);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.wal_appends > 0, "no op was ever made durable");
        assert_eq!(
            report.recovered_from_disk, config.managers as u64,
            "every manager must come back from its own disk"
        );
    }

    #[test]
    fn injected_drop_wal_bug_is_caught() {
        // A manager whose storage forgets everything on recovery breaks
        // the promise its acks made; the durability invariant must name
        // the event with a replayable (seed, plan, index) coordinate.
        let mut caught = None;
        for seed in 0..20 {
            let config = CampaignConfig {
                disk_faults: true,
                inject_bug: Some(InjectedBug::DropWal { manager_index: 0 }),
                ..quick_config(seed)
            };
            let targets = campaign_targets(&config);
            let plan = NemesisPlan::builder(SimTime::ZERO + config.horizon)
                .cluster_restart(
                    vec![targets.managers[0]],
                    SimTime::ZERO + SimDuration::from_millis(3500),
                    SimDuration::from_millis(300),
                )
                .build();
            let report = run_with_plan(&config, &plan);
            if !report.is_clean() {
                caught = Some(report);
                break;
            }
        }
        let report = caught.expect("no seed in 0..20 tripped the drop-WAL bug");
        let violation = report
            .violations
            .iter()
            .find(|v| v.kind == crate::oracle::InvariantKind::Durability)
            .expect("drop-WAL must surface as a durability violation");
        assert!(violation.event_index > 0, "violation must carry a replay coordinate");
        assert!(report.render().contains("replay with:"));
    }

    #[test]
    fn disk_fault_campaigns_are_deterministic_and_clean() {
        for seed in [5, 6] {
            let config = CampaignConfig {
                disk_faults: true,
                intensity: 2.0,
                horizon: SimDuration::from_secs(8),
                ..quick_config(seed)
            };
            let a = run_campaign(&config);
            let b = run_campaign(&config);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.oracle_stats, b.oracle_stats);
            assert_eq!(a.wal_appends, b.wal_appends);
            assert!(a.is_clean(), "{}", a.render());
        }
    }

    #[test]
    fn replicated_directory_campaign_is_deterministic_and_produces_evidence() {
        let config = CampaignConfig {
            ns_replicas: 3,
            ns_faults: true,
            horizon: SimDuration::from_secs(6),
            ..quick_config(13)
        };
        // build_deployment asserts the replica layout internally.
        let a = run_campaign(&config);
        let b = run_campaign(&config);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.oracle_stats, b.oracle_stats);
        assert_eq!(a.audit_digest, b.audit_digest);
        assert!(a.is_clean(), "{}", a.render());
        assert!(a.oracle_stats.ns_installs > 0, "no quorum read ever completed");
        assert!(a.oracle_stats.ns_publishes > 0, "no replica ever published a record");
    }

    #[test]
    fn replicated_directory_takes_precedence_over_name_service() {
        let config = CampaignConfig {
            ns_replicas: 3,
            use_name_service: true,
            ..quick_config(3)
        };
        let targets = campaign_targets(&config);
        assert_eq!(targets.name_service, None);
        assert_eq!(targets.ns_replicas.len(), 3);
        assert_eq!(targets.hosts[0], NodeId::from_index(config.managers + 3));
    }

    fn sharded_config(seed: u64) -> CampaignConfig {
        CampaignConfig {
            tenants: 2,
            shards_per_tenant: 2,
            users: 4,
            ns_replicas: 3,
            shard_faults: true,
            horizon: SimDuration::from_secs(8),
            ..quick_config(seed)
        }
    }

    #[test]
    fn sharded_layout_matches_deployment_and_plans_draw_shard_faults() {
        let config = sharded_config(3);
        let targets = campaign_targets(&config);
        assert_eq!(targets.managers.len(), 8, "2 tenants x 2 shards x 2 managers");
        assert_eq!(targets.shard_managers.len(), 4);
        assert_eq!(targets.ns_replicas[0], NodeId::from_index(8));
        assert_eq!(targets.hosts[0], NodeId::from_index(11));
        // Over a handful of seeds the shard fault kinds actually appear.
        let drew_rebalance = (0..10).any(|seed| {
            !sample_plan(&sharded_config(seed)).shard_rebalances().is_empty()
        });
        assert!(drew_rebalance, "no seed in 0..10 drew a shard rebalance");
    }

    #[test]
    fn sharded_campaign_is_deterministic_and_clean() {
        // build_deployment asserts the 8-manager layout internally; the
        // run must survive rebalances racing the network faults with
        // every invariant — including I8/I9 — intact.
        for seed in [21, 24] {
            let config = sharded_config(seed);
            let a = run_campaign(&config);
            let b = run_campaign(&config);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.oracle_stats, b.oracle_stats);
            assert_eq!(a.audit_digest, b.audit_digest);
            assert_eq!(a.metrics, b.metrics);
            assert!(a.is_clean(), "{}", a.render());
            assert!(a.oracle_stats.allows > 0, "campaign produced no evidence");
        }
    }

    #[test]
    fn injected_lost_handoff_bug_is_caught() {
        // A manager that drops the tail op of a shard transfer breaks
        // I9: its install digest diverges from the source's handoff
        // digest. shard_faults stays off so the only rebalance is the
        // forced one targeting the bugged manager.
        let mut caught = None;
        for seed in 0..20 {
            let config = CampaignConfig {
                shard_faults: false,
                inject_bug: Some(InjectedBug::LostHandoff { manager_index: 0 }),
                ..sharded_config(seed)
            };
            let report = run_campaign(&config);
            if !report.is_clean() {
                caught = Some(report);
                break;
            }
        }
        let report = caught.expect("no seed in 0..20 tripped the lost-handoff bug");
        let violation = report
            .violations
            .iter()
            .find(|v| v.kind == crate::oracle::InvariantKind::RebalanceSafety)
            .expect("lost handoff must surface as a rebalance-safety violation");
        assert!(violation.event_index > 0, "violation must carry a replay coordinate");
    }

    #[test]
    fn name_service_layout_matches_deployment() {
        let config = CampaignConfig {
            use_name_service: true,
            horizon: SimDuration::from_secs(3),
            ..quick_config(3)
        };
        // build_deployment asserts the arithmetic layout internally.
        let report = run_campaign(&config);
        assert!(report.oracle_stats.allows > 0 || report.user_stats.sent > 0);
    }
}
