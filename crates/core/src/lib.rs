//! # wanacl-core — access control in wide-area networks
//!
//! A from-scratch implementation of the protocol of Hiltunen &
//! Schlichting, *Access Control in Wide-Area Networks* (ICDCS '97):
//! access-control lists held authoritatively by a small set of
//! **managers**, cached at application **hosts** with **time-based
//! expiration** (`te = b·Te`), and coordinated across managers with
//! **check/update quorums** (`C` and `M − C + 1`) so that each
//! application can pick its own point on the security–availability
//! tradeoff when the network partitions.
//!
//! The protocol logic is written against the deterministic simulation
//! substrate of [`wanacl_sim`]; the same node implementations also run on
//! real threads under `wanacl-rt`.
//!
//! ## Modules
//!
//! * [`types`] — applications, users, rights, the authoritative [`types::Acl`]
//! * [`policy`] — the per-application knobs `C`, `Te`, `b`, `R`, `Ti`
//! * [`msg`] — the wire protocol
//! * [`cache`] — the host-side `ACL_cache` with expiry (Figures 2–3)
//! * [`breaker`] — per-peer circuit breaker for the live check path
//! * [`host`] — the application-host node (Figures 2–4 + check quorum)
//! * [`manager`] — the manager node (quorum dissemination, freeze, recovery)
//! * [`nameservice`] — the trusted directory of §3.2
//! * [`client`] — user and admin workload agents
//! * [`wrapper`] — the Figure 1 application wrapper
//! * [`scenario`] — one-stop deployment assembly
//!
//! ## Example
//!
//! ```
//! use wanacl_core::prelude::*;
//! use wanacl_sim::time::{SimDuration, SimTime};
//!
//! // 3 managers, 2 hosts, 1 user, C = 2.
//! let mut deployment = Scenario::builder(7)
//!     .managers(3)
//!     .hosts(2)
//!     .users(1)
//!     .policy(Policy::builder(2).build())
//!     .all_users_granted()
//!     .build();
//!
//! deployment.run_for(SimDuration::from_secs(1));
//! deployment.invoke_from(0);
//! deployment.run_for(SimDuration::from_secs(5));
//! assert_eq!(deployment.user_agent(0).stats().allowed, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use wanacl_auth as auth;

pub mod audit;
pub mod breaker;
pub mod cache;
pub mod campaign;
pub mod channel;
pub mod client;
pub mod host;
pub mod manager;
pub mod msg;
pub mod nameservice;
pub mod oracle;
pub mod policy;
pub mod scenario;
pub mod storelog;
pub mod types;
pub mod wrapper;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::audit::{AuditEvent, AuditLog, Violation};
    pub use crate::breaker::{BreakerConfig, FailureOutcome, PeerBreaker};
    pub use crate::cache::{AclCache, CacheDecision};
    pub use crate::campaign::{
        campaign_targets, rollup_metrics, run_campaign, run_campaigns_parallel, run_plans_parallel,
        run_with_plan, sample_plan, shrink_plan, CampaignConfig, CampaignReport, InjectedBug,
    };
    pub use crate::channel::ChannelKeys;
    pub use crate::client::{
        AdminAction, AdminAgent, AdminAgentConfig, AdminRoute, OpProgress, UserAgent,
        UserAgentConfig, UserStats, WorkloadShape,
    };
    pub use crate::host::{AppHost, HostNode, HostStats, ManagerDirectory};
    pub use crate::manager::{
        ManagerApp, ManagerConfig, ManagerNode, ManagerShard, ManagerStats,
    };
    pub use crate::msg::{
        AclOp, AdminStatus, InvokeOutcome, NsRecord, OpId, ProtoMsg, QueryVerdict, RejectReason,
        ReqId, ShardEntry,
    };
    pub use crate::nameservice::{DirectoryReplica, NameServiceNode};
    pub use crate::oracle::{InvariantKind, InvariantOracle, OracleStats, OracleViolation};
    pub use crate::policy::{ExhaustionBehavior, FreezePolicy, Policy, QueryFanout};
    pub use crate::scenario::{Deployment, Scenario};
    pub use crate::storelog::SnapshotState;
    pub use crate::types::{user_bucket, Acl, AppId, Right, RightsSet, ShardId, TenantId, UserId};
    pub use crate::wrapper::{Application, CountingApp, EchoApp, StockQuoteApp};
}
