//! Pairwise channel authentication between hosts and managers.
//!
//! §2.1 notes that when principals are hosts rather than users, "a host
//! would be identified by its Internet address and a similar
//! authentication scheme would be required". User→host requests are
//! RSA-signed; for the high-rate host↔manager channel this module
//! provides the cheap symmetric counterpart: per-pair HMAC keys derived
//! from a deployment master secret, tagging `QueryReply` and
//! `RevokeNotice` messages so a compromised non-manager node cannot
//! forge grants or flushes.

use wanacl_auth::hmac::{hmac_sha256, Tag};
use wanacl_sim::node::NodeId;
use wanacl_sim::time::SimDuration;

use crate::msg::{QueryVerdict, ReqId};
use crate::types::{AppId, UserId};

/// Derives and applies per-pair HMAC keys. Shared (via `Arc`) by every
/// node of a deployment; in a real system each pair would instead hold
/// its key from a key-exchange handshake.
///
/// # Examples
///
/// ```
/// use wanacl_core::channel::ChannelKeys;
/// use wanacl_core::msg::{QueryVerdict, ReqId};
/// use wanacl_core::types::{AppId, UserId};
/// use wanacl_sim::node::NodeId;
/// use wanacl_sim::time::SimDuration;
///
/// let keys = ChannelKeys::from_seed(7);
/// let (mgr, host) = (NodeId::from_index(0), NodeId::from_index(3));
/// let verdict = QueryVerdict::Grant { te: SimDuration::from_secs(30) };
/// let tag = keys.tag_query_reply(mgr, host, ReqId(1), AppId(0), UserId(1), &verdict);
/// assert!(keys.verify_query_reply(mgr, host, ReqId(1), AppId(0), UserId(1), &verdict, &tag));
/// ```
#[derive(Debug, Clone)]
pub struct ChannelKeys {
    master: [u8; 32],
}

impl ChannelKeys {
    /// Creates the key space from a 32-byte master secret.
    pub fn new(master: [u8; 32]) -> Self {
        ChannelKeys { master }
    }

    /// Deterministic derivation from a seed (simulation convenience).
    pub fn from_seed(seed: u64) -> Self {
        let mut master = [0u8; 32];
        master[..8].copy_from_slice(&seed.to_be_bytes());
        ChannelKeys { master: hmac_sha256(&master, b"wanacl-channel-master").0 }
    }

    /// The pairwise key for the unordered pair `(a, b)`.
    fn pair_key(&self, a: NodeId, b: NodeId) -> [u8; 32] {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut label = [0u8; 16];
        label[..8].copy_from_slice(&(lo.index() as u64).to_be_bytes());
        label[8..].copy_from_slice(&(hi.index() as u64).to_be_bytes());
        hmac_sha256(&self.master, &label).0
    }

    /// Tags a `QueryReply` travelling from `manager` to `host`.
    pub fn tag_query_reply(
        &self,
        manager: NodeId,
        host: NodeId,
        req: ReqId,
        app: AppId,
        user: UserId,
        verdict: &QueryVerdict,
    ) -> Tag {
        let key = self.pair_key(manager, host);
        hmac_sha256(&key, &query_reply_bytes(req, app, user, verdict))
    }

    /// Verifies a `QueryReply` tag.
    #[allow(clippy::too_many_arguments)]
    pub fn verify_query_reply(
        &self,
        manager: NodeId,
        host: NodeId,
        req: ReqId,
        app: AppId,
        user: UserId,
        verdict: &QueryVerdict,
        tag: &Tag,
    ) -> bool {
        let key = self.pair_key(manager, host);
        wanacl_auth::hmac::verify(&key, &query_reply_bytes(req, app, user, verdict), tag)
    }

    /// Tags a `RevokeNotice` travelling from `manager` to `host`.
    pub fn tag_revoke_notice(&self, manager: NodeId, host: NodeId, app: AppId, user: UserId) -> Tag {
        let key = self.pair_key(manager, host);
        hmac_sha256(&key, &revoke_notice_bytes(app, user))
    }

    /// Verifies a `RevokeNotice` tag.
    pub fn verify_revoke_notice(
        &self,
        manager: NodeId,
        host: NodeId,
        app: AppId,
        user: UserId,
        tag: &Tag,
    ) -> bool {
        let key = self.pair_key(manager, host);
        wanacl_auth::hmac::verify(&key, &revoke_notice_bytes(app, user), tag)
    }
}

fn query_reply_bytes(req: ReqId, app: AppId, user: UserId, verdict: &QueryVerdict) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(b"qr");
    out.extend_from_slice(&req.0.to_be_bytes());
    out.extend_from_slice(&app.0.to_be_bytes());
    out.extend_from_slice(&user.0.to_be_bytes());
    match verdict {
        QueryVerdict::Grant { te } => {
            out.push(1);
            out.extend_from_slice(&te.as_nanos().to_be_bytes());
        }
        QueryVerdict::Deny => out.push(0),
        QueryVerdict::Unavailable { reason } => {
            out.push(2);
            out.push(reject_reason_byte(*reason));
        }
    }
    out
}

fn reject_reason_byte(reason: crate::msg::RejectReason) -> u8 {
    use crate::msg::RejectReason::*;
    match reason {
        NotAuthorized => 0,
        BadSignature => 1,
        Recovering => 2,
        UnknownApp => 3,
        UnknownShard => 4,
        ShardMoved => 5,
    }
}

fn revoke_notice_bytes(app: AppId, user: UserId) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(b"rn");
    out.extend_from_slice(&app.0.to_be_bytes());
    out.extend_from_slice(&user.0.to_be_bytes());
    out
}

/// A grant verdict helper used in tests.
#[doc(hidden)]
pub fn grant(te_secs: u64) -> QueryVerdict {
    QueryVerdict::Grant { te: SimDuration::from_secs(te_secs) }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn query_reply_roundtrip() {
        let keys = ChannelKeys::from_seed(1);
        let v = grant(30);
        let tag = keys.tag_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &v);
        assert!(keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &v, &tag));
        // The pair key is symmetric in direction.
        assert!(keys.verify_query_reply(n(5), n(0), ReqId(9), AppId(1), UserId(2), &v, &tag));
    }

    #[test]
    fn tampering_any_field_breaks_the_tag() {
        let keys = ChannelKeys::from_seed(2);
        let v = grant(30);
        let tag = keys.tag_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &v);
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(8), AppId(1), UserId(2), &v, &tag));
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(2), UserId(2), &v, &tag));
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(3), &v, &tag));
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &grant(60), &tag));
        assert!(!keys.verify_query_reply(
            n(0),
            n(5),
            ReqId(9),
            AppId(1),
            UserId(2),
            &QueryVerdict::Deny,
            &tag
        ));
    }

    #[test]
    fn unavailable_verdict_is_tagged_and_distinct() {
        let keys = ChannelKeys::from_seed(5);
        let v = QueryVerdict::Unavailable { reason: crate::msg::RejectReason::Recovering };
        let tag = keys.tag_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &v);
        assert!(keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &v, &tag));
        // Neither a deny nor a grant verifies under the unavailable tag.
        assert!(!keys.verify_query_reply(
            n(0),
            n(5),
            ReqId(9),
            AppId(1),
            UserId(2),
            &QueryVerdict::Deny,
            &tag
        ));
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(9), AppId(1), UserId(2), &grant(30), &tag));
    }

    #[test]
    fn different_pairs_have_different_keys() {
        let keys = ChannelKeys::from_seed(3);
        let v = grant(30);
        let tag = keys.tag_query_reply(n(0), n(5), ReqId(1), AppId(0), UserId(1), &v);
        // A node without the (0,5) key cannot produce a valid tag for it:
        // the tag computed under (1,5) differs.
        let other = keys.tag_query_reply(n(1), n(5), ReqId(1), AppId(0), UserId(1), &v);
        assert_ne!(tag, other);
        assert!(!keys.verify_query_reply(n(0), n(5), ReqId(1), AppId(0), UserId(1), &v, &other));
    }

    #[test]
    fn revoke_notice_roundtrip_and_tamper() {
        let keys = ChannelKeys::from_seed(4);
        let tag = keys.tag_revoke_notice(n(0), n(3), AppId(1), UserId(7));
        assert!(keys.verify_revoke_notice(n(0), n(3), AppId(1), UserId(7), &tag));
        assert!(!keys.verify_revoke_notice(n(0), n(3), AppId(1), UserId(8), &tag));
        assert!(!keys.verify_revoke_notice(n(1), n(3), AppId(1), UserId(7), &tag));
    }

    #[test]
    fn master_secret_distinguishes_deployments() {
        let a = ChannelKeys::from_seed(1);
        let b = ChannelKeys::from_seed(2);
        let v = grant(10);
        let tag = a.tag_query_reply(n(0), n(1), ReqId(1), AppId(0), UserId(1), &v);
        assert!(!b.verify_query_reply(n(0), n(1), ReqId(1), AppId(0), UserId(1), &v, &tag));
    }
}
