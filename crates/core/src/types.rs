//! Domain types: applications, users, rights, and the authoritative ACL.
//!
//! §2.1 of the paper: each distributed application `A` has `Hosts(A)`,
//! `Users(A)` (holders of the *use* right), and `Managers(A)` (holders of
//! the *manage* right). Only two right kinds exist: `use` and `manage`.

use std::collections::BTreeMap;

use wanacl_auth::signed::AuthEncode;

/// Identifies a distributed application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl AuthEncode for AppId {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
}

/// Identifies a user. Doubles as the user's
/// [`wanacl_auth::signed::PrincipalId`] in the key registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UserId(pub u64);

impl std::fmt::Display for UserId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl AuthEncode for UserId {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_be_bytes());
    }
}

impl From<UserId> for wanacl_auth::signed::PrincipalId {
    fn from(u: UserId) -> Self {
        wanacl_auth::signed::PrincipalId(u.0)
    }
}

/// Identifies one shard of the partitioned ACL keyspace. Shard ids are
/// global across applications (assigned by the scenario builder), so a
/// manager can own shards of several tenants without ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Identifies a tenant in a multi-tenant deployment. The scenario
/// builder maps tenant `t` to application [`AppId`]`(t)`, so tenancy and
/// application identity coincide by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Hashes a user into the 256-slot bucket space shards partition.
///
/// FNV-1a over the big-endian user id, folded to the low byte. The
/// function is pure (no per-run salt): a user's bucket — and therefore
/// its owning shard under a given map — is the same in every world, so
/// replayed counterexamples route identically.
pub fn user_bucket(user: UserId) -> u8 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in user.0.to_be_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash & 0xff) as u8
}

/// The two access-right kinds of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Right {
    /// May send messages to (invoke) the application.
    Use,
    /// May change the access rights associated with the application.
    Manage,
}

impl std::fmt::Display for Right {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Right::Use => write!(f, "use"),
            Right::Manage => write!(f, "manage"),
        }
    }
}

impl AuthEncode for Right {
    fn auth_encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Right::Use => 0,
            Right::Manage => 1,
        });
    }
}

/// The rights one user holds on one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RightsSet {
    use_right: bool,
    manage_right: bool,
}

impl RightsSet {
    /// No rights at all.
    pub const EMPTY: RightsSet = RightsSet { use_right: false, manage_right: false };

    /// Whether the given right is held.
    pub fn has(&self, right: Right) -> bool {
        match right {
            Right::Use => self.use_right,
            Right::Manage => self.manage_right,
        }
    }

    /// Adds a right (idempotent).
    pub fn grant(&mut self, right: Right) {
        match right {
            Right::Use => self.use_right = true,
            Right::Manage => self.manage_right = true,
        }
    }

    /// Removes a right (idempotent).
    pub fn revoke(&mut self, right: Right) {
        match right {
            Right::Use => self.use_right = false,
            Right::Manage => self.manage_right = false,
        }
    }

    /// Whether no rights remain.
    pub fn is_empty(&self) -> bool {
        !self.use_right && !self.manage_right
    }
}

/// The authoritative access-control list for one application, as held by a
/// manager (§3.1: "only the managers of a given application maintain
/// complete access control information").
///
/// # Examples
///
/// ```
/// use wanacl_core::types::{Acl, Right, UserId};
///
/// let mut acl = Acl::new();
/// acl.add(UserId(1), Right::Use);
/// assert!(acl.has(UserId(1), Right::Use));
/// assert!(!acl.has(UserId(1), Right::Manage));
/// acl.revoke(UserId(1), Right::Use);
/// assert!(!acl.has(UserId(1), Right::Use));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Acl {
    entries: BTreeMap<UserId, RightsSet>,
}

impl Acl {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants `right` to `user` (idempotent).
    pub fn add(&mut self, user: UserId, right: Right) {
        self.entries.entry(user).or_default().grant(right);
    }

    /// Revokes `right` from `user`; removing a non-existent right is a
    /// no-op, as §2.3 specifies.
    pub fn revoke(&mut self, user: UserId, right: Right) {
        if let Some(set) = self.entries.get_mut(&user) {
            set.revoke(right);
            if set.is_empty() {
                self.entries.remove(&user);
            }
        }
    }

    /// Whether `user` currently holds `right`.
    pub fn has(&self, user: UserId, right: Right) -> bool {
        self.entries.get(&user).map(|s| s.has(right)).unwrap_or(false)
    }

    /// Users holding the given right, in id order.
    pub fn users_with(&self, right: Right) -> impl Iterator<Item = UserId> + '_ {
        self.entries.iter().filter(move |(_, s)| s.has(right)).map(|(u, _)| *u)
    }

    /// Number of users holding any right.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no user holds any right.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries in user order.
    pub fn iter(&self) -> impl Iterator<Item = (UserId, RightsSet)> + '_ {
        self.entries.iter().map(|(u, s)| (*u, *s))
    }
}

impl FromIterator<(UserId, Right)> for Acl {
    fn from_iter<I: IntoIterator<Item = (UserId, Right)>>(iter: I) -> Self {
        let mut acl = Acl::new();
        for (u, r) in iter {
            acl.add(u, r);
        }
        acl
    }
}

impl Extend<(UserId, Right)> for Acl {
    fn extend<I: IntoIterator<Item = (UserId, Right)>>(&mut self, iter: I) {
        for (u, r) in iter {
            self.add(u, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_set_grant_revoke() {
        let mut s = RightsSet::EMPTY;
        assert!(s.is_empty());
        s.grant(Right::Use);
        assert!(s.has(Right::Use));
        assert!(!s.has(Right::Manage));
        s.grant(Right::Manage);
        s.revoke(Right::Use);
        assert!(!s.has(Right::Use));
        assert!(s.has(Right::Manage));
        s.revoke(Right::Manage);
        assert!(s.is_empty());
    }

    #[test]
    fn acl_add_is_idempotent() {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        acl.add(UserId(1), Right::Use);
        assert_eq!(acl.len(), 1);
        assert!(acl.has(UserId(1), Right::Use));
    }

    #[test]
    fn revoking_missing_right_is_noop() {
        let mut acl = Acl::new();
        acl.revoke(UserId(9), Right::Use);
        assert!(acl.is_empty());
        acl.add(UserId(9), Right::Manage);
        acl.revoke(UserId(9), Right::Use);
        assert!(acl.has(UserId(9), Right::Manage));
    }

    #[test]
    fn empty_entries_are_garbage_collected() {
        let mut acl = Acl::new();
        acl.add(UserId(1), Right::Use);
        acl.revoke(UserId(1), Right::Use);
        assert!(acl.is_empty());
    }

    #[test]
    fn users_with_filters_by_right() {
        let acl: Acl = [
            (UserId(1), Right::Use),
            (UserId(2), Right::Manage),
            (UserId(3), Right::Use),
        ]
        .into_iter()
        .collect();
        let users: Vec<UserId> = acl.users_with(Right::Use).collect();
        assert_eq!(users, vec![UserId(1), UserId(3)]);
        let mgrs: Vec<UserId> = acl.users_with(Right::Manage).collect();
        assert_eq!(mgrs, vec![UserId(2)]);
    }

    #[test]
    fn extend_merges_entries() {
        let mut acl = Acl::new();
        acl.extend([(UserId(1), Right::Use), (UserId(1), Right::Manage)]);
        assert!(acl.has(UserId(1), Right::Use));
        assert!(acl.has(UserId(1), Right::Manage));
        assert_eq!(acl.iter().count(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AppId(3).to_string(), "app3");
        assert_eq!(UserId(4).to_string(), "u4");
        assert_eq!(Right::Use.to_string(), "use");
        assert_eq!(Right::Manage.to_string(), "manage");
    }

    #[test]
    fn auth_encoding_distinguishes_rights() {
        let mut a = Vec::new();
        Right::Use.auth_encode(&mut a);
        let mut b = Vec::new();
        Right::Manage.auth_encode(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn user_id_converts_to_principal() {
        let p: wanacl_auth::signed::PrincipalId = UserId(77).into();
        assert_eq!(p.0, 77);
    }

    #[test]
    fn user_bucket_is_stable_and_spreads() {
        // Pure function: the same user always lands in the same bucket.
        assert_eq!(user_bucket(UserId(1)), user_bucket(UserId(1)));
        // A handful of small ids must not all collide into one bucket,
        // or every scenario user would live in a single shard.
        let buckets: std::collections::BTreeSet<u8> =
            (1..=16).map(|u| user_bucket(UserId(u))).collect();
        assert!(buckets.len() >= 8, "small user ids collapsed: {buckets:?}");
    }

    #[test]
    fn shard_and_tenant_display() {
        assert_eq!(ShardId(2).to_string(), "shard2");
        assert_eq!(TenantId(1).to_string(), "tenant1");
    }
}
